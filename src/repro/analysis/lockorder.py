"""Dynamic lock-order checking: find ABBA deadlocks before they hang.

Static rules can police single-file lock discipline, but an
acquisition-order inversion lives *between* files: the reaper takes the
lease lock then the backend's, a worker takes them the other way round,
and the deadlock only fires under exactly the wrong interleaving.  The
classic detector (Linux lockdep, TSan's deadlock detector) does not wait
for the interleaving: it records the *acquisition graph* — an edge
``A → B`` whenever a thread acquires ``B`` while holding ``A`` — and
reports any cycle, because a cycle is a deadlock waiting for a schedule.

Two ways in:

- :class:`OrderedLock` / :class:`OrderedCondition`: explicit wrappers
  for code that wants named, monitored locks in a test.
- :func:`monitored`: a context manager that monkeypatches
  ``threading.Lock`` / ``RLock`` / ``Condition`` / ``Semaphore`` so that
  locks created *inside* the block by ``repro`` code are instrumented
  transparently — build a ``SchedulerApp`` inside it and every lock in
  the broker, lease manager, result backend and app is monitored with a
  creation-site name like ``scheduler/app.py:120``.  Code outside the
  ``repro`` tree (e.g. ``queue.Queue`` internals) keeps real locks.

This is a dev-tool layer: nothing in ``repro.scheduler`` or ``repro.sim``
imports this module; the instrumentation reaches them only through the
installer at test time.  Detected cycles are reported through telemetry
(``lockorder.cycle`` events, ``lockorder_cycles_total`` counter) so a
monitored stress run archives its verdict with the rest of the run.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.telemetry import get_event_log, get_metrics


class LockOrderMonitor:
    """Records the lock-acquisition graph and finds cycles in it.

    Thread-safe; one monitor watches any number of locks.  Edges carry
    the first witness (thread plus held/acquired lock names) so a cycle
    report points at code, not just at an abstract graph.
    """

    def __init__(self):
        self._lock = threading.Lock()
        # lock name -> names acquired while it was held
        self._edges: Dict[str, Dict[str, Dict[str, Any]]] = {}
        self._held = threading.local()

    # -------------------------------------------------------- acquisition

    def note_acquire(self, name: str) -> None:
        """Record that the current thread acquired ``name``."""
        held: List[str] = getattr(self._held, "stack", None) or []
        if name in held:
            # Re-entrant acquisition (RLock); no new ordering information.
            held.append(name)
            self._held.stack = held
            return
        thread = threading.current_thread().name
        with self._lock:
            for holder in held:
                if holder == name:
                    continue
                self._edges.setdefault(holder, {}).setdefault(
                    name,
                    {"thread": thread, "holding": list(held)},
                )
        held.append(name)
        self._held.stack = held

    def note_release(self, name: str) -> None:
        """Record that the current thread released ``name``."""
        held: List[str] = getattr(self._held, "stack", None) or []
        # Release the innermost matching acquisition.
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                held.pop(index)
                break
        self._held.stack = held

    def held_by_current_thread(self) -> Tuple[str, ...]:
        return tuple(getattr(self._held, "stack", None) or ())

    # ------------------------------------------------------------- graphs

    def edges(self) -> List[Tuple[str, str]]:
        """Every observed (held → acquired) pair, sorted."""
        with self._lock:
            return sorted(
                (src, dst)
                for src, dsts in self._edges.items()
                for dst in dsts
            )

    def cycles(self) -> List[Tuple[str, ...]]:
        """All elementary cycles in the acquisition graph, canonicalized.

        A cycle ``(A, B)`` means some thread acquired B while holding A
        and some thread acquired A while holding B — a deadlock schedule
        exists.  Cycles are rotated to start at their smallest node and
        deduplicated, so the report is deterministic.
        """
        with self._lock:
            graph = {
                src: sorted(dsts) for src, dsts in self._edges.items()
            }
        found: Set[Tuple[str, ...]] = set()
        path: List[str] = []
        on_path: Set[str] = set()
        visited: Set[str] = set()

        def walk(node: str) -> None:
            path.append(node)
            on_path.add(node)
            for neighbor in graph.get(node, ()):
                if neighbor in on_path:
                    start = path.index(neighbor)
                    found.add(_canonical(tuple(path[start:])))
                elif neighbor not in visited:
                    walk(neighbor)
            on_path.discard(node)
            path.pop()
            visited.add(node)

        for root in sorted(graph):
            if root not in visited:
                walk(root)
        return sorted(found)

    def report(self) -> Dict[str, Any]:
        """Cycle verdict, published through telemetry.

        Returns ``{"locks": n, "edges": [...], "cycles": [...]}`` and,
        for each cycle, emits a ``lockorder.cycle`` event and bumps the
        ``lockorder_cycles_total`` counter — a monitored run archives
        its own deadlock analysis alongside spans and metrics.
        """
        edges = self.edges()
        cycles = self.cycles()
        names = sorted({name for edge in edges for name in edge})
        for cycle in cycles:
            get_metrics().counter(
                "lockorder_cycles_total",
                "Lock-acquisition-order cycles detected",
            ).inc()
            get_event_log().emit(
                "lockorder.cycle", locks=" -> ".join(cycle + cycle[:1])
            )
        return {"locks": len(names), "edges": edges, "cycles": cycles}


def _canonical(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
    """Rotate a cycle so it starts at its lexicographically smallest
    node; two rotations of the same cycle then compare equal."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


# ----------------------------------------------------------- instrumented


class OrderedLock:
    """A named lock that reports acquisitions to a monitor.

    Wraps any object with ``acquire``/``release`` (Lock, RLock,
    Semaphore); supports ``with``.  The wrapper is duck-type compatible
    with ``threading.Condition(lock=...)``.
    """

    def __init__(
        self,
        name: str,
        monitor: LockOrderMonitor,
        inner: Optional[Any] = None,
    ):
        self.name = name
        self.monitor = monitor
        self._inner = threading.Lock() if inner is None else inner

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self.monitor.note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self.monitor.note_release(self.name)

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        return locked() if locked is not None else False

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"OrderedLock({self.name!r})"


class OrderedCondition:
    """A named condition variable reporting to a monitor.

    ``wait`` releases the underlying lock, so the monitor is told about
    the release/re-acquire pair — otherwise every post-wait acquisition
    would appear to nest under the condition and fabricate edges.
    """

    def __init__(
        self,
        name: str,
        monitor: LockOrderMonitor,
        inner: Optional[threading.Condition] = None,
    ):
        self.name = name
        self.monitor = monitor
        self._inner = inner if inner is not None else threading.Condition()

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self.monitor.note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self.monitor.note_release(self.name)

    def wait(self, timeout: Optional[float] = None) -> bool:
        self.monitor.note_release(self.name)
        try:
            return self._inner.wait(timeout=timeout)
        finally:
            self.monitor.note_acquire(self.name)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        self.monitor.note_release(self.name)
        try:
            return self._inner.wait_for(predicate, timeout=timeout)
        finally:
            self.monitor.note_acquire(self.name)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __enter__(self) -> "OrderedCondition":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"OrderedCondition({self.name!r})"


# ------------------------------------------------------------ monkeypatch


def _creation_site(depth: int = 2) -> str:
    """``package-relative-file:lineno`` of the caller creating a lock."""
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename.replace("\\", "/")
    marker = "/repro/"
    index = filename.rfind(marker)
    if index >= 0:
        filename = filename[index + len(marker):]
    else:
        filename = filename.rsplit("/", 1)[-1]
    return f"{filename}:{frame.f_lineno}"


def _in_scope(depth: int, scope_marker: str) -> bool:
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename.replace("\\", "/")
    if filename.endswith("analysis/lockorder.py"):
        # The wrappers' own fallback locks must stay native, or every
        # OrderedLock would recursively wrap another OrderedLock.
        return False
    return scope_marker in filename


class _Installer:
    """Swaps the ``threading`` lock factories for instrumented ones."""

    FACTORIES = ("Lock", "RLock", "Condition", "Semaphore")

    def __init__(self, monitor: LockOrderMonitor, scope_marker: str):
        self.monitor = monitor
        self.scope_marker = scope_marker
        self._originals: Dict[str, Any] = {}
        self._counts: Dict[str, int] = {}
        self._counts_lock = threading.Lock()

    def _name_for_site(self) -> str:
        site = _creation_site(depth=3)
        with self._counts_lock:
            count = self._counts.get(site, 0)
            self._counts[site] = count + 1
        return site if count == 0 else f"{site}#{count}"

    def install(self) -> None:
        for factory in self.FACTORIES:
            self._originals[factory] = getattr(threading, factory)
        monitor = self.monitor
        originals = self._originals
        scope = self.scope_marker

        def make_lock(*args: Any, **kwargs: Any):
            if not _in_scope(2, scope):
                return originals["Lock"](*args, **kwargs)
            return OrderedLock(
                self._name_for_site(),
                monitor,
                originals["Lock"](*args, **kwargs),
            )

        def make_rlock(*args: Any, **kwargs: Any):
            if not _in_scope(2, scope):
                return originals["RLock"](*args, **kwargs)
            return OrderedLock(
                self._name_for_site(),
                monitor,
                originals["RLock"](*args, **kwargs),
            )

        def make_condition(lock: Any = None):
            if not _in_scope(2, scope):
                return originals["Condition"](lock)
            if isinstance(lock, OrderedLock):
                # The lock is already monitored; the real Condition binds
                # to its acquire/release, so waits are recorded through it.
                return originals["Condition"](lock)
            inner = originals["Condition"](lock)
            return OrderedCondition(self._name_for_site(), monitor, inner)

        def make_semaphore(*args: Any, **kwargs: Any):
            if not _in_scope(2, scope):
                return originals["Semaphore"](*args, **kwargs)
            return OrderedLock(
                self._name_for_site(),
                monitor,
                originals["Semaphore"](*args, **kwargs),
            )

        threading.Lock = make_lock
        threading.RLock = make_rlock
        threading.Condition = make_condition
        threading.Semaphore = make_semaphore

    def uninstall(self) -> None:
        for factory, original in self._originals.items():
            setattr(threading, factory, original)
        self._originals.clear()


@contextmanager
def monitored(
    scope_marker: str = "/repro/",
) -> Iterator[LockOrderMonitor]:
    """Instrument every lock created by in-scope code inside the block.

    ``scope_marker`` is a path substring: only locks created from files
    whose path contains it are wrapped (default: the ``repro`` package),
    so stdlib internals keep their native locks.  Objects built inside
    the block keep their instrumented locks after it exits — call
    ``monitor.report()`` once the workload is done.
    """
    monitor = LockOrderMonitor()
    installer = _Installer(monitor, scope_marker)
    installer.install()
    try:
        yield monitor
    finally:
        installer.uninstall()
