"""The static-analysis rule engine.

The analyzer is the enforcement arm of the reproducibility contract: the
paper's claim that a run is explainable from the database alone only holds
if *no* code path smuggles in wall-clock time, process-unique ids, or
unseeded randomness — and the resilience layer's fifteen-odd lock sites
only stay deadlock-free if their discipline is checked, not remembered.

Design (one pass, many rules):

- :class:`Analyzer` walks files, parses each into an AST, and performs a
  *single* recursive traversal per file, dispatching every node to the
  rules that registered interest in its type (``Rule.interests``).  Rules
  therefore pay only for the nodes they asked for.
- Rules receive a :class:`FileContext` carrying the source lines, the
  logical module path (``repro.sim.engine``), an import-alias map so
  ``from time import time as _t; _t()`` still resolves to ``time.time``,
  and the ancestor stack (for "am I under a ``with`` holding a lock?"
  questions).
- Findings are plain :class:`Finding` records with a content-based
  fingerprint (module + rule + stripped source line), so baselines
  survive unrelated line-number churn.
- ``# repro: noqa`` / ``# repro: noqa[RULE-ID,...]`` on the offending
  line suppresses findings, with the pragma use itself auditable by
  grep.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Type

#: Finding severities, most severe first (sort order relies on this).
SEVERITIES = ("error", "warning", "info")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9\-, ]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Content-based identity used by the baseline: stable across
        line-number churn, invalidated when the offending line changes."""
        digest = hashlib.sha256()
        for part in (self.file, self.rule_id, self.snippet.strip()):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def sort_key(self) -> Tuple:
        return (self.file, self.line, self.col, self.rule_id)


class FileContext:
    """Everything a rule may ask about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.module = logical_module(path)
        #: Ancestor stack of the node currently being dispatched
        #: (outermost first, excluding the node itself).
        self.ancestors: List[ast.AST] = []
        self.imports = _collect_imports(tree)
        self._noqa = _collect_noqa(self.lines)

    # ----------------------------------------------------------- helpers

    def in_module(self, *prefixes: str) -> bool:
        """True when the file's logical module matches any dotted prefix."""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted name, following the
        file's import aliases (``from time import time`` => ``time.time``).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        resolved = self.imports.get(root, root)
        parts.append(resolved)
        return ".".join(reversed(parts))

    def enclosing_function(self) -> Optional[ast.AST]:
        for node in reversed(self.ancestors):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def enclosing_class(self) -> Optional[ast.ClassDef]:
        for node in reversed(self.ancestors):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        rules = self._noqa.get(lineno)
        if rules is None:
            return False
        return not rules or rule_id in rules


class Rule:
    """Base class for all rules.

    Subclasses set ``rule_id``, ``severity``, ``description``, declare the
    node types they want in ``interests``, and implement :meth:`visit`.
    ``file_begin`` lets a rule precompute per-file state (e.g. which
    ``self.X`` attributes are locks).
    """

    rule_id: str = "RULE"
    severity: str = "warning"
    description: str = ""
    interests: Tuple[Type[ast.AST], ...] = ()

    def file_begin(self, ctx: FileContext) -> None:
        pass

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def file_end(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    # ----------------------------------------------------------- helpers

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            file=ctx.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            snippet=ctx.line_text(lineno).strip(),
        )


class Analyzer:
    """File walker + per-rule visitor dispatch."""

    def __init__(self, rules: Iterable[Rule]):
        self.rules = list(rules)
        by_id = {}
        for rule in self.rules:
            if rule.rule_id in by_id:
                raise ValueError(f"duplicate rule id {rule.rule_id!r}")
            if rule.severity not in SEVERITIES:
                raise ValueError(
                    f"rule {rule.rule_id}: bad severity {rule.severity!r}"
                )
            by_id[rule.rule_id] = rule

    # ------------------------------------------------------------ walking

    def analyze_paths(self, paths: Iterable[str]) -> List[Finding]:
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.analyze_file(path))
        findings.sort(key=Finding.sort_key)
        return findings

    def analyze_file(self, path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.analyze_source(source, path)

    def analyze_source(self, source: str, path: str) -> List[Finding]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    file=path,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    rule_id="PARSE",
                    severity="error",
                    message=f"syntax error: {error.msg}",
                )
            ]
        ctx = FileContext(path, source, tree)
        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            rule.file_begin(ctx)
            for node_type in rule.interests:
                dispatch.setdefault(node_type, []).append(rule)
        findings: List[Finding] = []

        def visit(node: ast.AST) -> None:
            for rule in dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, ctx))
            ctx.ancestors.append(node)
            for child in ast.iter_child_nodes(node):
                visit(child)
            ctx.ancestors.pop()

        visit(tree)
        for rule in self.rules:
            findings.extend(rule.file_end(ctx))
        findings = [
            f
            for f in findings
            if not ctx.suppressed(f.line, f.rule_id)
        ]
        findings.sort(key=Finding.sort_key)
        return findings


# ------------------------------------------------------------------ walking


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield ``.py`` files under each path, in sorted, deterministic
    order; a path that is itself a file is yielded as-is."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d != "__pycache__"
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def logical_module(path: str) -> str:
    """Map a filesystem path to a dotted module rooted at ``repro``.

    ``src/repro/sim/engine.py`` → ``repro.sim.engine``; paths with no
    ``repro`` component fall back to the stem, so fixture files in test
    tmpdirs can still opt into zones by directory layout.
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[index:]
    else:
        parts = parts[-1:]
    return ".".join(parts)


# ---------------------------------------------------------------- internals


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name → fully qualified name, for alias resolution."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:
                continue  # relative imports keep their local meaning
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _collect_noqa(lines: List[str]) -> Dict[int, frozenset]:
    """Line number → suppressed rule ids (empty set = all rules)."""
    pragmas: Dict[int, frozenset] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            pragmas[lineno] = frozenset()
        else:
            pragmas[lineno] = frozenset(
                rule.strip().upper()
                for rule in rules.split(",")
                if rule.strip()
            )
    return pragmas
