"""Experiment reports.

The paper imagines communicating an experiment "to others (e.g., in a
reproducibility report)": all inputs, how they were obtained, and how they
were run.  :func:`experiment_report` renders exactly that from the
database — a markdown document listing every artifact with its hash and
provenance, the parameter space, and the outcome summary — suitable for
checking into a paper's artifact appendix.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import NotFoundError
from repro.art.db import ArtifactDB


def experiment_report(
    db: ArtifactDB, experiment_name: Optional[str] = None
) -> str:
    """Render a reproducibility report for one experiment (or, when
    ``experiment_name`` is None, for the database's only experiment)."""
    experiments = db.database.collection("experiments")
    if experiment_name is None:
        docs = experiments.find()
        if len(docs) != 1:
            raise NotFoundError(
                f"database holds {len(docs)} experiments; name one of "
                f"{sorted(d['name'] for d in docs)}"
            )
        experiment = docs[0]
    else:
        experiment = experiments.find_one({"name": experiment_name})
        if experiment is None:
            raise NotFoundError(
                f"no experiment named {experiment_name!r}"
            )
    lines: List[str] = [f"# Reproducibility report: {experiment['name']}",
                        ""]
    lines += _artifact_section(db, experiment)
    lines += _parameter_section(experiment)
    lines += _outcome_section(db, experiment)
    return "\n".join(lines)


def _artifact_section(db: ArtifactDB, experiment: Dict) -> List[str]:
    lines = ["## Input artifacts", ""]
    lines.append("| stack | role | name | type | hash | provenance |")
    lines.append("|---|---|---|---|---|---|")
    for stack_name, roles in sorted(experiment["stacks"].items()):
        for role, artifact_id in sorted(roles.items()):
            doc = db.get_artifact(artifact_id)
            git = doc.get("git") or {}
            provenance = git.get("git_url", doc.get("command", ""))
            lines.append(
                f"| {stack_name} | {role} | {doc['name']} | "
                f"{doc['type']} | `{doc['hash'][:12]}` | {provenance} |"
            )
    lines.append("")
    return lines


def _parameter_section(experiment: Dict) -> List[str]:
    lines = ["## Parameter space", ""]
    for key, value in sorted(experiment.get("fixed", {}).items()):
        lines.append(f"- fixed `{key}` = `{value}`")
    for key, values in sorted(experiment.get("axes", {}).items()):
        rendered = ", ".join(f"`{v}`" for v in values)
        lines.append(f"- swept `{key}` over {rendered}")
    total = len(experiment.get("run_ids", []))
    lines += ["", f"Total runs: **{total}**", ""]
    return lines


def _outcome_section(db: ArtifactDB, experiment: Dict) -> List[str]:
    lines = ["## Outcomes", ""]
    counts: Dict[str, int] = {}
    sim_seconds = 0.0
    finished = 0
    for run_id in experiment.get("run_ids", []):
        doc = db.get_run(run_id)
        results = doc.get("results") or {}
        status = results.get("simulation_status", doc["status"])
        counts[status] = counts.get(status, 0) + 1
        if results:
            sim_seconds += results.get("sim_seconds", 0.0)
            finished += 1
    lines.append("| outcome | runs |")
    lines.append("|---|---|")
    for status, count in sorted(counts.items()):
        lines.append(f"| {status} | {count} |")
    lines += [
        "",
        f"Finished runs: {finished}; total simulated time: "
        f"{sim_seconds:.4f} s.",
        "",
    ]
    return lines
