"""Finding reporters: text for humans, JSON for CI.

Both formats are deterministic (findings arrive pre-sorted from the
engine; counters are emitted in sorted order) so two runs over the same
tree produce byte-identical reports — the analyzer holds itself to the
contract it enforces.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.analysis.engine import SEVERITIES, Finding


def severity_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return counts


def render_text(
    findings: List[Finding], baselined: int = 0
) -> str:
    """One line per finding plus a summary tail."""
    lines = []
    for finding in findings:
        lines.append(
            f"{finding.file}:{finding.line}:{finding.col}: "
            f"{finding.rule_id} [{finding.severity}] {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    counts = severity_counts(findings)
    summary = ", ".join(
        f"{counts[severity]} {severity}(s)"
        for severity in SEVERITIES
        if counts.get(severity)
    )
    if not findings:
        lines.append("clean: no findings")
    else:
        lines.append(f"found {summary}")
    if baselined:
        lines.append(f"({baselined} baselined finding(s) suppressed)")
    return "\n".join(lines)


def render_json(
    findings: List[Finding], baselined: int = 0
) -> str:
    payload = {
        "version": 1,
        "counts": severity_counts(findings),
        "baselined": baselined,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
