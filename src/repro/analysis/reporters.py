"""Finding reporters: text for humans, JSON and SARIF for CI.

All formats are deterministic (findings arrive pre-sorted from the
engine; counters are emitted in sorted order) so two runs over the same
tree produce byte-identical reports — the analyzer holds itself to the
contract it enforces.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.analysis.engine import SEVERITIES, Finding


def severity_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return counts


def render_text(
    findings: List[Finding], baselined: int = 0
) -> str:
    """One line per finding plus a summary tail."""
    lines = []
    for finding in findings:
        lines.append(
            f"{finding.file}:{finding.line}:{finding.col}: "
            f"{finding.rule_id} [{finding.severity}] {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    counts = severity_counts(findings)
    summary = ", ".join(
        f"{counts[severity]} {severity}(s)"
        for severity in SEVERITIES
        if counts.get(severity)
    )
    if not findings:
        lines.append("clean: no findings")
    else:
        lines.append(f"found {summary}")
    if baselined:
        lines.append(f"({baselined} baselined finding(s) suppressed)")
    return "\n".join(lines)


def render_json(
    findings: List[Finding], baselined: int = 0
) -> str:
    payload = {
        "version": 1,
        "counts": severity_counts(findings),
        "baselined": baselined,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


#: Finding severity -> SARIF result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_sarif(
    findings: List[Finding], baselined: int = 0
) -> str:
    """SARIF 2.1.0, one run — the format code-scanning UIs ingest.

    Rules are deduplicated into the driver's rule table; each result
    carries the finding fingerprint as a partial fingerprint so SARIF
    consumers track findings across commits the same way the baseline
    ratchet does.
    """
    rule_ids = sorted({finding.rule_id for finding in findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": _SARIF_LEVELS.get(finding.severity, "note"),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.file.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproFindingFingerprint/v1": finding.fingerprint
                },
            }
        )
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/analysis"
                        ),
                        "rules": [
                            {"id": rule_id} for rule_id in rule_ids
                        ],
                    }
                },
                "properties": {"baselined": baselined},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
