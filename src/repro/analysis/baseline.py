"""Baseline files: ratchet, don't big-bang.

A baseline records the fingerprints of known, accepted findings so that
``repro lint`` fails CI only on *new* violations.  Fingerprints are
content-based (file + rule + offending source line), so a baselined
finding survives line-number churn but is invalidated — correctly — the
moment the offending line itself changes.

The intended workflow is a ratchet: baseline what exists today, fix at
leisure, and never let the count grow.  ``--write-baseline`` rewrites
the file from the current findings, which also drops entries for
findings that were fixed.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Set, Tuple

from repro.analysis.engine import Finding
from repro.common.errors import ValidationError


def load_baseline(path: str) -> Set[str]:
    """Read accepted fingerprints; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"baseline {path} is not valid JSON: {error}"
            )
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("findings"), list)
    ):
        raise ValidationError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    fingerprints = set()
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValidationError(
                f"baseline {path}: every finding needs a 'fingerprint'"
            )
        fingerprints.add(entry["fingerprint"])
    return fingerprints


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Accept the given findings as the new baseline."""
    payload = {
        "version": 1,
        "findings": [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule_id,
                "file": finding.file,
                "line": finding.line,
                "message": finding.message,
            }
            for finding in sorted(findings, key=Finding.sort_key)
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_baselined(
    findings: Iterable[Finding], accepted: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, baselined)."""
    fresh: List[Finding] = []
    known: List[Finding] = []
    for finding in findings:
        if finding.fingerprint in accepted:
            known.append(finding)
        else:
            fresh.append(finding)
    return fresh, known
