"""Result analysis — the Jupyter/Matplotlib stage of the paper's workflow.

The paper's use cases end by querying MongoDB from a notebook and plotting
with Matplotlib.  Offline we provide the same capability as composable
pieces: :mod:`queries` pulls run summaries out of the database into flat
records, :mod:`series` reshapes them (group-by, speedups, normalization),
and :mod:`charts` renders ASCII bar charts and the Fig 8 status grid.
"""

from repro.analysis.queries import run_records, group_by, pivot
from repro.analysis.series import (
    Series,
    speedup_series,
    difference_series,
    normalize_to,
)
from repro.analysis.charts import bar_chart, status_grid
from repro.analysis.report import experiment_report
from repro.analysis.validation import (
    compare_stats,
    diagnose_configs,
    within_tolerance,
)

__all__ = [
    "experiment_report",
    "compare_stats",
    "diagnose_configs",
    "within_tolerance",
    "run_records",
    "group_by",
    "pivot",
    "Series",
    "speedup_series",
    "difference_series",
    "normalize_to",
    "bar_chart",
    "status_grid",
]
