"""Analysis: result post-processing and the self-hosted lint framework.

Two halves share this package:

- **Result analysis** — the Jupyter/Matplotlib stage of the paper's
  workflow: :mod:`queries` pulls run summaries out of the database into
  flat records, :mod:`series` reshapes them (group-by, speedups,
  normalization), and :mod:`charts` renders ASCII bar charts and the
  Fig 8 status grid.
- **Static + dynamic analysis of the codebase itself** — the
  determinism/concurrency/hygiene rule packs (:mod:`rules_determinism`,
  :mod:`rules_concurrency`, :mod:`rules_hygiene`) running on the
  :mod:`engine`, plus the dynamic lock-order checker
  (:mod:`lockorder`).  This half is a *dev-tool layer*: it may import
  anything for analysis purposes, but no runtime subsystem (scheduler,
  sim, art, db) imports it back.  The ``repro lint`` CLI verb and CI
  are its consumers.
"""

from repro.analysis.queries import run_records, group_by, pivot
from repro.analysis.series import (
    Series,
    speedup_series,
    difference_series,
    normalize_to,
)
from repro.analysis.charts import bar_chart, status_grid
from repro.analysis.report import experiment_report
from repro.analysis.validation import (
    compare_stats,
    diagnose_configs,
    within_tolerance,
)
from repro.analysis.engine import Analyzer, Finding, Rule, iter_python_files
from repro.analysis.rules_determinism import DETERMINISM_RULES
from repro.analysis.rules_concurrency import CONCURRENCY_RULES
from repro.analysis.rules_hygiene import HYGIENE_RULES
from repro.analysis.lockorder import (
    LockOrderMonitor,
    OrderedCondition,
    OrderedLock,
    monitored,
)


def default_rules():
    """One instance of every rule in the repo rule pack."""
    classes = DETERMINISM_RULES + CONCURRENCY_RULES + HYGIENE_RULES
    return [cls() for cls in classes]


def lint_paths(paths):
    """Run the full rule pack over files/directories; sorted findings."""
    return Analyzer(default_rules()).analyze_paths(paths)


def deep_lint_paths(paths):
    """Run the whole-program passes (races, taint, layering); sorted
    findings.  Imported lazily: most callers only want the rule pack."""
    from repro.analysis.dataflow import deep_lint_paths as _deep

    return _deep(paths)


__all__ = [
    "Analyzer",
    "Finding",
    "Rule",
    "iter_python_files",
    "default_rules",
    "deep_lint_paths",
    "lint_paths",
    "DETERMINISM_RULES",
    "CONCURRENCY_RULES",
    "HYGIENE_RULES",
    "LockOrderMonitor",
    "OrderedCondition",
    "OrderedLock",
    "monitored",
    "experiment_report",
    "compare_stats",
    "diagnose_configs",
    "within_tolerance",
    "run_records",
    "group_by",
    "pivot",
    "Series",
    "speedup_series",
    "difference_series",
    "normalize_to",
    "bar_chart",
    "status_grid",
]
