"""Series transforms: the arithmetic behind Figs 6, 7 and 9."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ValidationError


@dataclass
class Series:
    """A named, ordered label → value mapping."""

    name: str
    values: Dict[str, float] = field(default_factory=dict)

    def labels(self) -> List[str]:
        return list(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ValidationError(f"series {self.name!r} is empty")
        return sum(self.values.values()) / len(self.values)

    def geomean(self) -> float:
        """Geometric mean — the right average for speedup ratios."""
        if not self.values:
            raise ValidationError(f"series {self.name!r} is empty")
        product = 1.0
        for value in self.values.values():
            if value <= 0:
                raise ValidationError(
                    f"geomean undefined: {self.name!r} has a "
                    "non-positive value"
                )
            product *= value
        return product ** (1.0 / len(self.values))

    def __getitem__(self, label: str) -> float:
        return self.values[label]

    def __len__(self) -> int:
        return len(self.values)


def difference_series(
    name: str, minuend: Series, subtrahend: Series
) -> Series:
    """Per-label ``minuend - subtrahend`` (Fig 6's absolute time diff)."""
    _check_same_labels(minuend, subtrahend)
    return Series(
        name=name,
        values={
            label: minuend[label] - subtrahend[label]
            for label in minuend.labels()
        },
    )


def speedup_series(name: str, baseline: Series, improved: Series) -> Series:
    """Per-label ``baseline / improved`` (Figs 7 and 9's speedups)."""
    _check_same_labels(baseline, improved)
    values = {}
    for label in baseline.labels():
        if improved[label] == 0:
            raise ValidationError(
                f"cannot compute speedup for {label!r}: zero time"
            )
        values[label] = baseline[label] / improved[label]
    return Series(name=name, values=values)


def normalize_to(series: Series, reference: Series) -> Series:
    """Per-label ``series / reference`` (Fig 9's normalization)."""
    return speedup_series(f"{series.name} (normalized)", series, reference)


def _check_same_labels(a: Series, b: Series) -> None:
    if a.labels() != b.labels():
        raise ValidationError(
            f"series {a.name!r} and {b.name!r} have different labels"
        )
