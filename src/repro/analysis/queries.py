"""Flattening run documents into analyzable records."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.art.db import ArtifactDB


def run_records(
    db: ArtifactDB, query: Optional[Dict[str, Any]] = None
) -> List[Dict[str, Any]]:
    """Return one flat dict per run: parameters and result summary merged.

    Parameter keys come through as-is; result keys as-is; colliding names
    get a ``result_`` prefix.  Only runs that have results are returned.
    """
    records = []
    for doc in db.query_runs(query):
        results = doc.get("results")
        if results is None:
            continue
        record: Dict[str, Any] = {"run_id": doc["_id"], "kind": doc["kind"]}
        for key, value in doc.get("params", {}).items():
            record[key] = value
        for key, value in results.items():
            record[f"result_{key}" if key in record else key] = value
        records.append(record)
    return records


def group_by(
    records: Sequence[Dict[str, Any]],
    keys: Sequence[str],
) -> Dict[Tuple, List[Dict[str, Any]]]:
    """Group records by a tuple of field values."""
    groups: Dict[Tuple, List[Dict[str, Any]]] = {}
    for record in records:
        group_key = tuple(record.get(key) for key in keys)
        groups.setdefault(group_key, []).append(record)
    return groups


def pivot(
    records: Sequence[Dict[str, Any]],
    row_key: str,
    column_key: str,
    value_key: str,
    aggregate: Callable[[List[float]], float] = None,
) -> Dict[Any, Dict[Any, float]]:
    """Build a {row: {column: value}} table from records.

    Multiple records landing in one cell are reduced with ``aggregate``
    (default: mean).
    """
    cells: Dict[Any, Dict[Any, List[float]]] = {}
    for record in records:
        row = record.get(row_key)
        column = record.get(column_key)
        value = record.get(value_key)
        if value is None:
            continue
        cells.setdefault(row, {}).setdefault(column, []).append(value)
    reduce = aggregate or (lambda values: sum(values) / len(values))
    return {
        row: {column: reduce(values) for column, values in columns.items()}
        for row, columns in cells.items()
    }
