"""Determinism rules: the seed-identical-replay contract, enforced.

``repro.sim`` and ``repro.chaos`` promise that two runs with the same
seeds produce bit-identical results, and the artifact/provenance hash
paths promise that identical inputs hash identically across machines and
years.  A single ``time.time()`` or unseeded ``random.random()`` in those
trees breaks the promise silently — the tests still pass, the replays
just stop being replays.  These rules make the promise a build failure
instead.

The *sanctioned escape hatches* are ``repro.common.timeutil`` (the one
place wall-clock access is allowed to live) and ``repro.common.rng`` /
``repro.common.ids`` (seeded streams and deterministic UUIDs); code in
the deterministic zones must route through them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

#: Module prefixes where nondeterminism is a contract violation.
DETERMINISTIC_ZONES = (
    "repro.sim",
    "repro.chaos",
    # The art hash paths: run/artifact identity must be a pure function
    # of content, never of the clock or the process.
    "repro.art.artifact",
    "repro.art.provenance",
    "repro.common.hashing",
)

#: The sanctioned escape hatches themselves (they implement the choke
#: points, so they are allowed to touch the raw primitives).
SANCTIONED_MODULES = (
    "repro.common.timeutil",
    "repro.common.rng",
    "repro.common.ids",
)

#: Wall-clock reads that must go through repro.common.timeutil.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
    }
)

#: Process-unique id mints that must go through repro.common.ids.
UUID_CALLS = frozenset({"uuid.uuid4", "uuid.uuid1", "uuid4", "uuid1"})

#: Module-level (shared, unseeded) random draws.
GLOBAL_RANDOM_CALLS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.gauss",
        "random.seed",
    }
)


class _ZoneRule(Rule):
    """Shared zone gating for the determinism pack."""

    def applies(self, ctx: FileContext) -> bool:
        if ctx.in_module(*SANCTIONED_MODULES):
            return False
        return ctx.in_module(*DETERMINISTIC_ZONES)


class WallClockRule(_ZoneRule):
    rule_id = "DET-WALLCLOCK"
    severity = "error"
    description = (
        "wall-clock reads in deterministic code; route through "
        "repro.common.timeutil"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if not self.applies(ctx):
            return
        name = ctx.qualified_name(node.func)
        if name in WALL_CLOCK_CALLS:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {name}() in deterministic module "
                f"{ctx.module}; use repro.common.timeutil "
                "(iso_now/wall_now) so replays stay seed-identical",
            )


class UuidRule(_ZoneRule):
    rule_id = "DET-UUID"
    severity = "error"
    description = (
        "random UUIDs in deterministic code; use "
        "repro.common.ids.deterministic_uuid"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if not self.applies(ctx):
            return
        name = ctx.qualified_name(node.func)
        if name in UUID_CALLS:
            yield self.finding(
                ctx,
                node,
                f"{name}() mints a process-unique id in deterministic "
                f"module {ctx.module}; use "
                "repro.common.ids.deterministic_uuid",
            )


class GlobalRandomRule(_ZoneRule):
    rule_id = "DET-RANDOM"
    severity = "error"
    description = (
        "unseeded randomness in deterministic code; use "
        "repro.common.rng.RngStream"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if not self.applies(ctx):
            return
        name = ctx.qualified_name(node.func)
        if name in GLOBAL_RANDOM_CALLS:
            yield self.finding(
                ctx,
                node,
                f"{name}() draws from the shared unseeded generator in "
                f"deterministic module {ctx.module}; derive a named "
                "repro.common.rng.RngStream instead",
            )
            return
        # random.Random() with no arguments seeds from the OS.
        if name == "random.Random" and not node.args and not node.keywords:
            yield self.finding(
                ctx,
                node,
                "random.Random() without a seed is OS-seeded; pass a "
                "derived seed (repro.common.rng.derive_seed) or use "
                "RngStream",
            )


class IterationOrderRule(_ZoneRule):
    """Set iteration and unsorted directory listings are the two ways
    Python sneaks hash/OS ordering into 'deterministic' loops."""

    rule_id = "DET-ORDER"
    severity = "warning"
    description = (
        "iteration order depends on hashing or the OS; sort first"
    )
    interests = (ast.For, ast.comprehension, ast.Call)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not self.applies(ctx):
            return
        if isinstance(node, (ast.For, ast.comprehension)):
            yield from self._check_iterable(node.iter, ctx)
        elif isinstance(node, ast.Call):
            name = ctx.qualified_name(node.func)
            if name in ("os.listdir", "os.scandir") and not self._sorted(
                ctx
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() order is filesystem-dependent; wrap in "
                    "sorted() before iterating",
                )

    def _check_iterable(
        self, iterable: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield self.finding(
                ctx,
                iterable,
                "iterating a set literal: order is hash-dependent; "
                "iterate sorted(...) instead",
            )
        elif isinstance(iterable, ast.Call):
            name = ctx.qualified_name(iterable.func)
            if name in ("set", "frozenset"):
                yield self.finding(
                    ctx,
                    iterable,
                    f"iterating {name}(...): order is hash-dependent; "
                    "iterate sorted(...) instead",
                )

    def _sorted(self, ctx: FileContext) -> bool:
        """True when the immediately enclosing expression already sorts."""
        for ancestor in reversed(ctx.ancestors):
            if isinstance(ancestor, ast.Call):
                name = ctx.qualified_name(ancestor.func)
                if name in ("sorted", "min", "max", "len", "set"):
                    return True
            if isinstance(ancestor, (ast.stmt,)):
                break
        return False


DETERMINISM_RULES = (
    WallClockRule,
    UuidRule,
    GlobalRandomRule,
    IterationOrderRule,
)
