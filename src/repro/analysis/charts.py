"""ASCII chart rendering — the offline Matplotlib.

Two chart forms cover the paper's figures: horizontal bar charts (Figs 6,
7 and 9 are grouped bars) and the status grid (Fig 8 is a pass/fail matrix
over configuration cross products).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.series import Series
from repro.common.errors import ValidationError

#: Glyphs for status grids, chosen to be unambiguous in monospace.
STATUS_GLYPHS = {
    "ok": "P",  # pass
    "unsupported": "-",
    "kernel_panic": "K",
    "gem5_segfault": "S",
    "deadlock": "D",
    "timeout": "T",
}


def bar_chart(
    series_list: Sequence[Series],
    width: int = 40,
    title: str = None,
    unit: str = "",
) -> str:
    """Render one or more series as grouped horizontal bars.

    Negative values draw to the left of the axis, so difference charts
    (Fig 6) read naturally.
    """
    if not series_list:
        raise ValidationError("bar_chart needs at least one series")
    labels = series_list[0].labels()
    for series in series_list[1:]:
        if series.labels() != labels:
            raise ValidationError("all series must share labels")
    peak = max(
        (abs(value) for s in series_list for value in s.values.values()),
        default=0.0,
    )
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max((len(label) for label in labels), default=0)
    name_width = max(len(s.name) for s in series_list)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label in labels:
        for series in series_list:
            value = series[label]
            bar_length = int(round(abs(value) * scale))
            bar = "#" * bar_length if value >= 0 else "=" * bar_length
            sign = "" if value >= 0 else "-"
            lines.append(
                f"{label:<{label_width}} | {series.name:<{name_width}} | "
                f"{sign}{bar} {value:.4g}{unit}"
            )
    return "\n".join(lines)


def status_grid(
    cells: Dict[tuple, str],
    row_labels: Sequence,
    column_labels: Sequence,
    title: str = None,
    glyphs: Dict[str, str] = None,
) -> str:
    """Render a (row, column) → status mapping as a compact grid.

    ``cells`` must contain an entry for every (row, column) pair.  The
    legend of glyph meanings is appended automatically.
    """
    glyph_map = glyphs or STATUS_GLYPHS
    row_width = max((len(str(r)) for r in row_labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * row_width + " | " + " ".join(
        f"{str(c):>2}" for c in column_labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    used = set()
    for row in row_labels:
        rendered = []
        for column in column_labels:
            if (row, column) not in cells:
                raise ValidationError(
                    f"status_grid missing cell ({row!r}, {column!r})"
                )
            status = cells[(row, column)]
            if status not in glyph_map:
                raise ValidationError(f"no glyph for status {status!r}")
            used.add(status)
            rendered.append(f"{glyph_map[status]:>2}")
        lines.append(f"{str(row):<{row_width}} | " + " ".join(rendered))
    legend = ", ".join(
        f"{glyph_map[status]}={status}" for status in sorted(used)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
