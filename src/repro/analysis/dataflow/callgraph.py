"""Approximate whole-program call graph over a :class:`Project`.

Python call resolution without running the program is necessarily
approximate; this resolver is tuned for the idioms this codebase
actually uses (and the imprecision is documented in
``docs/analysis.md``):

- ``self.method(...)`` — resolved through the enclosing class,
  following single-inheritance bases defined in the project;
- ``self.attr.method(...)`` — resolved when ``attr``'s type was
  inferred from an ``__init__`` assignment of a project class
  (``self._queue = LeveledQueue(...)`` types ``_queue``);
- ``name(...)`` / ``mod.func(...)`` / ``mod.Class(...)`` — resolved
  through the file's import-alias map and the module symbol tables;
  constructing a project class resolves to its ``__init__``.

Everything unresolvable stays an *external dotted name* (``time.time``,
``queue.Queue``) so the taint pass can match sources and sinks on it.

Beyond call edges the graph carries the per-class facts the race and
taint passes share: which ``self.X`` attributes are locks (the same
factory + name inference the single-file concurrency rules use) and the
inferred type of every ``self.X`` attribute.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow.graph import ModuleInfo, Project
from repro.analysis.rules_concurrency import (
    LOCK_FACTORIES,
    _is_lockish_name,
)

#: Methods that run before any second thread can hold the instance —
#: accesses there are construction, not sharing.
CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__del__"}
)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: ``repro.mod.Class.method`` / ``repro.mod.func``
    module: ModuleInfo
    node: ast.AST  #: FunctionDef | AsyncFunctionDef
    cls_name: Optional[str] = None  #: enclosing class, when a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.cls_name is not None


@dataclass
class ClassInfo:
    """One class definition plus the inferred facts about it."""

    qualname: str  #: ``repro.mod.Class``
    module: ModuleInfo
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.X`` attributes assigned a threading lock factory.
    lock_attrs: Set[str] = field(default_factory=set)
    #: ``self.X`` -> dotted type name (project class qualname or
    #: external dotted name) inferred from constructor-call assignments.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: resolved project base-class qualnames, in declaration order.
    bases: List[str] = field(default_factory=list)

    def lookup_method(
        self, graph: "CallGraph", name: str
    ) -> Optional[FunctionInfo]:
        """Find ``name`` on this class or (project-defined) bases."""
        seen: Set[str] = set()
        queue = [self.qualname]
        while queue:
            cls_qualname = queue.pop(0)
            if cls_qualname in seen:
                continue
            seen.add(cls_qualname)
            cls = graph.classes.get(cls_qualname)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            queue.extend(cls.bases)
        return None


class CallGraph:
    """Functions, classes, and resolved call edges of a project."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._index(project)
        self._infer_class_facts()

    # ------------------------------------------------------------ indexing

    def _index(self, project: Project) -> None:
        for module in project.modules.values():
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        qualname=f"{module.name}.{node.name}",
                        module=module,
                        node=node,
                    )
                    self.functions[info.qualname] = info
                elif isinstance(node, ast.ClassDef):
                    self._index_class(module, node)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            qualname=f"{module.name}.{node.name}",
            module=module,
            node=node,
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{cls.qualname}.{item.name}",
                    module=module,
                    node=item,
                    cls_name=node.name,
                )
                cls.methods[item.name] = info
                self.functions[info.qualname] = info
        self.classes[cls.qualname] = cls

    def _infer_class_facts(self) -> None:
        for cls in self.classes.values():
            for base in cls.node.bases:
                resolved = self._resolve_dotted(cls.module, base)
                if resolved and resolved in self.classes:
                    cls.bases.append(resolved)
            # ``__init__`` first so its assignment wins ties; then the
            # other methods (late-created helpers like monitor threads).
            methods = sorted(
                cls.methods.values(),
                key=lambda m: (m.name != "__init__", m.name),
            )
            for method in methods:
                self._infer_attr_types(cls, method)

    def _infer_attr_types(
        self, cls: ClassInfo, method: FunctionInfo
    ) -> None:
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            type_name = self._resolve_dotted(cls.module, node.value.func)
            if type_name is None:
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                cls.attr_types.setdefault(target.attr, type_name)
                if type_name in LOCK_FACTORIES:
                    cls.lock_attrs.add(target.attr)

    # ---------------------------------------------------------- resolution

    def _resolve_dotted(
        self, module: ModuleInfo, node: ast.AST
    ) -> Optional[str]:
        """Name/Attribute chain -> dotted name through import aliases."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = module.imports.get(node.id, None)
        if root is None:
            # A module-level symbol of this file, or a plain local name.
            if node.id in module.symbols:
                root = f"{module.name}.{node.id}"
            else:
                root = node.id
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
    ) -> Tuple[Optional[FunctionInfo], Optional[str]]:
        """Resolve a call site to ``(project_function, external_name)``.

        Exactly one of the pair is non-None for resolvable calls; both
        are None when the callee is something opaque (a local variable,
        a lambda, a subscript).
        """
        func = call.func
        # self.method(...) / self.attr.method(...)
        if fn.is_method and isinstance(func, ast.Attribute):
            target = self._resolve_self_call(fn, func)
            if target is not None:
                return target, None
        dotted = self._resolve_dotted(fn.module, func)
        if dotted is None:
            return None, None
        return self._resolve_dotted_callee(dotted)

    def _resolve_self_call(
        self, fn: FunctionInfo, func: ast.Attribute
    ) -> Optional[FunctionInfo]:
        cls = self.classes.get(
            f"{fn.module.name}.{fn.cls_name}"
        )
        if cls is None:
            return None
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            return cls.lookup_method(self, func.attr)
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            attr_type = cls.attr_types.get(receiver.attr)
            if attr_type and attr_type in self.classes:
                return self.classes[attr_type].lookup_method(
                    self, func.attr
                )
        return None

    def _resolve_dotted_callee(
        self, dotted: str
    ) -> Tuple[Optional[FunctionInfo], Optional[str]]:
        if dotted in self.functions:
            return self.functions[dotted], None
        if dotted in self.classes:
            init = self.classes[dotted].lookup_method(self, "__init__")
            # A constructor with no project __init__ is still a project
            # call target for taint purposes; surface the class itself.
            return init, dotted if init is None else None
        # ``mod.symbol`` where ``mod`` resolves to a project module.
        prefix = self.project.resolve_module_prefix(dotted)
        if prefix is not None and prefix != dotted:
            rest = dotted[len(prefix) + 1 :]
            candidate = f"{prefix}.{rest}"
            if candidate in self.functions:
                return self.functions[candidate], None
            if candidate in self.classes:
                init = self.classes[candidate].lookup_method(
                    self, "__init__"
                )
                return init, candidate if init is None else None
        return None, dotted

    # ------------------------------------------------------------- queries

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.cls_name is None:
            return None
        return self.classes.get(f"{fn.module.name}.{fn.cls_name}")

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    def iter_calls(
        self, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.Call, Optional[FunctionInfo], Optional[str]]]:
        """Every call site in ``fn`` with its resolution."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                target, external = self.resolve_call(fn, node)
                yield node, target, external
