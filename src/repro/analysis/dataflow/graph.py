"""Whole-program module table and import graph.

The single-file lint engine (:mod:`repro.analysis.engine`) sees one
function at a time; everything in :mod:`repro.analysis.dataflow` needs
the *program*: which modules exist, what each one imports, and (for the
call graph built on top) which symbols each module defines.  This module
is that substrate.

A :class:`Project` is a parsed snapshot of a source tree:

- :class:`ModuleInfo` — one parsed file: logical dotted name
  (``repro.sim.engine``), AST, source lines, the import-alias map the
  engine already computes, and the resolved **import edges**;
- :class:`ImportEdge` — one ``import``/``from`` statement resolved to
  the dotted module it depends on, with the source line (findings point
  at it) and whether the import is gated behind
  ``typing.TYPE_CHECKING`` (annotation-only edges do not create runtime
  layering dependencies and are excluded from the gate).

Resolution is *textual*, not executable: ``from repro.scheduler import
broker`` becomes an edge to ``repro.scheduler.broker`` when that module
is in the project, else to ``repro.scheduler``; external imports
(``threading``) are kept as opaque dotted names so the taint pass can
still match sources like ``time.time``.  Nothing is ever imported.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.engine import (
    _collect_imports,
    _collect_noqa,
    iter_python_files,
    logical_module,
)


@dataclass(frozen=True)
class ImportEdge:
    """One import dependency of a module."""

    source: str  #: importing module's dotted name
    target: str  #: imported dotted name (module-resolved when possible)
    lineno: int
    type_checking: bool = False  #: inside ``if TYPE_CHECKING:`` only
    toplevel: bool = True  #: module scope (False: deferred, in a def)


class ModuleInfo:
    """One parsed source file and its module-level facts."""

    def __init__(self, name: str, path: str, source: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: local name -> fully qualified dotted name (import aliases).
        self.imports: Dict[str, str] = _collect_imports(tree)
        #: line -> suppressed rule ids (``# repro: noqa`` pragmas).
        self.noqa = _collect_noqa(self.lines)
        #: filled by :meth:`Project._resolve_imports`.
        self.import_edges: List[ImportEdge] = []
        #: module-level symbol name -> "function" | "class".
        self.symbols: Dict[str, str] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.symbols[node.name] = "function"
            elif isinstance(node, ast.ClassDef):
                self.symbols[node.name] = "class"

    @property
    def package(self) -> str:
        """The dotted package holding this module (its parent)."""
        return self.name.rpartition(".")[0]

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        rules = self.noqa.get(lineno)
        if rules is None:
            return False
        return not rules or rule_id in rules


class Project:
    """A parsed source tree, keyed by logical module name."""

    def __init__(self, modules: Dict[str, ModuleInfo]):
        self.modules = modules

    @classmethod
    def load(cls, paths: Iterable[str]) -> "Project":
        """Parse every ``.py`` file under ``paths`` (deterministic
        order); files that fail to parse are skipped — the shallow lint
        pass already reports ``PARSE`` findings for them."""
        modules: Dict[str, ModuleInfo] = {}
        for path in iter_python_files(paths):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=path)
            except (OSError, SyntaxError):
                continue
            name = logical_module(path)
            modules[name] = ModuleInfo(name, path, source, tree)
        project = cls(modules)
        project._resolve_imports()
        return project

    # --------------------------------------------------------- resolution

    def resolve_module_prefix(self, dotted: str) -> Optional[str]:
        """Longest prefix of ``dotted`` that names a project module."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def _resolve_imports(self) -> None:
        for module in self.modules.values():
            module.import_edges = list(self._edges_for(module))

    def _edges_for(self, module: ModuleInfo) -> Iterable[ImportEdge]:
        type_checking_spans = _type_checking_lines(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield ImportEdge(
                        source=module.name,
                        target=alias.name,
                        lineno=node.lineno,
                        type_checking=node.lineno in type_checking_spans,
                        toplevel=node.col_offset == 0,
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self._import_from_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    # ``from pkg import mod`` names a submodule when one
                    # exists; otherwise the dependency is on ``pkg``.
                    candidate = f"{base}.{alias.name}"
                    target = (
                        candidate if candidate in self.modules else base
                    )
                    yield ImportEdge(
                        source=module.name,
                        target=target,
                        lineno=node.lineno,
                        type_checking=node.lineno in type_checking_spans,
                        toplevel=node.col_offset == 0,
                    )

    def _import_from_base(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: level 1 is the module's own package (which,
        # for a package ``__init__``, is the module name itself).
        parts = module.name.split(".")
        if not module.path.endswith(os.sep + "__init__.py"):
            parts = parts[:-1]
        up = node.level - 1
        if up:
            if len(parts) < up:
                return None
            parts = parts[:-up]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None


def _type_checking_lines(tree: ast.Module) -> Set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` guards (annotation-only
    imports; excluded from runtime layering)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_guard = (
            isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
        ) or (
            isinstance(test, ast.Attribute)
            and test.attr == "TYPE_CHECKING"
        )
        if not is_guard:
            continue
        for child in node.body:
            end = getattr(child, "end_lineno", child.lineno)
            lines.update(range(child.lineno, end + 1))
    return lines


def top_package(module_name: str, root: str = "repro") -> Optional[str]:
    """First package component under ``root``: ``repro.sim.engine`` →
    ``sim``; the root module itself (``repro``) has none."""
    parts = module_name.split(".")
    if not parts or parts[0] != root or len(parts) < 2:
        return None
    return parts[1]
