"""Import-layering gate: the architecture DAG, machine-enforced.

``docs/architecture.md`` describes the package layering in prose
("strict, no cycles, ``common`` at the bottom").  This pass encodes
that DAG as data — :data:`ALLOWED_DEPENDENCIES` maps each top-level
package under ``repro`` to the set of packages it may import — and
reports every violation as an ``ARCH-LAYER`` finding:

- **upward imports** — an import edge to a package not in the
  importer's allowed set (e.g. ``gpu`` importing ``sim``);
- **module cycles** — a cycle among project modules, found by DFS over
  the resolved import graph (covers intra-package cycles the DAG check
  cannot see).

``if TYPE_CHECKING:`` imports are annotation-only and never create a
runtime dependency, so they are exempt from both checks.  A module may
always import within its own package and from ``repro`` itself (the
root ``__init__`` re-exports nothing heavy).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.analysis.engine import Finding
from repro.analysis.dataflow.graph import (
    ImportEdge,
    ModuleInfo,
    Project,
    top_package,
)

RULE_ID = "ARCH-LAYER"
SEVERITY = "error"

_EVERYTHING = frozenset(
    {
        "common",
        "telemetry",
        "chaos",
        "vfs",
        "guest",
        "gpu",
        "db",
        "scheduler",
        "packer",
        "sim",
        "resources",
        "art",
        "pipeline",
        "analysis",
    }
)

#: The layer DAG from ``docs/architecture.md``: package -> packages it
#: may import.  Own-package imports are always allowed and not listed.
ALLOWED_DEPENDENCIES: Dict[str, FrozenSet[str]] = {
    "common": frozenset(),
    "telemetry": frozenset({"common"}),
    "chaos": frozenset({"common"}),
    "vfs": frozenset({"common"}),
    "guest": frozenset({"common"}),
    "gpu": frozenset({"common", "telemetry"}),
    "db": frozenset({"common", "telemetry", "chaos"}),
    "scheduler": frozenset({"common", "telemetry", "chaos"}),
    "packer": frozenset({"common", "vfs", "guest"}),
    "sim": frozenset(
        {"common", "telemetry", "chaos", "vfs", "guest", "gpu"}
    ),
    "resources": frozenset(
        {"common", "vfs", "guest", "gpu", "packer", "sim"}
    ),
    "art": frozenset(
        {
            "common",
            "telemetry",
            "chaos",
            "vfs",
            "guest",
            "gpu",
            "db",
            "scheduler",
            "packer",
            "sim",
            "resources",
        }
    ),
    "pipeline": frozenset(
        {
            "common",
            "telemetry",
            "chaos",
            "vfs",
            "guest",
            "gpu",
            "db",
            "scheduler",
            "packer",
            "sim",
            "resources",
            "art",
        }
    ),
    "analysis": frozenset({"common", "telemetry", "db", "art"}),
    "cli": _EVERYTHING,
    "__main__": frozenset({"cli"}),
}


def _assert_dag() -> None:
    """The encoded layering must itself be acyclic (sanity check run at
    import time; a cycle here is a programming error in this table)."""
    state: Dict[str, int] = {}  # 0 visiting, 1 done

    def visit(pkg: str, trail: List[str]) -> None:
        mark = state.get(pkg)
        if mark == 1:
            return
        if mark == 0:
            raise ValueError(
                "ALLOWED_DEPENDENCIES cycle: " + " -> ".join(trail + [pkg])
            )
        state[pkg] = 0
        for dep in sorted(ALLOWED_DEPENDENCIES.get(pkg, frozenset())):
            visit(dep, trail + [pkg])
        state[pkg] = 1

    for pkg in sorted(ALLOWED_DEPENDENCIES):
        visit(pkg, [])


_assert_dag()


def _edge_package(edge: ImportEdge) -> Optional[str]:
    return top_package(edge.target)


def _upward_findings(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for name in sorted(project.modules):
        module = project.modules[name]
        source_pkg = top_package(module.name)
        if source_pkg is None:
            # ``repro`` root / ``repro.cli`` / ``repro.__main__`` are
            # module-level entries: key them by their own name.
            tail = module.name.rpartition(".")[2]
            if tail in ALLOWED_DEPENDENCIES:
                source_pkg = tail
            else:
                continue
        allowed = ALLOWED_DEPENDENCIES.get(source_pkg)
        if allowed is None:
            continue  # unknown package (e.g. test fixtures): no gate
        reported: Set[tuple] = set()
        for edge in module.import_edges:
            if edge.type_checking:
                continue
            if (edge.lineno, edge.target) in reported:
                continue  # one finding per import statement + target
            target_pkg = _edge_package(edge)
            if target_pkg is None or target_pkg == source_pkg:
                continue
            if target_pkg not in ALLOWED_DEPENDENCIES:
                continue
            if target_pkg in allowed:
                continue
            reported.add((edge.lineno, edge.target))
            permitted = ", ".join(sorted(allowed)) or "(nothing)"
            findings.append(
                Finding(
                    file=module.path,
                    line=edge.lineno,
                    col=0,
                    rule_id=RULE_ID,
                    severity=SEVERITY,
                    message=(
                        f"layering violation: {module.name} (layer "
                        f"'{source_pkg}') imports {edge.target} (layer "
                        f"'{target_pkg}'); '{source_pkg}' may only "
                        f"depend on: {permitted} — see the layer DAG "
                        "in docs/architecture.md"
                    ),
                    snippet=module.line_text(edge.lineno).strip(),
                )
            )
    return findings


def _cycle_findings(project: Project) -> List[Finding]:
    """Report each import cycle among project modules once, at the
    back-edge import statement that closes it."""
    graph: Dict[str, List[ImportEdge]] = {}
    for name in sorted(project.modules):
        module = project.modules[name]
        edges = []
        for edge in module.import_edges:
            if edge.type_checking or not edge.toplevel:
                # Deferred (function-scope) imports cannot create an
                # import-time cycle; that is exactly why they exist.
                continue
            if edge.target in project.modules and edge.target != name:
                edges.append(edge)
        graph[name] = sorted(edges, key=lambda e: (e.target, e.lineno))

    findings: List[Finding] = []
    color: Dict[str, int] = {}  # 1 on stack, 2 done
    stack: List[str] = []

    def visit(name: str) -> None:
        color[name] = 1
        stack.append(name)
        for edge in graph.get(name, []):
            mark = color.get(edge.target)
            if mark == 2:
                continue
            if mark == 1:
                start = stack.index(edge.target)
                cycle = stack[start:] + [edge.target]
                module = project.modules[name]
                findings.append(
                    Finding(
                        file=module.path,
                        line=edge.lineno,
                        col=0,
                        rule_id=RULE_ID,
                        severity=SEVERITY,
                        message=(
                            "import cycle: "
                            + " -> ".join(cycle)
                            + "; break the cycle (move the shared "
                            "piece down a layer or defer the import)"
                        ),
                        snippet=module.line_text(edge.lineno).strip(),
                    )
                )
                continue
            visit(edge.target)
        stack.pop()
        color[name] = 2

    for name in sorted(graph):
        if name not in color:
            visit(name)
    return findings


def find_layering_violations(project: Project) -> List[Finding]:
    """Run the layering gate; sorted ``ARCH-LAYER`` findings."""
    findings = _upward_findings(project) + _cycle_findings(project)
    findings.sort(key=Finding.sort_key)
    return findings
