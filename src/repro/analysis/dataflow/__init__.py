"""Whole-program ("deep") analyses under the lint engine.

``repro lint --deep`` layers three interprocedural passes on top of the
single-file rule packs:

- :mod:`~repro.analysis.dataflow.races` — RacerD-style lockset race
  detection (``RACE-INCONSISTENT``);
- :mod:`~repro.analysis.dataflow.taint` — determinism taint from
  wall-clock/uuid/random sources into identity sinks (``DET-FLOW``);
- :mod:`~repro.analysis.dataflow.layering` — the architecture layer DAG,
  machine-enforced (``ARCH-LAYER``).

All three emit ordinary :class:`~repro.analysis.engine.Finding` objects,
so ``# repro: noqa[...]`` pragmas and the baseline ratchet apply
unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analysis.engine import Finding
from repro.analysis.dataflow.callgraph import CallGraph
from repro.analysis.dataflow.graph import ModuleInfo, Project
from repro.analysis.dataflow.layering import find_layering_violations
from repro.analysis.dataflow.races import find_races
from repro.analysis.dataflow.taint import find_taint_flows

__all__ = [
    "CallGraph",
    "Project",
    "deep_lint_paths",
    "find_layering_violations",
    "find_races",
    "find_taint_flows",
]


def deep_lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Run all whole-program passes over ``paths``.

    Returns sorted findings with ``# repro: noqa`` pragmas already
    applied (matching the single-file engine's contract).
    """
    project = Project.load(paths)
    graph = CallGraph(project)
    findings = (
        find_races(project, graph)
        + find_taint_flows(project, graph)
        + find_layering_violations(project)
    )
    by_path: Dict[str, ModuleInfo] = {
        module.path: module for module in project.modules.values()
    }
    kept = [
        finding
        for finding in findings
        if not (
            finding.file in by_path
            and by_path[finding.file].suppressed(
                finding.line, finding.rule_id
            )
        )
    ]
    kept.sort(key=Finding.sort_key)
    return kept
