"""Determinism taint: wall-clock/uuid/random values must not reach
content identity.

The run cache, single-flight dedup, WAL replay, and the admission
decision log all assume their inputs are *pure functions of content*.
The single-file determinism rules forbid raw nondeterminism inside the
deterministic zones; this pass asks the sharper, whole-program
question: does a nondeterministic **value** — wherever it was minted —
*flow into* one of the identity/replay surfaces?

- **Sources** — ``time.time``/``time.time_ns``, ``datetime.now`` and
  friends, ``uuid.uuid1/4``, ``os.urandom``, the module-level
  ``random.*`` draws, and ``secrets.*``.  The sanctioned choke points
  (:mod:`repro.common.timeutil`, ``rng``, ``ids``) are exempt — routing
  through them *is* the fix — and values returned by them are clean.
- **Sinks** — the :class:`~repro.art.spec.RunSpec` constructor and
  ``from_artifacts`` (anything in a spec lands in the fingerprint),
  ``canonical_dumps`` and the ``sha256_*`` content hashes, WAL
  ``append``, the run-cache key surface (``RunCache.lookup`` /
  ``consult`` / ``store`` / ``invalidate``), and the admission decision
  log (``Decision`` / ``_log_locked`` / ``_overflow_record_locked``).
- **Propagation** — through assignments, arithmetic/f-strings/
  containers, ``self.X`` attributes (flow-insensitive per class), and
  across calls via per-function summaries (tainted returns, tainted
  params reaching returns or sinks), iterated so a source→sink path of
  up to :data:`MAX_HOPS` call hops is found.

A hit is a ``DET-FLOW`` **error**: the fix is to route the value
through a choke point (or drop it from the identity payload), not to
baseline it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.engine import Finding
from repro.analysis.dataflow.callgraph import CallGraph, FunctionInfo
from repro.analysis.dataflow.graph import Project
from repro.analysis.rules_determinism import SANCTIONED_MODULES

RULE_ID = "DET-FLOW"
SEVERITY = "error"

#: Maximum call hops a source→sink path may take and still be reported.
MAX_HOPS = 3

#: Nondeterministic value mints (resolved dotted call names).
SOURCE_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.gauss",
        "random.getrandbits",
        "random.randbytes",
        "secrets.token_hex",
        "secrets.token_bytes",
        "secrets.token_urlsafe",
    }
)

#: Identity/replay sinks: dotted-name prefix -> human label.  Matched
#: against both resolved project functions and external dotted names,
#: so fixture trees that *import* the real choke points still match.
SINK_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro.common.jsonutil.canonical_dumps", "canonical_dumps"),
    ("repro.common.hashing.sha256", "content hashing"),
    ("repro.art.spec.RunSpec", "RunSpec fingerprint identity"),
    ("repro.art.cache.RunCache.lookup", "run-cache key"),
    ("repro.art.cache.RunCache.consult", "run-cache key"),
    ("repro.art.cache.RunCache.store", "run-cache entry"),
    ("repro.art.cache.RunCache.invalidate", "run-cache key"),
    ("repro.db.engine.wal.WalWriter.append", "WAL append"),
    (
        "repro.scheduler.admission.AdmissionController._log_locked",
        "admission decision log",
    ),
    (
        "repro.scheduler.admission.AdmissionController."
        "_overflow_record_locked",
        "admission decision log",
    ),
    ("repro.scheduler.admission.Decision", "admission decision log"),
)

#: Attribute-call fallback: ``<receiver>.append(...)`` where the
#: receiver's tail name marks it as the write-ahead log.
WAL_RECEIVER_NAMES = frozenset({"wal", "_wal"})

#: Sources of taint for a value (dotted source-call names); empty set
#: means clean.
Taint = FrozenSet[str]
CLEAN: Taint = frozenset()


@dataclass
class Summary:
    """Interprocedural facts about one function."""

    returns: Taint = CLEAN  #: sources its return value may carry
    param_taints_return: bool = False
    #: sink reachable by passing a tainted argument, with hop count.
    param_sink: Optional[Tuple[str, int]] = None


def _sink_label(qualname: Optional[str]) -> Optional[str]:
    if qualname is None:
        return None
    for prefix, label in SINK_PREFIXES:
        if qualname == prefix or qualname.startswith(prefix + "."):
            return label
    return None


def _is_sanctioned(module_name: str) -> bool:
    for sanctioned in SANCTIONED_MODULES:
        if module_name == sanctioned or module_name.startswith(
            sanctioned + "."
        ):
            return True
    return False


class _FunctionTaint:
    """One pass over one function body.

    ``param_mode`` runs the body with every parameter marked tainted
    (by the pseudo-source ``<param>``) to compute the function's
    summary; the real pass uses concrete source taint only.
    """

    def __init__(
        self,
        analysis: "TaintAnalysis",
        fn: FunctionInfo,
        param_mode: bool,
    ):
        self.analysis = analysis
        self.fn = fn
        self.param_mode = param_mode
        self.names: Dict[str, Taint] = {}
        self.summary = Summary()
        self.findings: List[Finding] = []
        if param_mode:
            args = fn.node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                if arg.arg != "self":
                    self.names[arg.arg] = frozenset({"<param>"})

    # ---------------------------------------------------------- statements

    def run(self) -> None:
        self._visit_body(self.fn.node.body)

    def _visit_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint)
        elif isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value) | self._eval(stmt.target)
            self._assign(stmt.target, taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._eval(stmt.value)
                real = taint - {"<param>"}
                if real:
                    self.summary.returns = self.summary.returns | real
                if "<param>" in taint:
                    self.summary.param_taints_return = True
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._assign(stmt.target, self._eval(stmt.iter))
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint)
            self._visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested defs analyzed as their own functions? no —
            # they are closures; skipped (documented imprecision).
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)

    def _assign(self, target: ast.AST, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            if taint:
                self.names[target.id] = (
                    self.names.get(target.id, CLEAN) | taint
                )
            else:
                self.names.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taint)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint)
        elif isinstance(target, ast.Attribute):
            real = taint - {"<param>"}
            if (
                real
                and not self.param_mode
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn.cls_name is not None
            ):
                attrs = self.analysis.attr_taint.setdefault(
                    f"{self.fn.module.name}.{self.fn.cls_name}", {}
                )
                attrs[target.attr] = (
                    attrs.get(target.attr, CLEAN) | real
                )
        elif isinstance(target, ast.Subscript):
            self._eval(target.value)

    # --------------------------------------------------------- expressions

    def _eval(self, node: Optional[ast.AST]) -> Taint:
        if node is None:
            return CLEAN
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Name):
            return self.names.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.fn.cls_name is not None
            ):
                attrs = self.analysis.attr_taint.get(
                    f"{self.fn.module.name}.{self.fn.cls_name}", {}
                )
                return attrs.get(node.attr, CLEAN)
            return self._eval(node.value)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            taint = CLEAN
            for value in node.values:
                taint = taint | self._eval(value)
            return taint
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.JoinedStr):
            taint = CLEAN
            for value in node.values:
                taint = taint | self._eval(value)
            return taint
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            taint = CLEAN
            for element in node.elts:
                taint = taint | self._eval(element)
            return taint
        if isinstance(node, ast.Dict):
            taint = CLEAN
            for key in node.keys:
                taint = taint | self._eval(key)
            for value in node.values:
                taint = taint | self._eval(value)
            return taint
        if isinstance(node, ast.Subscript):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Compare):
            # Comparisons collapse to booleans; treat as clean (a
            # deliberately accepted false-negative class).
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return CLEAN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            taint = CLEAN
            for generator in node.generators:
                taint = taint | self._eval(generator.iter)
            return taint | self._eval(node.elt)
        if isinstance(node, ast.DictComp):
            taint = CLEAN
            for generator in node.generators:
                taint = taint | self._eval(generator.iter)
            return taint | self._eval(node.key) | self._eval(node.value)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value)
            self._assign(node.target, taint)
            return taint
        return CLEAN

    def _eval_call(self, node: ast.Call) -> Taint:
        arg_taint = CLEAN
        for arg in node.args:
            arg_taint = arg_taint | self._eval(arg)
        for keyword in node.keywords:
            arg_taint = arg_taint | self._eval(keyword.value)
        target, external = self.analysis.graph.resolve_call(
            self.fn, node
        )
        qualname = target.qualname if target is not None else external
        # Source?
        if (
            external in SOURCE_CALLS
            and not _is_sanctioned(self.fn.module.name)
        ):
            return arg_taint | frozenset({external})
        # Sink?
        label = _sink_label(qualname)
        if label is None and self._wal_receiver(node):
            label = "WAL append"
        if label is not None:
            self._note_sink(node, label, hops=0)
            return arg_taint
        if target is not None:
            summary = self.analysis.summaries.get(
                target.qualname, Summary()
            )
            if summary.param_sink is not None and arg_taint:
                sink, hops = summary.param_sink
                if hops + 1 <= MAX_HOPS:
                    self._note_sink(
                        node,
                        sink,
                        hops=hops + 1,
                        via=target,
                        arg_taint=arg_taint,
                    )
            result = summary.returns
            if summary.param_taints_return and arg_taint:
                result = result | arg_taint
            return result
        # Unknown external callee: tainted arguments launder through
        # (str(now), format(now, ...), now.isoformat(), ...).
        receiver_taint = CLEAN
        if isinstance(node.func, ast.Attribute):
            receiver_taint = self._eval(node.func.value)
        return arg_taint | receiver_taint

    def _wal_receiver(self, node: ast.Call) -> bool:
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr == "append"
        ):
            return False
        receiver = func.value
        tail = None
        if isinstance(receiver, ast.Attribute):
            tail = receiver.attr
        elif isinstance(receiver, ast.Name):
            tail = receiver.id
        return tail in WAL_RECEIVER_NAMES

    def _note_sink(
        self,
        node: ast.Call,
        label: str,
        hops: int,
        via: Optional[FunctionInfo] = None,
        arg_taint: Optional[Taint] = None,
    ) -> None:
        """A call that is (or reaches) a sink; check its arguments."""
        if arg_taint is None:
            arg_taint = CLEAN
            for arg in node.args:
                arg_taint = arg_taint | self._eval(arg)
            for keyword in node.keywords:
                arg_taint = arg_taint | self._eval(keyword.value)
        real = arg_taint - {"<param>"}
        if "<param>" in arg_taint and hops < MAX_HOPS:
            # Parameter reaches this sink: export in the summary so
            # callers passing tainted values get the finding.
            current = self.summary.param_sink
            if current is None or current[1] > hops:
                self.summary.param_sink = (label, hops)
        if not real or self.param_mode:
            return
        lineno = getattr(node, "lineno", 1)
        sources = ", ".join(sorted(real))
        path = (
            f" via {via.name}() ({hops} call hop"
            f"{'s' if hops != 1 else ''})"
            if via is not None
            else ""
        )
        self.findings.append(
            Finding(
                file=self.fn.module.path,
                line=lineno,
                col=getattr(node, "col_offset", 0),
                rule_id=RULE_ID,
                severity=SEVERITY,
                message=(
                    f"nondeterministic value from {sources} flows into "
                    f"{label}{path}; route through the "
                    "timeutil/rng/ids choke points or drop it from the "
                    "identity payload"
                ),
                snippet=self.fn.module.line_text(lineno).strip(),
            )
        )


class TaintAnalysis:
    """Whole-program driver: summaries to fixpoint, then findings."""

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.summaries: Dict[str, Summary] = {}
        #: class qualname -> {attr -> sources} (flow-insensitive).
        self.attr_taint: Dict[str, Dict[str, Taint]] = {}

    def run(self) -> List[Finding]:
        functions = [
            fn
            for fn in self.graph.iter_functions()
            if not _is_sanctioned(fn.module.name)
        ]
        # Summary fixpoint: MAX_HOPS rounds bound path length.
        for _ in range(MAX_HOPS):
            changed = False
            for fn in functions:
                walker = _FunctionTaint(self, fn, param_mode=True)
                walker.run()
                # Merge the real-mode pass too so self-attribute taint
                # crosses method boundaries.
                real = _FunctionTaint(self, fn, param_mode=False)
                real.run()
                summary = Summary(
                    returns=walker.summary.returns
                    | real.summary.returns,
                    param_taints_return=walker.summary.param_taints_return,
                    param_sink=walker.summary.param_sink,
                )
                if summary != self.summaries.get(fn.qualname):
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        for fn in functions:
            walker = _FunctionTaint(self, fn, param_mode=False)
            walker.run()
            for finding in walker.findings:
                key = (finding.file, finding.line, finding.message)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(finding)
        findings.sort(key=Finding.sort_key)
        return findings


def find_taint_flows(
    project: Project, graph: CallGraph
) -> List[Finding]:
    """Run the determinism taint pass; sorted ``DET-FLOW`` findings."""
    return TaintAnalysis(project, graph).run()
