"""Lockset race detection over the call graph (RacerD-style).

The concurrency rule pack checks lock *hygiene* one statement at a time;
this pass checks lock *discipline* one class at a time: for every
``self.X`` attribute of a lock-owning class, are all the places that
touch it protected by a consistent lockset?  An attribute written under
``self._mu`` in one method and read bare in another is the classic
silent race — each method looks fine in isolation, the interleaving is
the bug.

Per-method summaries record, for every ``self.<attr>`` access, the set
of instance locks syntactically held (enclosing ``with self._lock:``
blocks).  Summaries then propagate through the class's internal call
graph: a private helper only ever invoked with ``self._mu`` held
inherits ``{_mu}`` as its *entry lockset* (the intersection over all
call sites), which is how ``_pop_locked``-style helpers analyze
correctly without annotations.  Public methods are assumed callable
bare — they are the entry points.

An attribute is reported (``RACE-INCONSISTENT``) when it is written
outside construction, at least one access is lock-protected, and at
least one access holds no lock in common with the attribute's dominant
lock.  Classes that own no locks are skipped entirely (single-threaded
by construction), as are attributes of known thread-safe types
(``threading.Event``, queues) and the lock attributes themselves.

Known imprecision (documented in ``docs/analysis.md``): aliasing through
non-``self`` receivers is invisible, locks are identified per-class by
attribute name, and a private method also called from outside the class
inherits locks it may not hold there.  False *negatives* are possible;
findings are warnings, and benign ones are annotated with
``# repro: noqa[RACE-INCONSISTENT]`` plus a reason.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.engine import Finding
from repro.analysis.dataflow.callgraph import (
    CONSTRUCTION_METHODS,
    CallGraph,
    ClassInfo,
    FunctionInfo,
)
from repro.analysis.dataflow.graph import Project
from repro.analysis.rules_concurrency import _is_lockish_name

RULE_ID = "RACE-INCONSISTENT"
SEVERITY = "warning"

#: Method names whose invocation mutates the receiver container.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Inferred attribute types that synchronize internally — accesses to
#: them are not data races even when locksets disagree.
THREADSAFE_TYPE_PREFIXES = (
    "threading.",
    "queue.",
    "multiprocessing.",
)


@dataclass(frozen=True)
class Access:
    """One ``self.<attr>`` touch inside one method."""

    attr: str
    method: str  #: method qualname
    node: ast.AST
    is_write: bool
    held: FrozenSet[str]  #: syntactic lockset at the access


@dataclass(frozen=True)
class InternalCall:
    """A ``self.helper()`` call site with its syntactic lockset."""

    caller: str  #: method qualname
    callee: str  #: method qualname (same class)
    held: FrozenSet[str]


class _MethodScanner(ast.NodeVisitor):
    """Collect accesses and intra-class call sites for one method,
    tracking the stack of instance locks held by ``with`` blocks."""

    def __init__(
        self,
        graph: CallGraph,
        cls: ClassInfo,
        fn: FunctionInfo,
    ):
        self.graph = graph
        self.cls = cls
        self.fn = fn
        self.accesses: List[Access] = []
        self.calls: List[InternalCall] = []
        self._held: List[str] = []

    # --------------------------------------------------------------- locks

    def _lock_token(self, expr: ast.AST) -> Optional[str]:
        """``self._mu`` (or ``self._mu.acquire_timeout(...)``) -> token."""
        if isinstance(expr, ast.Call):
            expr = expr.func
            if isinstance(expr, ast.Attribute) and isinstance(
                expr.value, ast.Attribute
            ):
                # ``with self._mu.something():`` — treat the attribute
                # as the lock when it is one.
                expr = expr.value
        if not (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return None
        attr = expr.attr
        if attr in self.cls.lock_attrs or _is_lockish_name(attr):
            return attr
        return None

    def visit_With(self, node: ast.With) -> None:
        tokens = [
            token
            for token in (
                self._lock_token(item.context_expr) for item in node.items
            )
            if token is not None
        ]
        self._held.extend(tokens)
        self.generic_visit(node)
        for _ in tokens:
            self._held.pop()

    visit_AsyncWith = visit_With

    # ------------------------------------------------------------ accesses

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr not in self.cls.lock_attrs
            and not _is_lockish_name(node.attr)
            and not self._thread_safe(node.attr)
        ):
            self.accesses.append(
                Access(
                    attr=node.attr,
                    method=self.fn.qualname,
                    node=node,
                    is_write=isinstance(
                        node.ctx, (ast.Store, ast.Del)
                    ),
                    held=frozenset(self._held),
                )
            )
        self.generic_visit(node)

    def _thread_safe(self, attr: str) -> bool:
        attr_type = self.cls.attr_types.get(attr, "")
        return attr_type.startswith(THREADSAFE_TYPE_PREFIXES)

    def visit_Call(self, node: ast.Call) -> None:
        # Mutating method on a self attribute counts as a write to it.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            receiver = func.value
            if (
                receiver.attr not in self.cls.lock_attrs
                and not _is_lockish_name(receiver.attr)
                and not self._thread_safe(receiver.attr)
            ):
                self.accesses.append(
                    Access(
                        attr=receiver.attr,
                        method=self.fn.qualname,
                        node=receiver,
                        is_write=True,
                        held=frozenset(self._held),
                    )
                )
        target, _external = self.graph.resolve_call(self.fn, node)
        if (
            target is not None
            and target.cls_name is not None
            and self.graph.class_of(target) is self.cls
        ):
            self.calls.append(
                InternalCall(
                    caller=self.fn.qualname,
                    callee=target.qualname,
                    held=frozenset(self._held),
                )
            )
        self.generic_visit(node)

    # Subscript stores (``self._inflight[k] = v``) arrive as Attribute
    # loads on the value side; upgrade them to writes.
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and (
            isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == "self"
        ):
            receiver = node.value
            if (
                receiver.attr not in self.cls.lock_attrs
                and not _is_lockish_name(receiver.attr)
                and not self._thread_safe(receiver.attr)
            ):
                self.accesses.append(
                    Access(
                        attr=receiver.attr,
                        method=self.fn.qualname,
                        node=receiver,
                        is_write=True,
                        held=frozenset(self._held),
                    )
                )
        self.generic_visit(node)


def _entry_locksets(
    cls: ClassInfo,
    calls: List[InternalCall],
    methods: Dict[str, FunctionInfo],
) -> Dict[str, FrozenSet[str]]:
    """Locks guaranteed held on entry to each method.

    Public methods (and anything never called internally) are entry
    points: their entry lockset is empty.  A private method's entry
    lockset is the intersection over all internal call sites of
    (locks held at the site ∪ the caller's own entry lockset),
    iterated to a fixpoint.
    """
    by_callee: Dict[str, List[InternalCall]] = {}
    for call in calls:
        by_callee.setdefault(call.callee, []).append(call)
    entry: Dict[str, FrozenSet[str]] = {}
    universe = frozenset(cls.lock_attrs | {"<any>"})
    for qualname, fn in methods.items():
        is_private = fn.name.startswith("_") and not fn.name.startswith(
            "__"
        )
        if is_private and qualname in by_callee:
            entry[qualname] = universe  # refined below
        else:
            entry[qualname] = frozenset()
    for _ in range(len(methods) + 1):
        changed = False
        for qualname in entry:
            sites = by_callee.get(qualname)
            if not sites or entry[qualname] == frozenset():
                continue
            merged: Optional[FrozenSet[str]] = None
            for site in sites:
                caller_entry = entry.get(site.caller, frozenset())
                if "<any>" in caller_entry:
                    continue  # caller still at top; skip this round
                site_set = site.held | caller_entry
                merged = (
                    site_set if merged is None else merged & site_set
                )
            if merged is not None and merged != entry[qualname]:
                entry[qualname] = merged
                changed = True
        if not changed:
            break
    # Anything still unrefined (call cycles among private methods)
    # degrades to the safe empty set.
    return {
        qualname: (
            frozenset() if "<any>" in locks else locks
        )
        for qualname, locks in entry.items()
    }


def _construction_only(
    cls: ClassInfo,
    calls: List[InternalCall],
    methods: Dict[str, FunctionInfo],
) -> Set[str]:
    """Private methods reachable *only* from construction methods.

    ``__init__`` calling ``self._recover()`` runs before the instance
    can be shared, so ``_recover``'s unlocked accesses are construction,
    not racing.  Greatest fixpoint: assume every internally-called
    private method qualifies, then evict any with a caller that is
    neither a construction method nor itself construction-only.
    """
    callers_of: Dict[str, Set[str]] = {}
    for call in calls:
        callers_of.setdefault(call.callee, set()).add(call.caller)
    construction = {
        f"{cls.qualname}.{name}" for name in CONSTRUCTION_METHODS
    }
    candidates = {
        qualname
        for qualname, fn in methods.items()
        if fn.name.startswith("_")
        and not fn.name.startswith("__")
        and qualname in callers_of
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(candidates):
            for caller in callers_of.get(qualname, set()):
                if caller in construction or caller in candidates:
                    continue
                candidates.discard(qualname)
                changed = True
                break
    return candidates


def _analyze_class(graph: CallGraph, cls: ClassInfo) -> List[Finding]:
    if not cls.lock_attrs:
        return []
    accesses: List[Access] = []
    calls: List[InternalCall] = []
    analyzed: Dict[str, FunctionInfo] = {}
    for name, fn in cls.methods.items():
        scanner = _MethodScanner(graph, cls, fn)
        scanner.visit(fn.node)
        calls.extend(scanner.calls)
        if name in CONSTRUCTION_METHODS:
            continue  # call sites matter; the accesses never race
        accesses.extend(scanner.accesses)
        analyzed[fn.qualname] = fn
    cons_only = _construction_only(cls, calls, analyzed)
    accesses = [
        access for access in accesses if access.method not in cons_only
    ]
    construction = {
        f"{cls.qualname}.{name}" for name in CONSTRUCTION_METHODS
    }
    runtime_calls = [
        call
        for call in calls
        if call.caller not in construction
        and call.caller not in cons_only
    ]
    entry = _entry_locksets(cls, runtime_calls, analyzed)
    by_attr: Dict[str, List[Tuple[Access, FrozenSet[str]]]] = {}
    for access in accesses:
        effective = access.held | entry.get(access.method, frozenset())
        by_attr.setdefault(access.attr, []).append((access, effective))
    findings: List[Finding] = []
    for attr in sorted(by_attr):
        findings.extend(_judge_attr(cls, attr, by_attr[attr]))
    return findings


def _judge_attr(
    cls: ClassInfo,
    attr: str,
    accesses: List[Tuple[Access, FrozenSet[str]]],
) -> List[Finding]:
    if not any(access.is_write for access, _ in accesses):
        return []  # read-only after construction
    guarded = [
        (access, locks) for access, locks in accesses if locks
    ]
    if not guarded:
        return []  # never lock-protected: thread-confined by intent
    common: Optional[Set[str]] = None
    for _, locks in accesses:
        common = set(locks) if common is None else common & set(locks)
    if common:
        return []  # one lock protects every access
    # Dominant lock: the one protecting the most accesses.
    counts: Dict[str, int] = {}
    for _, locks in guarded:
        for lock in locks:
            counts[lock] = counts.get(lock, 0) + 1
    dominant = sorted(
        counts, key=lambda lock: (-counts[lock], lock)
    )[0]
    guarded_writes = sorted(
        access.method.rsplit(".", 1)[-1]
        for access, locks in guarded
        if access.is_write and dominant in locks
    )
    context = (
        f"written under self.{dominant} in "
        f"{', '.join(guarded_writes[:3])}()"
        if guarded_writes
        else f"guarded by self.{dominant} elsewhere"
    )
    findings = []
    reported_methods: Set[str] = set()
    for access, locks in sorted(
        accesses,
        key=lambda pair: (
            getattr(pair[0].node, "lineno", 0),
            getattr(pair[0].node, "col_offset", 0),
        ),
    ):
        if dominant in locks:
            continue
        if access.method in reported_methods:
            continue
        reported_methods.add(access.method)
        lineno = getattr(access.node, "lineno", cls.node.lineno)
        kind = "written" if access.is_write else "read"
        findings.append(
            Finding(
                file=cls.module.path,
                line=lineno,
                col=getattr(access.node, "col_offset", 0),
                rule_id=RULE_ID,
                severity=SEVERITY,
                message=(
                    f"attribute self.{attr} of {cls.node.name} is "
                    f"{context} but {kind} here without it "
                    f"(method {access.method.rsplit('.', 1)[-1]}); "
                    "inconsistent lockset = data race"
                ),
                snippet=cls.module.line_text(lineno).strip(),
            )
        )
    return findings


def find_races(project: Project, graph: CallGraph) -> List[Finding]:
    """Run the lockset analysis over every lock-owning project class."""
    findings: List[Finding] = []
    for qualname in sorted(graph.classes):
        findings.extend(_analyze_class(graph, graph.classes[qualname]))
    findings.sort(key=Finding.sort_key)
    return findings
