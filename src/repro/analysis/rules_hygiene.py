"""Hygiene rules: failure visibility and API conventions.

A reproducibility system lives or dies on *observable* failure — a
swallowed exception is a run that silently diverged from its record.
Mutable default arguments are cross-call shared state in disguise (the
same class of bug as an unseeded global RNG).  And telemetry metric
names must follow the Prometheus conventions the exporters assume, or
archived experiments stop being comparable.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.engine import FileContext, Finding, Rule

#: Exception names whose handlers are "broad" (catch nearly everything).
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Registry methods whose first argument is a metric name.
METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


class SwallowedExceptionRule(Rule):
    """A broad ``except`` whose body neither raises nor calls anything
    drops the error on the floor: no log, no event, no re-raise."""

    rule_id = "HYG-SWALLOW"
    severity = "error"
    description = "broad except swallows the exception silently"
    interests = (ast.ExceptHandler,)

    def visit(
        self, node: ast.ExceptHandler, ctx: FileContext
    ) -> Iterator[Finding]:
        if not self._is_broad(node, ctx):
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Raise, ast.Call, ast.Return)):
                    return
        caught = self._caught_name(node, ctx) or "everything"
        yield self.finding(
            ctx,
            node,
            f"except {caught} swallows the error: no raise, no log, no "
            "structured record; emit a telemetry event or re-raise",
        )

    @staticmethod
    def _is_broad(node: ast.ExceptHandler, ctx: FileContext) -> bool:
        if node.type is None:  # bare except
            return True
        exprs = (
            node.type.elts
            if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        for expr in exprs:
            name = ctx.qualified_name(expr)
            if name and name.split(".")[-1] in BROAD_EXCEPTIONS:
                return True
        return False

    @staticmethod
    def _caught_name(
        node: ast.ExceptHandler, ctx: FileContext
    ) -> Optional[str]:
        if node.type is None:
            return None
        return ctx.qualified_name(node.type)


class MutableDefaultRule(Rule):
    """``def f(x=[])`` shares one list across every call — hidden
    global state, the hygiene twin of an unseeded RNG."""

    rule_id = "HYG-MUTABLE-DEFAULT"
    severity = "error"
    description = "mutable default argument"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._is_mutable(default, ctx):
                yield self.finding(
                    ctx,
                    default,
                    f"mutable default in {node.name}(): the object is "
                    "shared across calls; default to None and create "
                    "inside the body",
                )

    @staticmethod
    def _is_mutable(node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            name = ctx.qualified_name(node.func)
            return name in (
                "list",
                "dict",
                "set",
                "collections.defaultdict",
                "collections.OrderedDict",
                "collections.deque",
            )
        return False


class MetricNameRule(Rule):
    """Telemetry naming conventions, Prometheus-style: snake_case, and
    counters end in ``_total`` (the exporters and dashboards key on it)."""

    rule_id = "HYG-METRIC-NAME"
    severity = "warning"
    description = "telemetry metric name violates conventions"
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in METRIC_METHODS
        ):
            return
        # Only calls rooted in the metrics registry accessor:
        # get_metrics().counter(...) / registry.gauge(...) / metrics.x.
        receiver = func.value
        if not self._is_registry(receiver, ctx):
            return
        if not node.args:
            return
        name_arg = node.args[0]
        if not (
            isinstance(name_arg, ast.Constant)
            and isinstance(name_arg.value, str)
        ):
            return
        name = name_arg.value
        if not _METRIC_NAME_RE.match(name):
            yield self.finding(
                ctx,
                name_arg,
                f"metric name {name!r} is not snake_case "
                "([a-z][a-z0-9_]*)",
            )
        elif func.attr == "counter" and not name.endswith("_total"):
            yield self.finding(
                ctx,
                name_arg,
                f"counter {name!r} must end with '_total' "
                "(Prometheus counter convention)",
            )
        elif func.attr != "counter" and name.endswith("_total"):
            yield self.finding(
                ctx,
                name_arg,
                f"{func.attr} {name!r} ends with '_total', which is "
                "reserved for counters",
            )

    @staticmethod
    def _is_registry(receiver: ast.AST, ctx: FileContext) -> bool:
        if isinstance(receiver, ast.Call):
            name = ctx.qualified_name(receiver.func)
            return name is not None and name.endswith("get_metrics")
        if isinstance(receiver, (ast.Name, ast.Attribute)):
            tail = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else receiver.attr
            )
            return "metric" in tail.lower() or "registry" in tail.lower()
        return False


HYGIENE_RULES = (
    SwallowedExceptionRule,
    MutableDefaultRule,
    MetricNameRule,
)
