"""Cross-run validation and diagnosis.

The paper positions gem5art as "necessary infrastructure to bring [a]
structured approach to gem5 validation experiments" (Section III, citing
Walker et al.'s hardware-validation methodology and DiagSim's hidden-
default diagnosis).  This module supplies the analysis half of that
infrastructure:

- :func:`compare_stats` — error metrics between two statistics dicts
  (e.g. two simulator versions, or simulator vs hardware counters):
  per-stat relative error, MAPE over the intersection, and the worst
  offenders;
- :func:`diagnose_configs` — a DiagSim-style structured diff of two run
  parameter sets, flagging the "hidden details" (differing or one-sided
  keys) that can silently change results.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.common.errors import ValidationError


def compare_stats(
    reference: Dict[str, float],
    candidate: Dict[str, float],
    ignore_prefixes: Tuple[str, ...] = (),
) -> Dict[str, Any]:
    """Compare two statistics dictionaries.

    Returns ``{"common": n, "only_reference": [...], "only_candidate":
    [...], "errors": {stat: relative_error}, "mape": float,
    "worst": [(stat, error), ...]}``.  Relative error is
    ``(candidate - reference) / |reference|``; stats at zero in the
    reference are compared absolutely and reported only when the
    candidate differs.
    """
    reference = _filter(reference, ignore_prefixes)
    candidate = _filter(candidate, ignore_prefixes)
    common = sorted(set(reference) & set(candidate))
    if not common:
        raise ValidationError("the two stat sets share no statistics")
    errors: Dict[str, float] = {}
    for name in common:
        ref = reference[name]
        cand = candidate[name]
        if ref == 0:
            if cand != 0:
                errors[name] = math.inf
            continue
        errors[name] = (cand - ref) / abs(ref)
    finite = [abs(e) for e in errors.values() if math.isfinite(e)]
    mape = sum(finite) / len(finite) if finite else 0.0
    worst = sorted(
        errors.items(), key=lambda item: abs(item[1]), reverse=True
    )[:5]
    return {
        "common": len(common),
        "only_reference": sorted(set(reference) - set(candidate)),
        "only_candidate": sorted(set(candidate) - set(reference)),
        "errors": errors,
        "mape": mape,
        "worst": worst,
    }


def _filter(stats: Dict[str, float], prefixes: Tuple[str, ...]):
    if not prefixes:
        return dict(stats)
    return {
        name: value
        for name, value in stats.items()
        if not any(name.startswith(prefix) for prefix in prefixes)
    }


def within_tolerance(
    reference: Dict[str, float],
    candidate: Dict[str, float],
    tolerance: float,
    **kwargs,
) -> bool:
    """True when every common statistic agrees within ``tolerance``
    relative error."""
    if tolerance < 0:
        raise ValidationError("tolerance must be >= 0")
    comparison = compare_stats(reference, candidate, **kwargs)
    return all(
        math.isfinite(error) and abs(error) <= tolerance
        for error in comparison["errors"].values()
    )


def diagnose_configs(
    reference: Dict[str, Any], candidate: Dict[str, Any]
) -> List[str]:
    """DiagSim-style diagnosis: human-readable findings about parameter
    differences between two runs that claim to be comparable.

    Returns an empty list when the configurations agree exactly.
    """
    findings: List[str] = []
    for key in sorted(set(reference) | set(candidate)):
        if key not in reference:
            findings.append(
                f"candidate sets {key!r}={candidate[key]!r} but the "
                "reference leaves it at its hidden default"
            )
        elif key not in candidate:
            findings.append(
                f"reference sets {key!r}={reference[key]!r} but the "
                "candidate leaves it at its hidden default"
            )
        elif reference[key] != candidate[key]:
            findings.append(
                f"{key!r} differs: reference={reference[key]!r} "
                f"candidate={candidate[key]!r}"
            )
    return findings
