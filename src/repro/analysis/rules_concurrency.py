"""Concurrency rules: lock discipline for the scheduler substrate.

PR 2 grew the codebase to ~15 lock sites spread over the broker, lease
manager, reaper, result backend, and batch negotiator.  The discipline
that keeps them deadlock-free is simple but unwritten: locks are
per-instance and acquired with ``with``; nothing blocks while holding
one; long lease-holding loops heartbeat.  These rules write it down.

Lock attributes are inferred per class: any ``self.X = threading.Lock()
/ RLock() / Condition() / Semaphore()`` in ``__init__`` marks ``X`` as a
lock for that class, in addition to the name heuristic (``*lock*``,
``*mutex*``, ``*cond*``, ``*sem*``).  The companion *dynamic* checker —
cross-lock acquisition-order cycles, which no single-file static rule
can see — lives in :mod:`repro.analysis.lockorder`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.engine import FileContext, Finding, Rule

#: threading factories whose results are lock-like.
LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Substrings that mark a name as lock-like even without inference.
LOCKISH_NAMES = ("lock", "mutex", "cond", "sem")

#: Calls that block the calling thread (checked while a lock is held).
#: ``.get()`` blocks only on queues, handled separately (dict.get is not
#: a blocking call).
BLOCKING_ATTRS = frozenset({"sleep", "join", "wait", "wait_for"})


def _attr_tail(node: ast.AST) -> Optional[str]:
    """Name of the receiver: ``self._lock`` → ``_lock``; ``x`` → ``x``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish_name(name: Optional[str]) -> bool:
    if not name:
        return False
    lowered = name.lower()
    return any(mark in lowered for mark in LOCKISH_NAMES)


def _expr_token(node: ast.AST) -> str:
    """Stable token for comparing receiver expressions structurally."""
    return ast.dump(node)


class _LockAttrInference:
    """Per-file map of class name → attributes assigned a lock factory
    in ``__init__`` (so ``self._idle = threading.Condition()`` makes
    ``_idle`` a lock attribute of its class)."""

    def __init__(self, ctx: FileContext):
        self.by_class: Dict[str, Set[str]] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: Set[str] = set()
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "__init__"
                ):
                    for sub in ast.walk(item):
                        if not isinstance(sub, ast.Assign):
                            continue
                        if not isinstance(sub.value, ast.Call):
                            continue
                        name = ctx.qualified_name(sub.value.func)
                        if name not in LOCK_FACTORIES:
                            continue
                        for target in sub.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                attrs.add(target.attr)
            self.by_class[node.name] = attrs

    def is_lock_attr(
        self, ctx: FileContext, receiver: ast.AST
    ) -> bool:
        """Is ``receiver`` (e.g. ``self._idle``) a known lock attribute
        of the enclosing class?"""
        if not (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            return False
        enclosing = ctx.enclosing_class()
        if enclosing is None:
            return False
        return receiver.attr in self.by_class.get(enclosing.name, set())


class _ConcurrencyRule(Rule):
    """Shared lock-attribute inference for the concurrency pack."""

    def file_begin(self, ctx: FileContext) -> None:
        self._inference = _LockAttrInference(ctx)

    def _is_lock_expr(self, ctx: FileContext, node: ast.AST) -> bool:
        if _is_lockish_name(_attr_tail(node)):
            return True
        return self._inference.is_lock_attr(ctx, node)

    def _held_locks(self, ctx: FileContext) -> Dict[str, ast.AST]:
        """Receiver-token → expr for every lock held by enclosing
        ``with`` statements at the current node.

        Only ``with`` blocks inside the *innermost* enclosing function
        count: a nested ``def``'s body does not execute while the outer
        ``with`` is held, it merely sits inside it textually.
        """
        scope_start = 0
        for index, ancestor in enumerate(ctx.ancestors):
            if isinstance(
                ancestor,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                scope_start = index
        held: Dict[str, ast.AST] = {}
        for ancestor in ctx.ancestors[scope_start:]:
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    # ``with lock.acquire_timeout(...)`` style helpers.
                    expr = expr.func
                if self._is_lock_expr(ctx, expr):
                    held[_expr_token(expr)] = expr
        return held


class BareAcquireRule(_ConcurrencyRule):
    """``lock.acquire()`` as a statement: a raised exception between
    acquire and release leaks the lock forever; ``with`` cannot."""

    rule_id = "CON-BARE-ACQUIRE"
    severity = "warning"
    description = "lock acquired without `with`"
    interests = (ast.Expr,)

    def visit(self, node: ast.Expr, ctx: FileContext) -> Iterator[Finding]:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        if not (
            isinstance(func, ast.Attribute) and func.attr == "acquire"
        ):
            return
        if not self._is_lock_expr(ctx, func.value):
            return
        yield self.finding(
            ctx,
            node,
            "bare .acquire() on a lock; use `with` so the release "
            "survives exceptions",
        )


class BlockingUnderLockRule(_ConcurrencyRule):
    """Blocking (or running arbitrary callbacks) while holding a lock
    turns every other thread that wants the lock into a hostage."""

    rule_id = "CON-HOLD-BLOCKING"
    severity = "warning"
    description = "blocking call or callback invocation while holding a lock"
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        held = self._held_locks(ctx)
        if not held:
            return
        func = node.func
        name = ctx.qualified_name(func)
        if name == "time.sleep":
            yield self.finding(
                ctx,
                node,
                "time.sleep() while holding "
                f"{self._held_names(held)}; sleep outside the lock",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if func.attr in BLOCKING_ATTRS:
            # Waiting on the very lock you hold is the condition-variable
            # pattern (Condition.wait releases it); that is the one
            # legitimate blocking call under a lock.
            if _expr_token(receiver) in held:
                return
            # Path and string joins are pure computation, not blocking.
            if func.attr == "join" and (
                name in ("os.path.join", "posixpath.join", "ntpath.join")
                or isinstance(receiver, ast.Constant)
            ):
                return
            # self._stop.wait(t) on an Event is a sleep in disguise.
            yield self.finding(
                ctx,
                node,
                f".{func.attr}() blocks while holding "
                f"{self._held_names(held)}; release the lock first "
                "(condition-variable waits on the held lock itself "
                "are exempt)",
            )
            return
        lowered = func.attr.lower()
        tail = (_attr_tail(receiver) or "").lower()
        if lowered == "get" and "queue" in tail:
            yield self.finding(
                ctx,
                node,
                f"queue .get() blocks while holding "
                f"{self._held_names(held)}; consume outside the lock",
            )
            return
        if lowered.endswith("callback") or lowered.endswith("hook"):
            yield self.finding(
                ctx,
                node,
                f"callback {func.attr}() invoked while holding "
                f"{self._held_names(held)}; callbacks can acquire "
                "arbitrary locks — invoke after release",
            )

    @staticmethod
    def _held_names(held: Dict[str, ast.AST]) -> str:
        names = sorted(
            _attr_tail(expr) or "<lock>" for expr in held.values()
        )
        return ", ".join(names)


class LockPerCallRule(_ConcurrencyRule):
    """A lock created inside the function it guards is private to each
    call and therefore guards nothing."""

    rule_id = "CON-LOCK-PER-CALL"
    severity = "error"
    description = "threading.Lock() created per-call instead of per-instance"
    interests = (ast.With, ast.FunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.With):
            yield from self._check_direct_with(node, ctx)
        else:
            yield from self._check_local_lock(node, ctx)

    def _check_direct_with(
        self, node: ast.With, ctx: FileContext
    ) -> Iterator[Finding]:
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and ctx.qualified_name(expr.func) in LOCK_FACTORIES
            ):
                yield self.finding(
                    ctx,
                    item.context_expr,
                    "`with threading.Lock()` creates a fresh lock every "
                    "call — it serializes nothing; store the lock on the "
                    "instance or module",
                )

    def _check_local_lock(
        self, node: ast.FunctionDef, ctx: FileContext
    ) -> Iterator[Finding]:
        if node.name in ("__init__", "__new__"):
            return
        # Locals assigned a lock factory ...
        local_locks: Dict[str, ast.Assign] = {}
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(
                sub.value, ast.Call
            ):
                if ctx.qualified_name(sub.value.func) in LOCK_FACTORIES:
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            local_locks[target.id] = sub
        if not local_locks:
            return
        # ... that the same function then enters with ``with``.
        for sub in ast.walk(node):
            if not isinstance(sub, ast.With):
                continue
            for item in sub.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Name)
                    and expr.id in local_locks
                ):
                    assign = local_locks[expr.id]
                    yield self.finding(
                        ctx,
                        assign,
                        f"lock {expr.id!r} is created per call of "
                        f"{node.name}() and guards only this call; "
                        "hoist it to the instance or module",
                    )
                    local_locks.pop(expr.id)


class LoopHeartbeatRule(_ConcurrencyRule):
    """A scheduler loop that blocks while a task lease is in play must
    heartbeat, or the reaper will reclaim the task out from under it."""

    rule_id = "CON-LOOP-NO-HEARTBEAT"
    severity = "warning"
    description = "blocking loop in lease-holding code without heartbeat"
    interests = (ast.While,)

    def visit(self, node: ast.While, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_module("repro.scheduler"):
            return
        function = ctx.enclosing_function()
        if function is None:
            return
        # Only functions that touch leases are on the hook.
        if not self._mentions_lease(function):
            return
        blocking = None
        has_heartbeat = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "heartbeat":
                has_heartbeat = True
            elif func.attr in ("join", "sleep", "wait"):
                blocking = sub
        if blocking is not None and not has_heartbeat:
            yield self.finding(
                ctx,
                blocking,
                "loop blocks in lease-holding code without renewing the "
                "lease; call leases.heartbeat(task_id) each iteration or "
                "the reaper will redeliver the task",
            )

    @staticmethod
    def _mentions_lease(function: ast.AST) -> bool:
        for sub in ast.walk(function):
            if isinstance(sub, ast.Attribute) and "lease" in sub.attr:
                return True
            if isinstance(sub, ast.Name) and "lease" in sub.id:
                return True
        return False


CONCURRENCY_RULES = (
    BareAcquireRule,
    BlockingUnderLockRule,
    LockPerCallRule,
    LoopHeartbeatRule,
)
