"""Content hashing helpers.

gem5art identifies every artifact by an MD5 hash of its content (or by the git
revision when the artifact is a repository).  These helpers centralize the
hashing conventions so artifacts, disk images and database files all agree on
what "same content" means.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable

_CHUNK_SIZE = 1 << 20


def md5_bytes(data: bytes) -> str:
    """Return the hex MD5 digest of a byte string."""
    return hashlib.md5(data).hexdigest()


def md5_text(text: str) -> str:
    """Return the hex MD5 digest of a text string (UTF-8 encoded)."""
    return md5_bytes(text.encode("utf-8"))


def md5_file(path: str) -> str:
    """Return the hex MD5 digest of a file on the host filesystem.

    Reads in chunks so arbitrarily large files can be hashed without loading
    them into memory, matching how gem5art hashes multi-GB disk images.
    """
    digest = hashlib.md5()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK_SIZE)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def md5_tree(root: str) -> str:
    """Return a single MD5 digest covering a directory tree.

    The digest covers relative paths and file contents, in sorted order, so
    two trees with identical layout and content hash identically regardless
    of filesystem iteration order or timestamps.
    """
    digest = hashlib.md5()
    for relpath, content in _walk_sorted(root):
        digest.update(relpath.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(content)
        digest.update(b"\x00")
    return digest.hexdigest()


def _walk_sorted(root: str) -> Iterable[tuple]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, root)
            with open(full, "rb") as handle:
                yield rel, handle.read()


def sha256_bytes(data: bytes) -> str:
    """Return the hex SHA-256 digest of a byte string.

    Used where a stronger content address is wanted (the file store keys
    blobs by SHA-256 to make accidental collisions implausible).
    """
    return hashlib.sha256(data).hexdigest()


def sha256_text(text: str) -> str:
    """Return the hex SHA-256 digest of a text string (UTF-8 encoded).

    This is the fingerprint primitive for run specs: a canonical-JSON
    serialization goes in, a stable content address comes out.
    """
    return sha256_bytes(text.encode("utf-8"))


def short_hash(value: str, length: int = 8) -> str:
    """Return a short, human-friendly prefix of a hex digest."""
    if length <= 0:
        raise ValueError("length must be positive")
    return value[:length]
