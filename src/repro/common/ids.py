"""UUID helpers.

gem5art assigns every artifact a UUID.  Besides random UUIDs we also provide
*deterministic* UUIDs (UUIDv5 over a namespace) so that simulated resources —
whose "content" is a recipe rather than real bytes — get stable identities
across processes and test runs.
"""

from __future__ import annotations

import uuid

#: Namespace under which all deterministic repro UUIDs are minted.
REPRO_NAMESPACE = uuid.uuid5(uuid.NAMESPACE_URL, "https://repro.local/gem5art")


def new_uuid() -> str:
    """Return a fresh random UUID4 string."""
    return str(uuid.uuid4())


def deterministic_uuid(*parts: str) -> str:
    """Return a UUID5 string derived from the given name parts.

    The same parts always produce the same UUID, which is what lets two
    independent registrations of an identical artifact collapse into one
    database entry.
    """
    name = "\x00".join(parts)
    return str(uuid.uuid5(REPRO_NAMESPACE, name))
