"""Simulation units.

gem5 counts time in *ticks* at 10^12 ticks per simulated second (1 ps per
tick).  We adopt the same convention so statistics read like gem5 output.
"""

from __future__ import annotations

#: Ticks per simulated second (1 tick == 1 picosecond), matching gem5.
TICKS_PER_SECOND = 10**12


def GHz(value: float) -> int:
    """Return the clock period in ticks for a frequency in GHz."""
    if value <= 0:
        raise ValueError("frequency must be positive")
    return int(TICKS_PER_SECOND / (value * 1e9))


def MHz(value: float) -> int:
    """Return the clock period in ticks for a frequency in MHz."""
    return GHz(value / 1000.0)


def ns_to_ticks(nanoseconds: float) -> int:
    """Convert a latency in nanoseconds to ticks."""
    return int(nanoseconds * TICKS_PER_SECOND / 1e9)


def ticks_to_seconds(ticks: int) -> float:
    """Convert ticks to simulated seconds."""
    return ticks / TICKS_PER_SECOND
