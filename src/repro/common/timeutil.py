"""Wall-clock helpers.

Monotonic timestamps (``time.monotonic``) are only meaningful within one
process; anything archived in the database must also carry wall-clock time
in a portable form.  ISO-8601 UTC strings sort lexicographically in
chronological order, which is what the query layer relies on.
"""

from __future__ import annotations

import datetime


def iso_now() -> str:
    """Current UTC wall-clock time as an ISO-8601 string."""
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def iso_from_timestamp(timestamp: float) -> str:
    """Convert a ``time.time()`` epoch value to an ISO-8601 UTC string."""
    return datetime.datetime.fromtimestamp(
        timestamp, datetime.timezone.utc
    ).isoformat()
