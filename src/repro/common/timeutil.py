"""Wall-clock helpers.

Monotonic timestamps (``time.monotonic``) are only meaningful within one
process; anything archived in the database must also carry wall-clock time
in a portable form.  ISO-8601 UTC strings sort lexicographically in
chronological order, which is what the query layer relies on.

This module is the *sanctioned choke point* for wall-clock access: the
determinism rules (``repro.analysis.rules_determinism``) forbid raw
``time.time()`` / ``datetime.now()`` in the deterministic zones, and the
rest of the tree routes through these helpers so there is exactly one
place to audit — or to fake in a test.
"""

from __future__ import annotations

import datetime
import time


def wall_now() -> float:
    """Current wall-clock time as a ``time.time()`` epoch float.

    The one sanctioned raw wall-clock read; telemetry timestamps and
    anything else that archives real time must come through here.
    """
    return time.time()


def iso_now() -> str:
    """Current UTC wall-clock time as an ISO-8601 string."""
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def iso_from_timestamp(timestamp: float) -> str:
    """Convert a ``time.time()`` epoch value to an ISO-8601 UTC string."""
    return datetime.datetime.fromtimestamp(
        timestamp, datetime.timezone.utc
    ).isoformat()
