"""JSON encoding helpers with a canonical form.

The database persists documents as JSON lines, and artifact hashes must be
stable across runs, so we need a *canonical* serialization: sorted keys, no
insignificant whitespace, and explicit handling of the handful of non-JSON
types the library uses (datetimes, tuples, sets, bytes).
"""

from __future__ import annotations

import base64
import datetime
import json
import math
from typing import Any

_BYTES_TAG = "$bytes"
_DATETIME_TAG = "$datetime"
_SET_TAG = "$set"


def _normalize_numbers(value: Any) -> Any:
    """Collapse numerically-equal values to one canonical representation.

    ``2`` and ``2.0`` must serialize identically or a parameter's Python
    type would silently change a run's fingerprint; ``-0.0`` folds into
    ``0``.  Non-finite floats have no JSON form and would make equal
    specs incomparable, so they are rejected outright.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(
                f"non-finite number {value!r} has no canonical JSON form"
            )
        if value == int(value):
            return int(value)
        return value
    if isinstance(value, dict):
        return {k: _normalize_numbers(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize_numbers(v) for v in value]
    return value


def _encode_special(value: Any) -> Any:
    if isinstance(value, datetime.datetime):
        return {_DATETIME_TAG: value.isoformat()}
    if isinstance(value, bytes):
        return {_BYTES_TAG: base64.b64encode(value).decode("ascii")}
    if isinstance(value, (set, frozenset)):
        return {_SET_TAG: sorted(_encode_special(v) for v in value)}
    if isinstance(value, tuple):
        return [_encode_special(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_special(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_encode_special(v) for v in value]
    return value


def _decode_special(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {_DATETIME_TAG}:
            return datetime.datetime.fromisoformat(value[_DATETIME_TAG])
        if set(value.keys()) == {_BYTES_TAG}:
            return base64.b64decode(value[_BYTES_TAG])
        if set(value.keys()) == {_SET_TAG}:
            return set(_decode_special(v) for v in value[_SET_TAG])
        return {k: _decode_special(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_special(v) for v in value]
    return value


def dumps(value: Any, indent: int = None) -> str:
    """Serialize a value to JSON, supporting datetimes, bytes and sets."""
    return json.dumps(_encode_special(value), indent=indent)


def stable_dumps(value: Any) -> str:
    """Deterministic serialization (sorted keys, minimal separators)
    that round-trips *exactly*.

    The persistence twin of :func:`canonical_dumps`: stable output for
    diffable on-disk files, but no number normalization — a stored
    ``2.0`` must come back a float, not an int.  Hash :func:`canonical_dumps`
    output; persist this one.
    """
    return json.dumps(
        _encode_special(value), sort_keys=True, separators=(",", ":")
    )


def canonical_dumps(value: Any) -> str:
    """Serialize to a canonical JSON form suitable for hashing.

    Keys are sorted, separators are minimal, and numbers are normalized
    (``2.0`` → ``2``, ``-0.0`` → ``0``, NaN/inf rejected) so equal
    values — regardless of dict insertion order or int/float spelling —
    always serialize to equal strings.
    """
    return json.dumps(
        _normalize_numbers(_encode_special(value)),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def loads(text: str) -> Any:
    """Deserialize JSON produced by :func:`dumps` / :func:`canonical_dumps`."""
    return _decode_special(json.loads(text))
