"""JSON encoding helpers with a canonical form.

The database persists documents as JSON lines, and artifact hashes must be
stable across runs, so we need a *canonical* serialization: sorted keys, no
insignificant whitespace, and explicit handling of the handful of non-JSON
types the library uses (datetimes, tuples, sets, bytes).
"""

from __future__ import annotations

import base64
import datetime
import json
from typing import Any

_BYTES_TAG = "$bytes"
_DATETIME_TAG = "$datetime"
_SET_TAG = "$set"


def _encode_special(value: Any) -> Any:
    if isinstance(value, datetime.datetime):
        return {_DATETIME_TAG: value.isoformat()}
    if isinstance(value, bytes):
        return {_BYTES_TAG: base64.b64encode(value).decode("ascii")}
    if isinstance(value, (set, frozenset)):
        return {_SET_TAG: sorted(_encode_special(v) for v in value)}
    if isinstance(value, tuple):
        return [_encode_special(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_special(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_encode_special(v) for v in value]
    return value


def _decode_special(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {_DATETIME_TAG}:
            return datetime.datetime.fromisoformat(value[_DATETIME_TAG])
        if set(value.keys()) == {_BYTES_TAG}:
            return base64.b64decode(value[_BYTES_TAG])
        if set(value.keys()) == {_SET_TAG}:
            return set(_decode_special(v) for v in value[_SET_TAG])
        return {k: _decode_special(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_special(v) for v in value]
    return value


def dumps(value: Any, indent: int = None) -> str:
    """Serialize a value to JSON, supporting datetimes, bytes and sets."""
    return json.dumps(_encode_special(value), indent=indent)


def canonical_dumps(value: Any) -> str:
    """Serialize to a canonical JSON form suitable for hashing.

    Keys are sorted and separators are minimal so equal values always
    serialize to equal strings.
    """
    return json.dumps(
        _encode_special(value), sort_keys=True, separators=(",", ":")
    )


def loads(text: str) -> Any:
    """Deserialize JSON produced by :func:`dumps` / :func:`canonical_dumps`."""
    return _decode_special(json.loads(text))
