"""Shared utilities used by every subsystem of the reproduction.

This package deliberately has no dependencies on the rest of :mod:`repro` so
that any subsystem (database, scheduler, simulator, ...) can import it without
creating cycles.
"""

from repro.common.errors import (
    ReproError,
    ValidationError,
    NotFoundError,
    DuplicateError,
    StateError,
)
from repro.common.hashing import (
    md5_bytes,
    md5_text,
    md5_file,
    md5_tree,
    sha256_bytes,
    short_hash,
)
from repro.common.hostinfo import effective_cores
from repro.common.ids import new_uuid, deterministic_uuid
from repro.common.jsonutil import canonical_dumps, dumps, loads, stable_dumps
from repro.common.rng import RngStream, derive_seed
from repro.common.tables import TextTable
from repro.common.timeutil import iso_from_timestamp, iso_now
from repro.common.units import (
    GHz,
    MHz,
    ns_to_ticks,
    ticks_to_seconds,
    TICKS_PER_SECOND,
)

__all__ = [
    "ReproError",
    "ValidationError",
    "NotFoundError",
    "DuplicateError",
    "StateError",
    "md5_bytes",
    "md5_text",
    "md5_file",
    "md5_tree",
    "sha256_bytes",
    "short_hash",
    "effective_cores",
    "new_uuid",
    "deterministic_uuid",
    "canonical_dumps",
    "stable_dumps",
    "dumps",
    "loads",
    "RngStream",
    "derive_seed",
    "TextTable",
    "iso_from_timestamp",
    "iso_now",
    "GHz",
    "MHz",
    "ns_to_ticks",
    "ticks_to_seconds",
    "TICKS_PER_SECOND",
]
