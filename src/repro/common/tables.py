"""Plain-text table rendering.

matplotlib is not available in this offline environment, so the benchmark
harness reports every figure as aligned text tables and CSV series.  This
module is the single rendering path so all reports look alike.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


class TextTable:
    """An aligned, monospace table builder.

    >>> table = TextTable(["app", "time"])
    >>> table.add_row(["ferret", 1.25])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    app    | time
    -------+-----
    ferret | 1.25
    """

    def __init__(self, headers: Sequence[str], title: str = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [self._format(cell) for cell in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the table as simple CSV (no quoting of commas needed for
        our numeric/identifier cell values)."""
        lines = [",".join(self.headers)]
        for row in self.rows:
            lines.append(",".join(row))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
