"""Git provenance for artifacts.

gem5art stores, for every artifact that is a git repository, the repository
URL and the revision hash so third parties can recover the exact source even
without database access.  Real checkouts are read from ``.git``; since most
resources in this reproduction are *simulated* repositories, we also support
a lightweight on-disk marker file (``.repro-git``) that declares the same
metadata deterministically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.hashing import md5_text

#: Marker file used by simulated repositories.
SIMULATED_MARKER = ".repro-git"


@dataclass(frozen=True)
class GitInfo:
    """URL + revision pair identifying a repository state."""

    url: str
    revision: str

    def to_dict(self) -> dict:
        return {"git_url": self.url, "hash": self.revision}


def simulated_revision(url: str, version: str) -> str:
    """Derive a stable 40-hex-character revision for a simulated repo.

    The revision is a function of the URL and a human version label, so the
    same recipe always yields the same "commit".
    """
    seed = md5_text(f"{url}@{version}")
    return (seed + seed)[:40]


def write_simulated_repo(path: str, url: str, version: str) -> GitInfo:
    """Mark a directory as a simulated git repository.

    Creates the directory if needed and drops a marker file recording the
    URL and derived revision.
    """
    os.makedirs(path, exist_ok=True)
    info = GitInfo(url=url, revision=simulated_revision(url, version))
    marker = os.path.join(path, SIMULATED_MARKER)
    with open(marker, "w", encoding="utf-8") as handle:
        handle.write(f"{info.url}\n{info.revision}\n")
    return info


def read_git_info(path: str) -> GitInfo:
    """Read provenance for a checkout, real or simulated.

    Order of preference: the simulated marker file, then a real ``.git``
    directory (HEAD is resolved one level of indirection deep).  Returns
    ``None`` when the path is not a repository of either kind, mirroring
    gem5art's behaviour of leaving the git dictionary blank.
    """
    marker = os.path.join(path, SIMULATED_MARKER)
    if os.path.isfile(marker):
        with open(marker, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if len(lines) >= 2:
            return GitInfo(url=lines[0], revision=lines[1])
        return None
    git_dir = os.path.join(path, ".git")
    if os.path.isdir(git_dir):
        return _read_real_git(path, git_dir)
    return None


def _read_real_git(path: str, git_dir: str) -> GitInfo:
    head_path = os.path.join(git_dir, "HEAD")
    if not os.path.isfile(head_path):
        return None
    with open(head_path, "r", encoding="utf-8") as handle:
        head = handle.read().strip()
    revision = head
    if head.startswith("ref: "):
        ref = head[len("ref: "):]
        ref_path = os.path.join(git_dir, ref)
        if os.path.isfile(ref_path):
            with open(ref_path, "r", encoding="utf-8") as handle:
                revision = handle.read().strip()
        else:
            revision = _lookup_packed_ref(git_dir, ref) or head
    url = _read_origin_url(git_dir) or f"file://{os.path.abspath(path)}"
    return GitInfo(url=url, revision=revision)


def _lookup_packed_ref(git_dir: str, ref: str) -> str:
    packed = os.path.join(git_dir, "packed-refs")
    if not os.path.isfile(packed):
        return None
    with open(packed, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line.startswith("#") or line.startswith("^") or not line:
                continue
            parts = line.split(" ", 1)
            if len(parts) == 2 and parts[1] == ref:
                return parts[0]
    return None


def _read_origin_url(git_dir: str) -> str:
    config_path = os.path.join(git_dir, "config")
    if not os.path.isfile(config_path):
        return None
    in_origin = False
    with open(config_path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped.startswith("["):
                in_origin = stripped.replace('"', "") == "[remote origin]"
                continue
            if in_origin and stripped.startswith("url"):
                _, _, url = stripped.partition("=")
                return url.strip()
    return None
