"""Exception hierarchy shared across the library.

Every subsystem raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError):
    """An input value failed validation (bad type, bad range, bad schema)."""


class NotFoundError(ReproError):
    """A requested object (document, file, resource, artifact) is missing."""


class DuplicateError(ReproError):
    """An object violating a uniqueness constraint was inserted."""


class StateError(ReproError):
    """An operation was attempted in an invalid state (e.g. reusing a closed
    database handle, completing a task twice)."""


class CorruptBlobError(ReproError):
    """A stored blob's bytes no longer hash to its content id — the file
    was truncated, bit-flipped, or overwritten outside the store."""


class CorruptRecordError(ReproError):
    """A sealed storage-engine record failed its checksum or framing.

    Torn tails on the *active* WAL are expected after a crash and are
    truncated silently during recovery; damage inside a sealed segment
    means fsynced bytes changed underneath the engine and is fatal."""


class PipelineError(ReproError):
    """A reproduction pipeline could not complete: a stage crashed, a
    validation gate failed with no backtrack budget left, or a manifest
    referenced something the database does not hold."""


class FaultInjectedError(ReproError):
    """An error deliberately raised by :mod:`repro.chaos` at an injection
    point.  Recovery code must treat it exactly like the organic failure it
    stands in for; tests match on this type to tell injected faults from
    real bugs."""
