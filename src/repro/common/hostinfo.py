"""Host capability probes shared by benchmarks and CI gates.

Benchmarks that enforce a parallel-speedup floor must not fail on
single-core CI runners; they gate the floor on the core count actually
*available* to this process (the scheduler affinity mask, which cgroup
limits shrink below ``os.cpu_count()``).
"""

from __future__ import annotations

import os


def effective_cores() -> int:
    """Cores available to this process (affinity-aware).

    ``sched_getaffinity`` reflects cpusets and taskset masks; platforms
    without it (macOS) fall back to the raw CPU count.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1
