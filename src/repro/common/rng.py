"""Deterministic random-number streams.

Simulation components that need stochastic behaviour (cache interference
jitter, scheduler noise) each draw from a *named* stream derived from a root
seed, so adding a new consumer never perturbs the numbers seen by existing
ones.  This is the standard trick for reproducible discrete-event simulators.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from a root seed and a path of stream names."""
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RngStream:
    """A named, independently-seeded random stream.

    Wraps :class:`random.Random` so consumers get the familiar API while the
    seeding discipline stays centralized.
    """

    def __init__(self, root_seed: int, *names: str):
        self.names = names
        self._random = random.Random(derive_seed(root_seed, *names))

    def child(self, *names: str) -> "RngStream":
        """Return a sub-stream; children are independent of the parent."""
        seed = int.from_bytes(
            hashlib.sha256(
                ("/".join(self.names + names)).encode("utf-8")
            ).digest()[:8],
            "big",
        )
        stream = RngStream.__new__(RngStream)
        stream.names = self.names + names
        stream._random = random.Random(seed)
        return stream

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq):
        return self._random.choice(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)
