"""gem5-style statistics collection.

Statistics are hierarchical (``system.cpu0.committedInsts``), typed (scalar
counters and per-key vectors), and dump to a ``stats.txt``-shaped text block
that downstream analysis parses — the "microarchitectural statistics" output
of Fig 1.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.common.errors import ValidationError


class StatsDB:
    """A flat namespace of dotted statistic names."""

    def __init__(self):
        self._scalars: Dict[str, float] = {}
        self._vectors: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------- scalars

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add to a scalar statistic, creating it at zero."""
        self._check_name(name)
        self._scalars[name] = self._scalars.get(name, 0.0) + amount

    def set(self, name: str, value: float) -> None:
        self._check_name(name)
        self._scalars[name] = float(value)

    def get(self, name: str, default: float = None) -> float:
        if name in self._scalars:
            return self._scalars[name]
        if default is not None:
            return default
        raise ValidationError(f"unknown statistic {name!r}")

    def has(self, name: str) -> bool:
        return name in self._scalars or name in self._vectors

    # ------------------------------------------------------------- vectors

    def vec_inc(self, name: str, key: str, amount: float = 1.0) -> None:
        self._check_name(name)
        vector = self._vectors.setdefault(name, {})
        vector[key] = vector.get(key, 0.0) + amount

    def vec_get(self, name: str) -> Dict[str, float]:
        if name not in self._vectors:
            raise ValidationError(f"unknown vector statistic {name!r}")
        return dict(self._vectors[name])

    # ------------------------------------------------------------- derived

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two scalars (0 when the denominator is 0)."""
        bottom = self.get(denominator, default=0.0)
        if bottom == 0:
            return 0.0
        return self.get(numerator, default=0.0) / bottom

    # -------------------------------------------------------------- output

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = dict(self._scalars)
        for name, vector in self._vectors.items():
            for key, value in vector.items():
                data[f"{name}::{key}"] = value
        return data

    def dump(self) -> str:
        """Render in the two-column gem5 ``stats.txt`` format."""
        lines = ["---------- Begin Simulation Statistics ----------"]
        for name in sorted(self.to_dict()):
            value = self.to_dict()[name]
            rendered = (
                f"{value:.6f}".rstrip("0").rstrip(".")
                if isinstance(value, float)
                else str(value)
            )
            lines.append(f"{name:<60} {rendered}")
        lines.append("---------- End Simulation Statistics   ----------")
        return "\n".join(lines)

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or name != name.strip():
            raise ValidationError(f"bad statistic name {name!r}")

    def merge_prefixed(self, prefix: str, other: "StatsDB") -> None:
        """Fold another StatsDB in under a dotted prefix."""
        for name, value in other._scalars.items():
            self._scalars[f"{prefix}.{name}"] = value
        for name, vector in other._vectors.items():
            merged = self._vectors.setdefault(f"{prefix}.{name}", {})
            for key, value in vector.items():
                merged[key] = merged.get(key, 0.0) + value
