"""Command-line interface.

``python -m repro <command>`` exposes the catalog and the paper's
experiments without writing a launch script:

- ``resources``                 — list Table I (with per-release status);
- ``selftest [--isa ISA]``      — run the gem5-tests resource;
- ``boot-tests [--quick]``      — regenerate the Fig 8 grid;
- ``parsec [--apps ...]``       — regenerate Figs 6/7 (optionally reduced);
- ``gpu``                       — regenerate Fig 9;
- ``resume <experiment> --db``  — finish an interrupted experiment (skips
  runs the database already marks done);
- ``cache stats|ls|invalidate`` — inspect or evict the fingerprint result
  cache (``invalidate`` accepts a run fingerprint or an artifact content
  hash; an artifact hash cascades to every dependent cached run);
- ``ckpt stats|ls|gc``          — inspect or garbage-collect the
  boot-checkpoint store (``gc`` evicts checkpoints whose boot prefix no
  run spec references anymore);
- ``db stats|compact|scrub|recover`` — storage-engine maintenance:
  per-collection segment/WAL shape, forced segment compaction, blob
  re-verification with quarantine, and a crash-recovery report;
- ``admit stats|limits`` — admission control: ``limits`` prints the
  effective per-tenant limits an app would run with; ``stats`` drives a
  seeded mixed-priority overload demo through a bounded app and prints
  the accept/reject/shed ledger, queue depths, and breaker states.

``boot-tests`` and ``resume`` accept ``--cache``/``--no-cache`` to control
whether runs may adopt memoized results instead of simulating,
``--checkpoints``/``--no-checkpoints`` to stage the sweep as one boot per
unique boot prefix plus restored variants, and ``--tenant``/``--priority``
to choose the admission coordinates the campaign submits under.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common import TextTable


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Enabling Reproducible and Agile "
            "Full-System Simulation' (ISPASS 2021)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    resources = commands.add_parser(
        "resources", help="list the gem5-resources catalog (Table I)"
    )
    resources.add_argument("--gem5-version", default="20.1.0.4")

    selftest = commands.add_parser(
        "selftest", help="run the gem5-tests resource against a build"
    )
    selftest.add_argument("--isa", default="X86")
    selftest.add_argument("--version", default="20.1.0.4")

    boot = commands.add_parser(
        "boot-tests", help="run the Fig 8 boot-test cross product"
    )
    boot.add_argument(
        "--quick",
        action="store_true",
        help="one kernel and boot type only (48 runs instead of 480)",
    )
    boot.add_argument(
        "--telemetry",
        action="store_true",
        help="record spans/metrics/events and archive them in the "
        "database (implies the experiment-backed path)",
    )
    boot.add_argument(
        "--db",
        default=None,
        metavar="URI",
        help="database URI (memory:// or file:///dir); routes the grid "
        "through gem5art run objects so it can be traced later",
    )
    boot.add_argument(
        "--workers", type=int, default=8,
        help="scheduler worker threads for the experiment-backed path",
    )
    _add_substrate_flag(boot)
    _add_cache_flags(boot)
    _add_checkpoint_flags(boot)
    _add_admission_flags(boot)

    parsec = commands.add_parser(
        "parsec", help="run the Fig 6/7 PARSEC OS study"
    )
    parsec.add_argument(
        "--apps", nargs="+", default=None,
        help="subset of PARSEC applications (default: all 10 working)",
    )

    commands.add_parser("gpu", help="run the Fig 9 register-allocator study")

    rate = commands.add_parser(
        "rate", help="SPECrate-style throughput scaling study"
    )
    rate.add_argument("--suite", default="spec-2017",
                      choices=("spec-2006", "spec-2017"))
    rate.add_argument("--benchmarks", nargs="+", default=None)

    report = commands.add_parser(
        "report", help="render the reproducibility report of an archive"
    )
    report.add_argument("archive", help="path to an exported archive")

    resume = commands.add_parser(
        "resume",
        help="resume an interrupted experiment: skip finished runs, "
        "re-run the rest (idempotent by run id)",
    )
    resume.add_argument(
        "experiment", help="experiment name or id in the database"
    )
    resume.add_argument(
        "--db", required=True, metavar="URI",
        help="database URI the experiment was recorded into "
        "(file:///dir for anything that survives a crash)",
    )
    resume.add_argument(
        "--backend", default="pool",
        choices=("pool", "scheduler", "inline"),
    )
    resume.add_argument("--workers", type=int, default=4)
    resume.add_argument(
        "--retry-failures", action="store_true",
        help="also re-queue runs that finished as failed/timed_out",
    )
    _add_substrate_flag(resume)
    _add_cache_flags(resume)
    _add_checkpoint_flags(resume)
    _add_admission_flags(resume)

    admit = commands.add_parser(
        "admit",
        help="admission control: effective limits, or a seeded "
        "overload demo with decision accounting",
    )
    admit.add_argument(
        "action", choices=("stats", "limits"),
        help="limits: print the effective admission configuration; "
        "stats: flood a bounded app with seeded mixed-priority "
        "submissions and print the accept/reject/shed ledger",
    )
    admit.add_argument(
        "--queue-limit", type=int, default=16,
        help="broker queue bound (resident messages, all levels)",
    )
    admit.add_argument(
        "--rate", type=float, default=None,
        help="per-tenant sustained submissions/second (token bucket)",
    )
    admit.add_argument(
        "--burst", type=float, default=None,
        help="token-bucket burst capacity (default: the rate)",
    )
    admit.add_argument(
        "--max-queued", type=int, default=None,
        help="per-tenant backlog quota",
    )
    admit.add_argument(
        "--max-inflight", type=int, default=None,
        help="per-tenant concurrent-execution quota",
    )
    admit.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive dead-letters before a task name's circuit "
        "breaker opens",
    )
    admit.add_argument(
        "--seed", type=int, default=0,
        help="seed for the demo's tenant/priority mix and all backoff "
        "jitter (identical seeds produce identical decision sequences)",
    )
    admit.add_argument(
        "--flood", type=int, default=200,
        help="submissions the stats demo drives through the app",
    )
    admit.add_argument("--workers", type=int, default=2)

    cache = commands.add_parser(
        "cache",
        help="inspect or evict the fingerprint result cache",
    )
    cache.add_argument(
        "action", choices=("stats", "ls", "invalidate"),
        help="stats: summary counts; ls: one line per entry; "
        "invalidate: evict by fingerprint or artifact content hash",
    )
    cache.add_argument(
        "token", nargs="?", default=None,
        help="fingerprint or artifact content hash (invalidate only); "
        "an artifact hash evicts every dependent cached run",
    )
    cache.add_argument(
        "--db", required=True, metavar="URI",
        help="database URI holding the cache "
        "(file:///dir for anything persistent)",
    )

    ckpt = commands.add_parser(
        "ckpt",
        help="inspect or garbage-collect the boot-checkpoint store",
    )
    ckpt.add_argument(
        "action", choices=("stats", "ls", "gc"),
        help="stats: summary counts; ls: one line per checkpoint; "
        "gc: evict checkpoints whose boot prefix no run spec "
        "references anymore",
    )
    ckpt.add_argument(
        "--db", required=True, metavar="URI",
        help="database URI holding the checkpoint store "
        "(file:///dir for anything persistent)",
    )

    dbcmd = commands.add_parser(
        "db",
        help="inspect or maintain the embedded storage engine",
    )
    dbcmd.add_argument(
        "action", choices=("stats", "compact", "scrub", "recover"),
        help="stats: collection/segment/blob shape; compact: merge "
        "sealed segments and drop tombstones; scrub: re-verify blob "
        "hashes and quarantine rot; recover: replay the WAL and "
        "report what crash recovery found",
    )
    dbcmd.add_argument(
        "--db", required=True, metavar="URI",
        help="database URI (file:///dir[?durability=none|batch|strict])",
    )

    lint = commands.add_parser(
        "lint",
        help="run the determinism/concurrency/hygiene analyzer "
        "(exit 1 on unbaselined errors)",
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    lint.add_argument(
        "--format", default="text", choices=("text", "json", "sarif"),
        help="report format (json or sarif for CI consumption)",
    )
    lint.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program passes (lockset races, "
        "determinism taint, import layering)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of accepted findings; only new findings "
        "are reported and only new errors fail the run",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings: rewrite --baseline from "
        "them and exit 0",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on warnings too, not just errors",
    )

    reproduce = commands.add_parser(
        "reproduce",
        help="run a reproduction manifest end to end: content-addressed "
        "stages, validation gates, bounded backtracking",
    )
    reproduce.add_argument(
        "manifest", help="path to a pipeline manifest (YAML or JSON)"
    )
    reproduce.add_argument(
        "--db", default="memory://", metavar="URI",
        help="database URI the pipeline journals into (file:///dir to "
        "make the second run a cache hit)",
    )
    reproduce.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="STAGE.PARAM=VALUE",
        help="override one stage parameter (JSON value or plain "
        "string); re-executes exactly that stage and its dependents",
    )
    reproduce.add_argument(
        "--no-stage-cache", dest="stage_cache", action="store_false",
        default=True,
        help="ignore journaled stage results; every stage executes",
    )
    reproduce.add_argument(
        "--expect-cache-hits", type=float, default=None, metavar="PCT",
        help="fail (exit 1) unless at least PCT%% of stage decisions "
        "were cache hits (CI uses this to assert incrementality)",
    )
    reproduce.add_argument(
        "--quiet", action="store_true",
        help="print only the final summary line",
    )

    pipeline = commands.add_parser(
        "pipeline",
        help="inspect or re-run journaled reproduction pipelines",
    )
    pipeline.add_argument(
        "action", choices=("status", "explain", "rerun"),
        help="status: one line per pipeline run; explain: replay one "
        "run's decision trail with per-stage provenance; rerun: "
        "re-execute the latest run's manifest (cache hits where "
        "nothing changed)",
    )
    pipeline.add_argument(
        "target", nargs="?", default=None,
        help="pipeline run id or pipeline name (default: the latest "
        "run for explain/rerun)",
    )
    pipeline.add_argument(
        "--db", required=True, metavar="URI",
        help="database URI holding the pipeline journal",
    )
    pipeline.add_argument(
        "--stage", default=None, metavar="NAME",
        help="rerun only: evict this stage's journaled results first, "
        "forcing it and its dependents to re-execute",
    )

    trace = commands.add_parser(
        "trace",
        help="render an archived experiment timeline (requires a run "
        "with --telemetry)",
    )
    trace.add_argument(
        "experiment", help="experiment name or id in the database"
    )
    trace.add_argument(
        "--db", required=True, metavar="URI",
        help="database URI the experiment was recorded into",
    )
    trace.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="write the timeline as Chrome chrome://tracing JSON",
    )
    trace.add_argument(
        "--prometheus", action="store_true",
        help="also print the archived metrics in Prometheus text format",
    )

    args = parser.parse_args(argv)
    handler = {
        "resources": _cmd_resources,
        "selftest": _cmd_selftest,
        "boot-tests": _cmd_boot_tests,
        "parsec": _cmd_parsec,
        "gpu": _cmd_gpu,
        "rate": _cmd_rate,
        "report": _cmd_report,
        "resume": _cmd_resume,
        "trace": _cmd_trace,
        "lint": _cmd_lint,
        "cache": _cmd_cache,
        "ckpt": _cmd_ckpt,
        "db": _cmd_db,
        "admit": _cmd_admit,
        "reproduce": _cmd_reproduce,
        "pipeline": _cmd_pipeline,
    }[args.command]
    return handler(args)


def _add_substrate_flag(subparser) -> None:
    """``--substrate threads|processes`` (scheduler backend only)."""
    subparser.add_argument(
        "--substrate", default="threads",
        choices=("threads", "processes"),
        help="where scheduler-backend simulations execute: in-process "
        "worker threads (default) or OS worker processes for real CPU "
        "parallelism",
    )


def _add_admission_flags(subparser) -> None:
    """``--tenant`` / ``--priority`` admission coordinates."""
    subparser.add_argument(
        "--tenant", default="default",
        help="admission tenant the campaign's submissions are "
        "charged to (quota ledger and rate bucket)",
    )
    subparser.add_argument(
        "--priority", default="default",
        choices=("interactive", "default", "bulk"),
        help="queue lane: interactive jumps ahead of default, bulk is "
        "shed first under overload",
    )


def _add_checkpoint_flags(subparser) -> None:
    """``--checkpoints`` / ``--no-checkpoints`` pair (default: off)."""
    subparser.add_argument(
        "--checkpoints", dest="use_checkpoints", action="store_true",
        default=False,
        help="stage the sweep: boot once per unique boot prefix, then "
        "restore every variant from its cohort's checkpoint",
    )
    subparser.add_argument(
        "--no-checkpoints", dest="use_checkpoints",
        action="store_false",
        help="boot every run in full (default)",
    )


def _add_cache_flags(subparser) -> None:
    """``--cache`` / ``--no-cache`` pair (default: cache on)."""
    subparser.add_argument(
        "--cache", dest="use_cache", action="store_true", default=True,
        help="adopt memoized results for runs whose fingerprint is "
        "already cached (default)",
    )
    subparser.add_argument(
        "--no-cache", dest="use_cache", action="store_false",
        help="ignore the result cache; every run simulates",
    )


def _cmd_resources(args) -> int:
    from repro.resources import list_resources, status_matrix

    matrix = status_matrix(args.gem5_version)
    table = TextTable(
        ["Name", "Type", f"Status (gem5 {args.gem5_version})"],
        title="GEM5 RESOURCES",
    )
    for resource in list_resources():
        table.add_row([resource.name, resource.rtype, matrix[resource.name]])
    print(table.render())
    return 0


def _cmd_selftest(args) -> int:
    from repro.sim import Gem5Build
    from repro.sim.testing import run_test_suite

    build = Gem5Build(version=args.version, isa=args.isa)
    outcomes = run_test_suite(build)
    table = TextTable(
        ["Test", "Status", "Detail"],
        title=f"gem5 tests on {build.binary_name}",
    )
    failed = 0
    for outcome in outcomes:
        table.add_row([outcome.test_name, outcome.status, outcome.detail])
        if outcome.status == "fail":
            failed += 1
    print(table.render())
    return 1 if failed else 0


def _cmd_boot_tests(args) -> int:
    if args.telemetry or args.db:
        return _cmd_boot_tests_experiment(args)
    return _cmd_boot_tests_direct(args)


def _cmd_boot_tests_experiment(args) -> int:
    """The experiment-backed boot grid: artifacts + run objects + an
    archived, traceable timeline — what the paper means by a run the
    database alone can explain."""
    import collections

    from repro import telemetry
    from repro.art import (
        ArtifactDB,
        Experiment,
        register_disk_image,
        register_gem5_binary,
        register_kernel_binary,
        register_repo,
    )
    from repro.db import connect
    from repro.guest import BOOT_TEST_KERNEL_VERSIONS, get_kernel
    from repro.resources import build_resource
    from repro.sim import Gem5Build

    kernels = (
        BOOT_TEST_KERNEL_VERSIONS[:1]
        if args.quick
        else BOOT_TEST_KERNEL_VERSIONS
    )
    boot_types = ["init"] if args.quick else ["init", "systemd"]
    db = ArtifactDB(connect(args.db or "memory://"))
    if args.telemetry:
        telemetry.enable()
    try:
        gem5_repo = register_repo(db, "gem5", version="v20.1.0.4")
        resources_repo = register_repo(
            db,
            "gem5-resources",
            url="https://gem5.googlesource.com/public/gem5-resources",
            version="c5f5c70",
        )
        gem5_binary = register_gem5_binary(
            db, Gem5Build(version="20.1.0.4"), inputs=[gem5_repo]
        )
        disk = register_disk_image(
            db, build_resource("boot-exit").image,
            inputs=[resources_repo],
        )
        experiment = Experiment(db, "boot-tests")
        for version in kernels:
            experiment.add_stack(
                f"linux-{version}",
                gem5=gem5_binary,
                gem5_git=gem5_repo,
                run_script_git=resources_repo,
                linux_binary=register_kernel_binary(
                    db, get_kernel(version)
                ),
                disk_image=disk,
            )
        experiment.sweep(
            boot_type=boot_types,
            cpu_type=["kvm", "atomic", "timing", "o3"],
            memory_system=["classic", "MI_example", "MESI_Two_Level"],
            num_cpus=[1, 2, 4, 8],
        )
        print(f"launching {experiment.size()} boot tests ...")
        summaries = experiment.launch(
            backend="scheduler",
            workers=args.workers,
            use_cache=args.use_cache,
            substrate=args.substrate,
            tenant=args.tenant,
            priority=args.priority,
            use_checkpoints=args.use_checkpoints,
        )
        counts = collections.Counter(
            (s or {}).get("simulation_status", "failed")
            for s in summaries
        )
        for status, count in sorted(counts.items()):
            print(f"{status:<14} {count}")
        db.save()
        print(f"\nexperiment {experiment.experiment_id} archived "
              f"as 'boot-tests'")
        if args.telemetry:
            print("telemetry recorded; inspect with:\n"
                  f"  repro trace boot-tests --db {args.db or 'memory://'}"
                  " --prometheus --chrome trace.json")
    finally:
        if args.telemetry:
            telemetry.disable()
    return 0


def _cmd_boot_tests_direct(args) -> int:
    import collections
    import itertools

    from repro.analysis import status_grid
    from repro.guest import BOOT_TEST_KERNEL_VERSIONS
    from repro.resources import build_resource
    from repro.sim import Gem5Build, Gem5Simulator, SystemConfig

    kernels = (
        BOOT_TEST_KERNEL_VERSIONS[:1]
        if args.quick
        else BOOT_TEST_KERNEL_VERSIONS
    )
    boot_types = ("init",) if args.quick else ("init", "systemd")
    image = build_resource("boot-exit").image
    counts = collections.Counter()
    cells = {}
    columns = []
    for boot, kernel, cpu, mem, cores in itertools.product(
        boot_types,
        kernels,
        ("kvm", "atomic", "timing", "o3"),
        ("classic", "MI_example", "MESI_Two_Level"),
        (1, 2, 4, 8),
    ):
        config = SystemConfig(
            cpu_type=cpu, num_cpus=cores, memory_system=mem
        )
        result = Gem5Simulator(Gem5Build(), config).run_fs(
            kernel, image, boot_type=boot
        )
        counts[result.status.value] += 1
        column = f"{cpu[:2]}.{mem[:2]}{cores}"
        if column not in columns:
            columns.append(column)
        cells[(f"{kernel}/{boot}", column)] = result.status.value
    rows = sorted({row for row, _ in cells})
    print(status_grid(cells, rows, columns, title="Fig 8 boot tests"))
    print()
    for status, count in sorted(counts.items()):
        print(f"{status:<14} {count}")
    return 0


def _cmd_parsec(args) -> int:
    from repro.analysis import Series, bar_chart, difference_series
    from repro.guest import get_distro
    from repro.resources import build_resource
    from repro.sim import Gem5Build, Gem5Simulator, SystemConfig
    from repro.sim.workload import PARSEC_WORKING_APPS

    apps = tuple(args.apps) if args.apps else PARSEC_WORKING_APPS
    unknown = set(apps) - set(PARSEC_WORKING_APPS)
    if unknown:
        print(f"unknown/broken PARSEC apps: {sorted(unknown)}")
        return 2
    times = {}
    for os_key in ("ubuntu-18.04", "ubuntu-20.04"):
        image = build_resource("parsec", distro=os_key).image
        kernel = get_distro(os_key).kernel_version
        for app in apps:
            for cpus in (1, 8):
                config = SystemConfig(
                    cpu_type="timing",
                    num_cpus=cpus,
                    memory_system="MESI_Two_Level",
                )
                result = Gem5Simulator(Gem5Build(), config).run_fs(
                    kernel, image, benchmark=app
                )
                times[(os_key, app, cpus)] = result.workload_seconds
    bionic = Series(
        "18.04", {a: times[("ubuntu-18.04", a, 1)] for a in apps}
    )
    focal = Series(
        "20.04", {a: times[("ubuntu-20.04", a, 1)] for a in apps}
    )
    print(bar_chart(
        [difference_series("18.04-20.04 (1 core)", bionic, focal)],
        title="Fig 6 (1 core)", unit="s",
    ))
    print()
    for os_key, series in (("18.04", bionic), ("20.04", focal)):
        speedups = Series(
            os_key,
            {
                a: times[(f"ubuntu-{os_key}", a, 1)]
                / times[(f"ubuntu-{os_key}", a, 8)]
                for a in apps
            },
        )
        print(f"Fig 7 mean speedup {os_key}: {speedups.mean():.2f}x")
    return 0


def _cmd_gpu(args) -> int:
    from repro.analysis import Series, bar_chart
    from repro.gpu import GPU_WORKLOADS, GPUDevice

    device = GPUDevice()
    speedups = {}
    for name, workload in GPU_WORKLOADS.items():
        simple = device.execute(workload.kernel, "simple").shader_ticks
        dynamic = device.execute(workload.kernel, "dynamic").shader_ticks
        speedups[name] = simple / dynamic
    series = Series("dynamic-vs-simple", dict(sorted(speedups.items())))
    print(bar_chart([series], title="Fig 9", unit="x"))
    mean_rel = sum(1.0 / v for v in speedups.values()) / len(speedups)
    print(f"\nmean relative time (dynamic/simple): {mean_rel:.3f}")
    return 0


def _cmd_rate(args) -> int:
    from repro.sim import Gem5Build, Gem5Simulator, SystemConfig
    from repro.sim.workload import get_workload, suite_apps

    benchmarks = args.benchmarks or list(suite_apps(args.suite))[:6]
    unknown = set(benchmarks) - set(suite_apps(args.suite))
    if unknown:
        print(f"unknown {args.suite} benchmarks: {sorted(unknown)}")
        return 2
    table = TextTable(
        ["Benchmark", "rate@1", "rate@8", "Scaling"],
        title=f"SPECrate scaling ({args.suite}, O3, DDR3 x1)",
    )
    for name in benchmarks:
        workload = get_workload(args.suite, name, "test")
        rates = {}
        for copies in (1, 8):
            simulator = Gem5Simulator(
                Gem5Build(),
                SystemConfig(
                    cpu_type="o3",
                    num_cpus=8,
                    memory_system="MESI_Two_Level",
                ),
            )
            result = simulator.run_se_rate(workload, copies=copies)
            rates[copies] = result.stats["rate"]
        table.add_row(
            [name, f"{rates[1]:.1f}", f"{rates[8]:.1f}",
             f"{rates[8] / rates[1]:.2f}x"]
        )
    print(table.render())
    return 0


def _cmd_resume(args) -> int:
    from repro.art import ArtifactDB, Experiment
    from repro.common.errors import ReproError
    from repro.db import connect

    try:
        db = ArtifactDB(connect(args.db))
        experiment = Experiment.load(db, args.experiment)
    except ReproError as error:
        print(f"error: {error}")
        return 1
    pending = experiment.pending_runs(
        retry_failures=args.retry_failures
    )
    report = experiment.report()
    total = report["runs"]
    if not pending:
        print(
            f"nothing to resume: all {total} runs of "
            f"{experiment.name!r} are finished"
        )
        return 0
    print(
        f"resuming {experiment.name!r}: {len(pending)} of {total} runs "
        f"pending ({args.backend} backend, {args.workers} workers)"
    )
    try:
        experiment.resume(
            backend=args.backend,
            workers=args.workers,
            retry_failures=args.retry_failures,
            use_cache=args.use_cache,
            substrate=args.substrate,
            tenant=args.tenant,
            priority=args.priority,
            use_checkpoints=args.use_checkpoints,
        )
    except ReproError as error:
        print(f"error: {error}")
        return 1
    db.save()
    report = experiment.report()
    for stack, counts in sorted(report["by_stack"].items()):
        line = ", ".join(
            f"{status}={count}"
            for status, count in sorted(counts.items())
        )
        print(f"{stack:<24} {line}")
    print(f"\nexperiment {experiment.experiment_id} is up to date")
    return 0


def _cmd_cache(args) -> int:
    from repro.art import ArtifactDB, RunCache
    from repro.common.errors import ReproError
    from repro.db import connect

    try:
        db = ArtifactDB(connect(args.db))
    except ReproError as error:
        print(f"error: {error}")
        return 1
    cache = RunCache(db)
    if args.action == "stats":
        stats = cache.stats()
        print(f"entries    {stats['entries']}")
        print(f"adoptions  {stats['adoptions']}")
        for kind, count in sorted(stats["by_kind"].items()):
            print(f"  {kind:<9}{count}")
        return 0
    if args.action == "ls":
        table = TextTable(
            ["Fingerprint", "Kind", "Run", "Hits", "Stored"],
            title="RESULT CACHE",
        )
        for entry in cache.entries():
            table.add_row(
                [
                    entry["fingerprint"][:12],
                    entry.get("kind", "?"),
                    str(entry.get("run_id", "?"))[:8],
                    str(entry.get("hits", 0)),
                    str(entry.get("stored_at_wall", "?"))[:19],
                ]
            )
        print(table.render())
        return 0
    # invalidate
    if not args.token:
        print("error: invalidate needs a fingerprint or artifact hash")
        return 2
    try:
        evicted = cache.invalidate(args.token)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    db.save()
    if evicted == 0:
        print(f"no cache entries match {args.token!r}")
        return 1
    noun = "entry" if evicted == 1 else "entries"
    print(f"evicted {evicted} cache {noun}; "
          "dependent runs will re-execute on next launch")
    return 0


def _cmd_ckpt(args) -> int:
    from repro.art import ArtifactDB, CheckpointStore
    from repro.art.spec import RunSpec
    from repro.common.errors import ReproError
    from repro.db import connect

    try:
        db = ArtifactDB(connect(args.db))
    except ReproError as error:
        print(f"error: {error}")
        return 1
    store = CheckpointStore(db)
    if args.action == "stats":
        stats = store.stats()
        print(f"entries       {stats['entries']}")
        print(f"restores      {stats['restores']}")
        print(f"boot seconds  {stats['boot_seconds_archived']:.1f}")
        for boot_type, count in sorted(stats["by_boot_type"].items()):
            print(f"  {boot_type:<11}{count}")
        return 0
    if args.action == "ls":
        table = TextTable(
            ["Prefix", "Kernel", "Boot", "CPUs", "Restores", "Stored"],
            title="CHECKPOINT STORE",
        )
        for entry in store.entries():
            table.add_row(
                [
                    entry["prefix"][:12],
                    entry.get("kernel_version", "?"),
                    entry.get("boot_type", "?"),
                    str(entry.get("num_cpus", "?")),
                    str(entry.get("restores", 0)),
                    str(entry.get("stored_at_wall", "?"))[:19],
                ]
            )
        print(table.render())
        return 0
    # gc: a checkpoint is live while some run document's spec still
    # hashes to its prefix.
    live = set()
    for doc in db.runs.find({}):
        spec_doc = doc.get("spec")
        if not spec_doc:
            continue
        prefix = RunSpec.from_document(spec_doc).prefix_fingerprint()
        if prefix:
            live.add(prefix)
    evicted = store.gc(live)
    db.save()
    noun = "checkpoint" if evicted == 1 else "checkpoints"
    print(f"evicted {evicted} orphaned {noun} "
          f"({len(live)} live boot prefixes)")
    return 0


def _cmd_db(args) -> int:
    """Storage-engine maintenance: stats, compact, scrub, recover."""
    from repro.common.errors import ReproError
    from repro.db import connect

    try:
        db = connect(args.db)
    except ReproError as error:
        print(f"error: {error}")
        return 1
    try:
        if args.action == "stats":
            stats = db.storage_stats()
            table = TextTable(
                ["Collection", "Docs", "Segments", "Seg bytes",
                 "WAL bytes", "Indexes"],
                title=f"STORAGE ENGINE ({stats['durability']})",
            )
            for name, entry in sorted(stats["collections"].items()):
                indexes = ",".join(sorted(entry["indexes"])) or "-"
                table.add_row(
                    [
                        name,
                        str(entry["documents"]),
                        str(entry.get("segments", 0)),
                        str(entry.get("segment_bytes", 0)),
                        str(entry.get("wal_bytes", 0)),
                        indexes,
                    ]
                )
            print(table.render())
            files = stats.get("filestore")
            if files is not None:
                print(
                    f"filestore: {files['blobs']} blobs, "
                    f"{files['bytes']} bytes, {files['shards']} shards, "
                    f"{files.get('quarantined', 0)} quarantined"
                )
            return 0
        if args.action == "compact":
            if db.root is None:
                print("nothing to compact: in-memory database")
                return 0
            results = db.compact()
            merged = 0
            for name, result in sorted(results.items()):
                if result["merged"]:
                    merged += 1
                    print(
                        f"{name}: merged {result['merged']} segments "
                        f"into {result['segment']}, reclaimed "
                        f"{result['reclaimed_bytes']} bytes"
                    )
            if not merged:
                print("nothing to compact: no collection has 2+ segments")
            return 0
        if args.action == "scrub":
            report = db.files.scrub()
            print(f"scanned      {report['scanned']}")
            print(f"repaired     {len(report['repaired'])}")
            print(f"quarantined  {len(report['quarantined'])}")
            print(f"tmp swept    {report['tmp_swept']}")
            for digest in report["quarantined"]:
                print(f"  quarantined {digest}")
            return 1 if report["quarantined"] else 0
        # recover: the replay already happened at connect(); report it.
        report = db.recovery_report()
        if not report:
            print("no persisted collections to recover")
            return 0
        table = TextTable(
            ["Collection", "Records", "Segments", "WAL records",
             "Torn bytes"],
            title="CRASH RECOVERY",
        )
        for name, entry in sorted(report.items()):
            table.add_row(
                [
                    name,
                    str(entry["records_replayed"]),
                    str(entry["segments"]),
                    str(entry["wal_records"]),
                    str(entry["truncated_bytes"]),
                ]
            )
        print(table.render())
        torn = sum(e["truncated_bytes"] for e in report.values())
        if torn:
            print(f"truncated {torn} torn tail bytes; WAL is clean again")
        return 0
    finally:
        db.close()


def _cmd_admit(args) -> int:
    """Admission-control inspection: effective limits, or a seeded
    overload demo whose decision ledger is printed for triage."""
    from repro.common.rng import RngStream
    from repro.scheduler import (
        AdmissionController,
        AdmissionRejected,
        SchedulerApp,
        TenantLimits,
    )

    limits = TenantLimits(
        rate=args.rate,
        burst=args.burst,
        max_queued=args.max_queued,
        max_inflight=args.max_inflight,
    )
    if args.action == "limits":
        table = TextTable(["setting", "value"])
        table.add_row(["queue_limit", str(args.queue_limit)])
        table.add_row(["rate (submissions/s)", str(limits.rate or "unlimited")])
        table.add_row(
            ["burst", str(limits.burst or limits.rate or "unlimited")]
        )
        table.add_row(["max_queued", str(limits.max_queued or "unlimited")])
        table.add_row(
            ["max_inflight", str(limits.max_inflight or "unlimited")]
        )
        table.add_row(["breaker_threshold", str(args.breaker_threshold)])
        table.add_row(["seed", str(args.seed)])
        print(table.render())
        print(
            "\npriorities: interactive > default > bulk "
            "(bulk shed first under overload)"
        )
        return 0

    admission = AdmissionController(
        default_limits=limits,
        breaker_threshold=args.breaker_threshold,
        seed=args.seed,
    )
    app = SchedulerApp(
        name="admit-demo",
        worker_count=args.workers,
        queue_limit=args.queue_limit,
        admission=admission,
    )

    @app.task(name="admit.demo")
    def demo_task(index: int) -> int:
        return sum(range(200)) + index

    mix = RngStream(args.seed, "admit", "demo")
    tenants = ("alice", "bob", "carol")
    outcomes = {"accepted": 0, "rejected": 0}
    try:
        for index in range(args.flood):
            tenant = mix.choice(tenants)
            priority = mix.choice(("interactive", "default", "bulk"))
            try:
                demo_task.apply_async(
                    args=(index,), tenant=tenant, priority=priority
                )
                outcomes["accepted"] += 1
            except AdmissionRejected:
                outcomes["rejected"] += 1
        app.drain(timeout=60.0)
    finally:
        app.shutdown()
    stats = admission.stats()
    table = TextTable(["measure", "count"])
    table.add_row(["submissions", str(args.flood)])
    table.add_row(["accepted", str(outcomes["accepted"])])
    table.add_row(["rejected", str(outcomes["rejected"])])
    for reason, count in sorted(stats["rejected_by_reason"].items()):
        table.add_row([f"  rejected: {reason}", str(count)])
    table.add_row(["shed", str(stats["outcomes"].get("shed", 0))])
    table.add_row(["overflow parked", str(stats["overflow"])])
    print(table.render())
    depth = app.broker.queue_depth()
    print(
        "\nqueue depth after drain: "
        + ", ".join(f"{k}={v}" for k, v in sorted(depth.items()))
    )
    if stats["breakers"]:
        print(
            "breakers: "
            + ", ".join(
                f"{name}={state}"
                for name, state in sorted(stats["breakers"].items())
            )
        )
    print(f"decisions logged: {stats['decisions']} (seed {args.seed})")
    return 0


def _cmd_lint(args) -> int:
    """Run the analyzer; the exit code is the CI contract.

    0 — clean (or every finding is baselined / only warnings without
    ``--strict``); 1 — new findings at failing severity; 2 — usage
    error (bad paths, malformed baseline).
    """
    import os

    from repro.analysis import lint_paths
    from repro.analysis.baseline import (
        load_baseline,
        split_baselined,
        write_baseline,
    )
    from repro.analysis.reporters import (
        render_json,
        render_sarif,
        render_text,
    )
    from repro.common.errors import ReproError

    paths = args.paths or ["src/repro"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}")
        return 2
    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline PATH")
        return 2
    findings = lint_paths(paths)
    if getattr(args, "deep", False):
        from repro.analysis import deep_lint_paths

        findings = sorted(
            findings + deep_lint_paths(paths),
            key=lambda finding: finding.sort_key(),
        )
    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"baseline {args.baseline} written: "
            f"{len(findings)} finding(s) accepted"
        )
        return 0
    baselined = 0
    if args.baseline:
        try:
            accepted = load_baseline(args.baseline)
        except ReproError as error:
            print(f"error: {error}")
            return 2
        findings, known = split_baselined(findings, accepted)
        baselined = len(known)
    render = {
        "json": render_json,
        "sarif": render_sarif,
    }.get(args.format, render_text)
    output = render(findings, baselined=baselined)
    print(output, end="" if output.endswith("\n") else "\n")
    failing = ("error", "warning") if args.strict else ("error",)
    failed = any(f.severity in failing for f in findings)
    return 1 if failed else 0


def _cmd_trace(args) -> int:
    from repro.art import ArtifactDB
    from repro.art.launch import EXPERIMENTS
    from repro.common.errors import ReproError
    from repro.db import connect
    from repro.telemetry import (
        chrome_trace_json,
        metrics_to_prometheus,
        rehydrate_telemetry,
    )

    try:
        db = ArtifactDB(connect(args.db))
        experiments = db.database.collection(EXPERIMENTS)
        doc = experiments.find_one({"name": args.experiment})
        if doc is None:
            doc = experiments.find_one({"_id": args.experiment})
        if doc is None:
            print(f"error: no experiment {args.experiment!r} in {args.db}")
            return 1
        snapshot = rehydrate_telemetry(db, doc["_id"])
    except ReproError as error:
        print(f"error: {error}")
        return 1

    spans = snapshot["spans"]
    # Write the trace file before touching stdout: if stdout is a pipe
    # that closes early (e.g. | head), the artifact must still exist.
    if args.chrome:
        try:
            with open(args.chrome, "w", encoding="utf-8") as handle:
                handle.write(chrome_trace_json(spans))
        except OSError as error:
            print(f"error: cannot write {args.chrome}: {error}")
            return 1
    print(_trace_timing_table(doc, spans))
    if args.chrome:
        print(f"\nChrome trace written to {args.chrome} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    if args.prometheus:
        print()
        print(metrics_to_prometheus(snapshot["metrics"]), end="")
    return 0


def _trace_timing_table(doc, spans) -> str:
    """Per-run timing table reconstructed purely from archived spans."""
    children = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)

    def wall_ms(span) -> str:
        duration = span.get("duration")
        return f"{duration * 1000:.1f}" if duration is not None else "?"

    table = TextTable(
        ["Run", "Workload", "Status", "Wall ms", "Phases"],
        title=f"experiment {doc['name']} — per-run timing",
    )
    run_spans = [s for s in spans if s["name"] == "run"]
    run_spans.sort(key=lambda s: s["start_wall"])
    for span in run_spans:
        attributes = span.get("attributes", {})
        phases = ", ".join(
            f"{child['name'].split('.', 1)[-1]}={wall_ms(child)}ms"
            for child in sorted(
                children.get(span["span_id"], []),
                key=lambda s: s["start_wall"],
            )
            if child["name"].startswith("phase.")
        )
        table.add_row(
            [
                str(attributes.get("run_id", "?"))[:8],
                str(attributes.get("workload", "?")),
                str(attributes.get("status", "?")),
                wall_ms(span),
                phases or "-",
            ]
        )
    total = next((s for s in spans if s["name"] == "experiment"), None)
    lines = [table.render()]
    if total is not None and total.get("duration") is not None:
        lines.append(
            f"experiment wall time: {total['duration']:.3f}s "
            f"over {len(run_spans)} runs"
        )
    return "\n".join(lines)


def _cmd_report(args) -> int:
    from repro.analysis import experiment_report
    from repro.art import ArtifactDB, import_archive, verify_archive
    from repro.common.errors import ReproError

    try:
        verify_archive(args.archive)
        db = ArtifactDB()
        import_archive(args.archive, db)
        print(experiment_report(db))
    except ReproError as error:
        print(f"error: {error}")
        return 1
    return 0


def _cmd_reproduce(args) -> int:
    from repro.art import ArtifactDB
    from repro.common.errors import ReproError
    from repro.db import connect
    from repro.pipeline import load_manifest, run_pipeline

    try:
        manifest = load_manifest(args.manifest, overrides=args.overrides)
        db = ArtifactDB(connect(args.db))
    except ReproError as error:
        print(f"error: {error}")
        return 2
    if not args.quiet:
        print(
            f"reproduce {manifest.name!r}: "
            f"{len(manifest.stages)} stages, "
            f"order {' -> '.join(manifest.execution_order())}"
        )
    result = run_pipeline(
        db, manifest, use_cache=None if args.stage_cache else False
    )
    db.save()
    if not args.quiet:
        for event in result["trail"]:
            print(f"  {_trail_line(event)}")
    counts = result["counts"]
    decisions = counts["executed"] + counts["cache_hits"]
    hit_pct = 100.0 * counts["cache_hits"] / decisions if decisions else 0.0
    print(
        f"pipeline {result['pipeline_id'][:8]} {result['status']}: "
        f"{counts['executed']} executed, "
        f"{counts['cache_hits']} cache hits ({hit_pct:.0f}%), "
        f"{counts['gate_failures']} gate failures, "
        f"{counts['backtracks']} backtracks"
    )
    if result["status"] != "succeeded":
        print(f"error: {result['error']}")
        return 1
    if (
        args.expect_cache_hits is not None
        and hit_pct < args.expect_cache_hits
    ):
        print(
            f"error: expected >= {args.expect_cache_hits:.0f}% stage "
            f"cache hits, observed {hit_pct:.0f}%"
        )
        return 1
    return 0


def _trail_line(event) -> str:
    kind = event.get("event")
    if kind == "stage":
        return (
            f"[{event['action']:>9}] {event['stage']} "
            f"(kind={event['kind']} attempt={event['attempt']} "
            f"gates={'ok' if event['gates_ok'] else 'FAILED'} "
            f"fp={event['fingerprint'][:12]})"
        )
    if kind == "backtrack":
        return (
            f"[backtrack] {event['from_stage']} -> {event['to_stage']} "
            f"({event['backtracks_used']}/{event['max_backtracks']}: "
            f"{'; '.join(event['failed_gates'])})"
        )
    if kind == "gate_failed_final":
        return (
            f"[gate-fail] {event['stage']} out of backtracks: "
            f"{'; '.join(event['failed_gates'])}"
        )
    if kind == "stage_error":
        return f"[    error] {event['stage']}: {event['error']}"
    if kind == "finished":
        return f"[ finished] {event['status']}"
    return str({k: v for k, v in event.items() if k != "at_wall"})


def _cmd_pipeline(args) -> int:
    from repro.art import ArtifactDB
    from repro.common.errors import NotFoundError, ReproError
    from repro.db import connect
    from repro.pipeline import (
        PipelineJournal,
        load_manifest,
        run_pipeline,
    )

    try:
        db = ArtifactDB(connect(args.db))
    except ReproError as error:
        print(f"error: {error}")
        return 2
    journal = PipelineJournal(db)

    if args.action == "status":
        docs = journal.pipelines(name=None)
        if args.target:
            docs = [
                doc
                for doc in docs
                if args.target in (doc["pipeline"], doc["_id"])
            ]
        if not docs:
            print("no pipeline runs journaled")
            return 1
        table = TextTable(
            ["Run", "Pipeline", "Status", "Exec", "Hits", "Gates!",
             "Back", "Started"],
            title="PIPELINE RUNS",
        )
        for doc in docs:
            counts = doc.get("counts") or {}
            table.add_row(
                [
                    doc["_id"][:8],
                    doc["pipeline"],
                    doc["status"],
                    str(counts.get("executed", 0)),
                    str(counts.get("cache_hits", 0)),
                    str(counts.get("gate_failures", 0)),
                    str(counts.get("backtracks", 0)),
                    str(doc.get("started_at_wall", "?"))[:19],
                ]
            )
        print(table.render())
        return 0

    # explain / rerun address one pipeline run.
    doc = None
    if args.target:
        try:
            doc = journal.get_pipeline(args.target)
        except NotFoundError:
            doc = journal.latest_pipeline(name=args.target)
    else:
        doc = journal.latest_pipeline()
    if doc is None:
        print(f"error: no pipeline run matches {args.target!r}")
        return 1

    if args.action == "explain":
        print(
            f"pipeline {doc['pipeline']!r} run {doc['_id'][:8]} "
            f"[{doc['status']}] manifest "
            f"{doc['manifest_fingerprint'][:12]} "
            f"({doc.get('manifest_path') or 'inline'})"
        )
        print(f"  stage order: {' -> '.join(doc['stage_order'])}")
        print("  decision trail:")
        for event in doc.get("trail", []):
            print(f"    {_trail_line(event)}")
        print("  stage provenance:")
        for stage in journal.stages_of(doc["_id"]):
            verdicts = stage.get("verdicts") or []
            print(
                f"    {stage['stage']} attempt {stage['attempt']} "
                f"[{stage['action']}] fp={stage['fingerprint'][:12]} "
                f"outputs={str(stage.get('outputs_blob'))[:12]}"
            )
            for verdict in verdicts:
                mark = "pass" if verdict["ok"] else "FAIL"
                print(f"      gate {mark}: {verdict.get('detail')}")
            if stage.get("error"):
                print(f"      error: {stage['error']}")
        return 0

    # rerun
    path = doc.get("manifest_path")
    if not path:
        print(
            "error: the journaled run has no manifest path; "
            "use 'repro reproduce <manifest>' directly"
        )
        return 2
    try:
        manifest = load_manifest(path)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    if args.stage:
        try:
            targets = [args.stage] + manifest.dependents_of(args.stage)
        except ReproError as error:
            print(f"error: {error}")
            return 2
        evicted = journal.evict_stage_records(targets)
        print(
            f"evicted {evicted} journaled results for "
            f"{', '.join(targets)}; they will re-execute"
        )
    result = run_pipeline(db, manifest, journal=journal)
    db.save()
    for event in result["trail"]:
        print(f"  {_trail_line(event)}")
    print(
        f"pipeline {result['pipeline_id'][:8]} {result['status']}: "
        f"{result['counts']}"
    )
    return 0 if result["status"] == "succeeded" else 1


if __name__ == "__main__":
    sys.exit(main())
