"""GPU register files and the two register-allocation policies.

Quoting the paper: the GCN3 model offers "a simple allocation scheme that
allocates 1 wavefront per SIMD16 in a compute unit at a time to limit
stalls, and a dynamic allocation scheme that always allows up to the max
wavefronts per CU at a time by monitoring per-wavefront register
requirements compared to the number of available registers per CU."

:class:`RegisterFile` does the bookkeeping (with invariants suited to
property testing); the allocator classes answer the scheduling question the
compute unit asks: *how many wavefronts may be resident per SIMD for this
kernel?*
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import StateError, ValidationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernels import GPUKernel


class RegisterFile:
    """A bank of registers with allocate/free accounting."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValidationError("register file capacity must be positive")
        self.capacity = capacity
        self._allocations: Dict[str, int] = {}

    @property
    def used(self) -> int:
        return sum(self._allocations.values())

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def can_allocate(self, count: int) -> bool:
        return 0 < count <= self.available

    def allocate(self, owner: str, count: int) -> None:
        if count <= 0:
            raise ValidationError("allocation must be positive")
        if owner in self._allocations:
            raise StateError(f"{owner!r} already holds registers")
        if count > self.available:
            raise StateError(
                f"cannot allocate {count} registers; only "
                f"{self.available} free"
            )
        self._allocations[owner] = count

    def free(self, owner: str) -> int:
        if owner not in self._allocations:
            raise StateError(f"{owner!r} holds no registers")
        return self._allocations.pop(owner)

    def owners(self):
        return sorted(self._allocations)


class RegisterAllocatorBase:
    """Common interface: occupancy decision + feasibility check."""

    name = "base"

    def __init__(self, config: GPUConfig):
        self.config = config

    def check_feasible(self, kernel: GPUKernel) -> None:
        """A kernel whose single wavefront cannot fit can never launch."""
        if kernel.vregs_per_wavefront > (
            self.config.vector_registers_per_simd
        ):
            raise ValidationError(
                f"kernel {kernel.name!r} needs "
                f"{kernel.vregs_per_wavefront} vregs/wavefront; a SIMD "
                f"has {self.config.vector_registers_per_simd}"
            )
        if kernel.lds_bytes_per_workgroup > self.config.lds_bytes_per_cu:
            raise ValidationError(
                f"kernel {kernel.name!r} needs "
                f"{kernel.lds_bytes_per_workgroup} LDS bytes/WG; a CU "
                f"has {self.config.lds_bytes_per_cu}"
            )

    def wavefront_slots_per_simd(self, kernel: GPUKernel) -> int:
        raise NotImplementedError


class SimpleRegisterAllocator(RegisterAllocatorBase):
    """One wavefront per SIMD16 at a time (stall-avoidance by fiat)."""

    name = "simple"

    def wavefront_slots_per_simd(self, kernel: GPUKernel) -> int:
        self.check_feasible(kernel)
        return 1


class DynamicRegisterAllocator(RegisterAllocatorBase):
    """Up to the hardware max wavefronts, bounded by register and LDS
    availability per wavefront/workgroup."""

    name = "dynamic"

    def wavefront_slots_per_simd(self, kernel: GPUKernel) -> int:
        self.check_feasible(kernel)
        by_vregs = (
            self.config.vector_registers_per_simd
            // kernel.vregs_per_wavefront
        )
        by_lds = self._slots_by_lds(kernel)
        slots = min(
            self.config.max_wavefronts_per_simd, by_vregs, by_lds
        )
        return max(1, slots)

    def _slots_by_lds(self, kernel: GPUKernel) -> int:
        if kernel.lds_bytes_per_workgroup == 0:
            return self.config.max_wavefronts_per_simd
        workgroups_per_cu = (
            self.config.lds_bytes_per_cu // kernel.lds_bytes_per_workgroup
        )
        wavefronts_per_cu = (
            workgroups_per_cu * kernel.wavefronts_per_workgroup
        )
        return max(1, wavefronts_per_cu // self.config.simds_per_cu)


REGISTER_ALLOCATORS = ("simple", "dynamic")


def build_register_allocator(
    name: str, config: GPUConfig
) -> RegisterAllocatorBase:
    if name == "simple":
        return SimpleRegisterAllocator(config)
    if name == "dynamic":
        return DynamicRegisterAllocator(config)
    raise ValidationError(
        f"unknown register allocator {name!r}; "
        f"one of {REGISTER_ALLOCATORS}"
    )
