"""A GCN3-class GPU timing model — the gem5 GPU-model substitute.

Use-case 3 of the paper studies how the gem5 GCN3 GPU model's two register
allocation schemes change performance across 29 workloads.  The result is
mechanistic, and the mechanisms are what this package implements:

- the **simple** allocator schedules one wavefront per SIMD16 at a time,
  bounding occupancy at 1 wave/SIMD but avoiding inter-wave stalls;
- the **dynamic** allocator admits up to the hardware maximum wavefronts
  per SIMD whenever registers (and LDS) suffice, which hides memory latency
  — but the publicly-available GCN3 model's *simplistic dependence
  tracking* makes every extra resident wavefront add issue stalls, so
  occupancy is not free;
- synchronization-heavy workloads serialize in critical sections whose
  retry cost grows with the number of concurrent wavefronts.

Together these reproduce Fig 9's surprise: the simple allocator wins on
average, HeteroSync mutexes and the DNNMark pool layers regress hardest
under dynamic allocation, small kernels are indifferent, and workloads with
abundant parallel work improve.
"""

from repro.gpu.config import GPUConfig
from repro.gpu.kernels import GPUKernel
from repro.gpu.regalloc import (
    RegisterFile,
    SimpleRegisterAllocator,
    DynamicRegisterAllocator,
    build_register_allocator,
    REGISTER_ALLOCATORS,
)
from repro.gpu.device import GPUDevice, GPURunResult
from repro.gpu.workloads import (
    GPU_WORKLOADS,
    WORKLOADS_BY_SUITE,
    get_gpu_workload,
)

__all__ = [
    "GPUConfig",
    "GPUKernel",
    "RegisterFile",
    "SimpleRegisterAllocator",
    "DynamicRegisterAllocator",
    "build_register_allocator",
    "REGISTER_ALLOCATORS",
    "GPUDevice",
    "GPURunResult",
    "GPU_WORKLOADS",
    "WORKLOADS_BY_SUITE",
    "get_gpu_workload",
]
