"""GPU kernel descriptors.

A :class:`GPUKernel` is the analytic profile of one launched grid: how many
workgroups and wavefronts it spawns, its per-wavefront register and LDS
demand, and the per-instruction behaviour (memory intensity, dependence
density, critical-section synchronization) that the compute-unit timing
model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class GPUKernel:
    """One kernel launch's static profile."""

    name: str
    #: Workgroups in the launched grid.
    num_workgroups: int
    #: Wavefronts per workgroup (each wavefront has up to 64 threads).
    wavefronts_per_workgroup: int = 1
    #: Vector registers demanded by each wavefront.
    vregs_per_wavefront: int = 64
    #: Scalar registers demanded by each wavefront.
    sregs_per_wavefront: int = 16
    #: LDS bytes demanded by each workgroup.
    lds_bytes_per_workgroup: int = 0
    #: Dynamic vector instructions per wavefront.
    instructions_per_wavefront: int = 2000
    #: Fraction of instructions that access memory.
    memory_intensity: float = 0.15
    #: Fraction of memory operations whose consumer follows closely enough
    #: to expose the memory latency (per-wavefront stall probability).
    dependency_density: float = 0.5
    #: Critical-section entries per wavefront (mutex-style sync).
    sync_ops_per_wavefront: float = 0.0
    #: Cycles spent inside one critical section.
    critical_section_cycles: float = 200.0
    #: Extra retry cost per additional contending wavefront (0..1+);
    #: spin-with-backoff and sleep mutexes have lower coefficients than
    #: raw fetch-and-add spinning.
    contention_coefficient: float = 0.5
    #: "Uniq" HeteroSync style: one lock per CU instead of one global
    #: lock, so contention splits across CUs.
    per_cu_sync: bool = False

    def __post_init__(self):
        if not self.name:
            raise ValidationError("kernel needs a name")
        for name in (
            "num_workgroups",
            "wavefronts_per_workgroup",
            "vregs_per_wavefront",
            "sregs_per_wavefront",
            "instructions_per_wavefront",
        ):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        for name in ("memory_intensity", "dependency_density"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be within [0, 1]")
        if self.sync_ops_per_wavefront < 0:
            raise ValidationError("sync_ops_per_wavefront must be >= 0")
        if self.lds_bytes_per_workgroup < 0:
            raise ValidationError("lds_bytes_per_workgroup must be >= 0")
        if self.contention_coefficient < 0:
            raise ValidationError("contention_coefficient must be >= 0")

    @property
    def total_wavefronts(self) -> int:
        return self.num_workgroups * self.wavefronts_per_workgroup

    @property
    def total_instructions(self) -> int:
        return self.total_wavefronts * self.instructions_per_wavefront
