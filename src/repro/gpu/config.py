"""GPU configuration — defaults are the paper's Table III.

| Component               | Value                              |
|-------------------------|------------------------------------|
| Number of CUs           | 4                                  |
| SIMD16s (vector ALUs)   | 4 per CU                           |
| GPU frequency           | 1 GHz                              |
| Max wavefronts          | 10 per SIMD16 (40 per CU)          |
| Vector registers        | 8K per CU                          |
| Scalar registers        | 8K per CU                          |
| LDS                     | 64 KB per CU                       |
| L1 instruction cache    | 32 KB shared between every 4 CUs   |
| L1 data caches          | 16 KB per CU                       |
| Unified L2 cache        | 256 KB                             |
| Main memory             | 1 channel, DDR3_1600_8x8           |
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class GPUConfig:
    """The simulated GPU's geometry and timing parameters."""

    num_cus: int = 4
    simds_per_cu: int = 4
    gpu_clock_ghz: float = 1.0
    max_wavefronts_per_simd: int = 10
    vector_registers_per_cu: int = 8192
    scalar_registers_per_cu: int = 8192
    lds_bytes_per_cu: int = 64 * 1024
    l1i_bytes_per_4cu: int = 32 * 1024
    l1d_bytes_per_cu: int = 16 * 1024
    l2_bytes: int = 256 * 1024
    memory_tech: str = "DDR3_1600_8x8"
    memory_channels: int = 1
    #: Average memory-access latency seen by a wavefront (GPU cycles).
    memory_latency_cycles: int = 350
    #: Issue-stall cycles each *extra* resident wavefront adds per
    #: instruction — the GCN3 model's simplistic dependence tracking
    #: (the paper's own diagnosis of the Fig 9 result).
    dependence_tracking_penalty: float = 0.08

    def __post_init__(self):
        positive_fields = (
            "num_cus",
            "simds_per_cu",
            "gpu_clock_ghz",
            "max_wavefronts_per_simd",
            "vector_registers_per_cu",
            "scalar_registers_per_cu",
            "lds_bytes_per_cu",
            "l2_bytes",
            "memory_latency_cycles",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if self.dependence_tracking_penalty < 0:
            raise ValidationError(
                "dependence_tracking_penalty must be >= 0"
            )

    @property
    def max_wavefronts_per_cu(self) -> int:
        return self.max_wavefronts_per_simd * self.simds_per_cu

    @property
    def total_simds(self) -> int:
        return self.num_cus * self.simds_per_cu

    @property
    def vector_registers_per_simd(self) -> int:
        return self.vector_registers_per_cu // self.simds_per_cu

    def describe(self) -> str:
        return (
            f"{self.num_cus} CUs x {self.simds_per_cu} SIMD16 @ "
            f"{self.gpu_clock_ghz} GHz, {self.max_wavefronts_per_simd} "
            f"wf/SIMD, {self.vector_registers_per_cu} vregs/CU, "
            f"{self.lds_bytes_per_cu // 1024} KB LDS/CU"
        )
