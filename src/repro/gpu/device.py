"""The GPU device timing model.

Executes one kernel under one register-allocation policy and returns the
time in *shader ticks* (GPU cycles), the unit Fig 9 reports.

The model per SIMD16 pipe:

- Wavefronts are distributed round-robin over ``num_cus × simds_per_cu``
  pipes; the allocator bounds how many are *resident* per pipe at once.
- Issuing one wavefront instruction occupies the pipe for 4 cycles (64
  work-items over a 16-lane SIMD), inflated by the dependence-tracking
  penalty for every extra resident wavefront — the GCN3 model's simplistic
  scoreboard re-checks every resident wave.
- A wavefront alone on a pipe exposes ``memory_intensity ×
  dependency_density × memory_latency`` stall cycles per instruction;
  resident peers hide that latency, but the hiding is capped by the memory
  pipe's outstanding-miss capacity (an MSHR-style limit), so occupancy
  beyond a couple of waves buys nothing for memory-bound code.
- Critical-section synchronization serializes globally (or per-CU for the
  "Uniq" HeteroSync variants); the cost of one entry grows with the number
  of concurrently contending wavefronts, so higher occupancy makes
  contention strictly worse.

These are exactly the paper's stated mechanisms for the Fig 9 surprise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import ValidationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernels import GPUKernel
from repro.gpu.regalloc import build_register_allocator
from repro.common.statsdb import StatsDB

#: Cycles to issue one 64-lane wavefront instruction on a SIMD16.
_ISSUE_CYCLES = 4.0
#: MSHR-style cap: resident waves beyond this no longer add memory-level
#: parallelism on one SIMD's memory path.
_MEMORY_HIDING_CAP = 1
#: Cycles of launch overhead per workgroup dispatch (per CU dispatcher).
_DISPATCH_CYCLES = 64.0


@dataclass
class GPURunResult:
    """Outcome of one kernel execution."""

    kernel_name: str
    allocator: str
    shader_ticks: float
    compute_ticks: float
    sync_ticks: float
    dispatch_ticks: float
    occupancy_per_simd: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def sim_seconds(self) -> float:
        return self.shader_ticks  # 1 GHz reference; ticks == ns

    def describe(self) -> str:
        return (
            f"{self.kernel_name} [{self.allocator}]: "
            f"{self.shader_ticks:.0f} shader ticks "
            f"(occupancy {self.occupancy_per_simd} wf/SIMD)"
        )

    def stats_txt(self) -> str:
        """Render the run's statistics in gem5 stats.txt form."""
        db = StatsDB()
        for name, value in self.stats.items():
            if isinstance(value, dict):
                for key, entry in value.items():
                    db.vec_inc(name, key, entry)
            else:
                db.set(name, value)
        return db.dump()


class GPUDevice:
    """A configured GPU that can execute kernels under either allocator."""

    def __init__(self, config: GPUConfig = None):
        self.config = config or GPUConfig()

    def execute(
        self, kernel: GPUKernel, allocator: str = "simple"
    ) -> GPURunResult:
        """Run one kernel to completion; returns timing and occupancy."""
        policy = build_register_allocator(allocator, self.config)
        slots = policy.wavefront_slots_per_simd(kernel)

        pipes = self.config.total_simds
        waves_per_pipe = math.ceil(kernel.total_wavefronts / pipes)
        resident = max(1, min(slots, waves_per_pipe))

        compute = self._pipe_time(kernel, waves_per_pipe, resident)
        sync = self._sync_time(kernel, resident)
        dispatch = (
            _DISPATCH_CYCLES
            * kernel.num_workgroups
            / self.config.num_cus
        )
        total = compute + sync + dispatch
        stats = {
            "shader_ticks": total,
            "compute_ticks": compute,
            "sync_ticks": sync,
            "dispatch_ticks": dispatch,
            "occupancy_per_simd": resident,
            "total_wavefronts": kernel.total_wavefronts,
            "instructions": kernel.total_instructions,
            "vregs_per_wavefront": kernel.vregs_per_wavefront,
            "issue_cycles_per_inst": (
                self._issue_cycles_per_instruction(resident)
            ),
            "cu_wavefronts": self._wavefronts_per_cu(kernel),
        }
        return GPURunResult(
            kernel_name=kernel.name,
            allocator=allocator,
            shader_ticks=total,
            compute_ticks=compute,
            sync_ticks=sync,
            dispatch_ticks=dispatch,
            occupancy_per_simd=resident,
            stats=stats,
        )

    def execute_sequence(
        self, kernels, allocator: str = "simple"
    ) -> "GPURunResult":
        """Run dependent kernels back to back (a real GPU application is
        a launch sequence, not one grid).  Returns an aggregate result
        whose per-kernel breakdown lives in ``stats['kernel_ticks']``."""
        kernels = list(kernels)
        if not kernels:
            raise ValidationError("execute_sequence needs >= 1 kernel")
        total = compute = sync = dispatch = 0.0
        per_kernel = {}
        max_occupancy = 0
        for kernel in kernels:
            result = self.execute(kernel, allocator)
            total += result.shader_ticks
            compute += result.compute_ticks
            sync += result.sync_ticks
            dispatch += result.dispatch_ticks
            per_kernel[kernel.name] = result.shader_ticks
            max_occupancy = max(
                max_occupancy, result.occupancy_per_simd
            )
        name = "+".join(kernel.name for kernel in kernels)
        stats = {
            "shader_ticks": total,
            "compute_ticks": compute,
            "sync_ticks": sync,
            "dispatch_ticks": dispatch,
            "kernel_ticks": per_kernel,
            "kernels": float(len(kernels)),
        }
        return GPURunResult(
            kernel_name=name,
            allocator=allocator,
            shader_ticks=total,
            compute_ticks=compute,
            sync_ticks=sync,
            dispatch_ticks=dispatch,
            occupancy_per_simd=max_occupancy,
            stats=stats,
        )

    # ------------------------------------------------------------- pieces

    def _wavefronts_per_cu(self, kernel: GPUKernel) -> Dict[str, float]:
        """Round-robin workgroup dispatch: wavefront count per CU."""
        per_cu = {f"cu{i}": 0.0 for i in range(self.config.num_cus)}
        for wg_index in range(kernel.num_workgroups):
            cu = wg_index % self.config.num_cus
            per_cu[f"cu{cu}"] += kernel.wavefronts_per_workgroup
        return per_cu

    def _issue_cycles_per_instruction(self, resident: int) -> float:
        """Issue cost including the dependence-tracking inflation."""
        penalty = self.config.dependence_tracking_penalty
        return _ISSUE_CYCLES * (1.0 + penalty * (resident - 1))

    def _pipe_time(
        self, kernel: GPUKernel, waves_per_pipe: int, resident: int
    ) -> float:
        issue = self._issue_cycles_per_instruction(resident)
        work_per_wave = kernel.instructions_per_wavefront * issue
        stall_per_wave = (
            kernel.instructions_per_wavefront
            * kernel.memory_intensity
            * kernel.dependency_density
            * self.config.memory_latency_cycles
        )
        duty = work_per_wave / (work_per_wave + stall_per_wave)
        hiding_waves = min(resident, 1 + _MEMORY_HIDING_CAP)
        utilization = min(1.0, hiding_waves * duty)
        if utilization <= 0:
            raise ValidationError("pipe utilization collapsed to zero")
        return waves_per_pipe * work_per_wave / utilization

    def _sync_time(self, kernel: GPUKernel, resident: int) -> float:
        if kernel.sync_ops_per_wavefront == 0:
            return 0.0
        resident_device_wide = min(
            kernel.total_wavefronts,
            resident * self.config.total_simds,
        )
        per_scope = self._sync_scope_size(kernel, resident_device_wide)
        contention = 1.0 + self._contention_coefficient(kernel) * (
            per_scope - 1
        )
        entries = (
            kernel.total_wavefronts * kernel.sync_ops_per_wavefront
        )
        serial_scopes = self._sync_scopes(kernel)
        return (
            entries
            * kernel.critical_section_cycles
            * contention
            / serial_scopes
        )

    @staticmethod
    def _contention_coefficient(kernel: GPUKernel) -> float:
        return kernel.contention_coefficient

    def _sync_scope_size(self, kernel, resident_device_wide) -> int:
        scopes = self._sync_scopes(kernel)
        return max(1, resident_device_wide // scopes)

    def _sync_scopes(self, kernel: GPUKernel) -> int:
        # "Uniq" HeteroSync variants use one lock per CU rather than one
        # global lock: contention splits across CUs.
        if kernel.per_cu_sync:
            return self.config.num_cus
        return 1
