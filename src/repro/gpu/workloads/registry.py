"""Table IV: the 29 GPU workloads and their input sizes.

Each entry pairs the paper's (application, input size) with a
:class:`~repro.gpu.kernels.GPUKernel` profile.  Grid dimensions follow the
stated inputs (e.g. ``MatrixTranspose 1024x1024`` launches a 4096-workgroup
grid of 256-thread workgroups; the HeteroSync microbenchmarks run "8
WGs/CU, 2 iters" of 10 loads/stores per thread per critical section).
Behavioural coefficients (memory-dependence exposure, lock-contention
retry cost) are calibration constants chosen per suite so the *mechanism*
— occupancy vs dependence-tracking stalls vs lock contention — reproduces
Fig 9's per-category outcomes; EXPERIMENTS.md documents the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import NotFoundError
from repro.gpu.kernels import GPUKernel

_KiB = 1024


@dataclass(frozen=True)
class GPUWorkload:
    """One Table IV row: suite, citation-style input, kernel profile."""

    name: str
    suite: str
    input_size: str
    kernel: GPUKernel
    #: Paper's qualitative expectation for the dynamic allocator
    #: ("better", "worse", "neutral") — used by tests and the bench.
    expected_dynamic: str


def _hip(name, input_size, kernel, expected):
    return GPUWorkload(name, "hip-samples", input_size, kernel, expected)


def _hs(name, kernel, expected="worse"):
    return GPUWorkload(
        name,
        "HeteroSync",
        "10 Ld/St/thr/CS, 8 WGs/CU, 2 iters",
        kernel,
        expected,
    )


def _dnn(name, input_size, kernel, expected):
    return GPUWorkload(name, "DNNMark", input_size, kernel, expected)


#: HeteroSync shared profile: compute-light spinning kernels where the
#: lock, not the pipe, is the bottleneck.
def _hs_kernel(name, contention, sync_ops=20.0, per_cu=False, lds=0):
    return GPUKernel(
        name=name,
        num_workgroups=32,  # 8 WGs/CU x 4 CUs
        wavefronts_per_workgroup=1,
        vregs_per_wavefront=64,
        instructions_per_wavefront=800,
        memory_intensity=0.06,
        dependency_density=0.01,
        sync_ops_per_wavefront=sync_ops,
        critical_section_cycles=50.0,
        contention_coefficient=contention,
        per_cu_sync=per_cu,
        lds_bytes_per_workgroup=lds,
    )


_WORKLOAD_LIST: List[GPUWorkload] = [
    # ------------------------------------------------------- hip-samples
    _hip(
        "2dshfl",
        "4x4",
        GPUKernel(
            name="2dshfl",
            num_workgroups=1,
            instructions_per_wavefront=500,
            vregs_per_wavefront=32,
            memory_intensity=0.20,
            dependency_density=0.10,
        ),
        "neutral",
    ),
    _hip(
        "dynamic_shared",
        "16x16",
        GPUKernel(
            name="dynamic_shared",
            num_workgroups=4,
            instructions_per_wavefront=600,
            vregs_per_wavefront=32,
            lds_bytes_per_workgroup=4 * _KiB,
            memory_intensity=0.20,
            dependency_density=0.10,
        ),
        "neutral",
    ),
    _hip(
        "inline_asm",
        "1024x1024",
        GPUKernel(
            name="inline_asm",
            num_workgroups=4096,
            wavefronts_per_workgroup=4,
            vregs_per_wavefront=48,
            instructions_per_wavefront=1500,
            memory_intensity=0.35,
            dependency_density=0.0399,
        ),
        "better",
    ),
    _hip(
        "MatrixTranspose",
        "1024x1024",
        GPUKernel(
            name="MatrixTranspose",
            num_workgroups=4096,
            wavefronts_per_workgroup=4,
            vregs_per_wavefront=32,
            instructions_per_wavefront=1200,
            memory_intensity=0.40,
            dependency_density=0.03946,
        ),
        "better",
    ),
    _hip(
        "sharedMemory",
        "64x64",
        GPUKernel(
            name="sharedMemory",
            num_workgroups=16,
            wavefronts_per_workgroup=4,
            vregs_per_wavefront=64,
            instructions_per_wavefront=900,
            lds_bytes_per_workgroup=16 * _KiB,
            memory_intensity=0.127,
            dependency_density=0.019756,
        ),
        "neutral",
    ),
    _hip(
        "shfl",
        "4x4",
        GPUKernel(
            name="shfl",
            num_workgroups=1,
            instructions_per_wavefront=500,
            vregs_per_wavefront=32,
            memory_intensity=0.20,
            dependency_density=0.10,
        ),
        "neutral",
    ),
    _hip(
        "stream",
        "32x32",
        GPUKernel(
            name="stream",
            num_workgroups=64,
            wavefronts_per_workgroup=4,
            vregs_per_wavefront=48,
            instructions_per_wavefront=1000,
            memory_intensity=0.35,
            dependency_density=0.0301,
        ),
        "better",
    ),
    _hip(
        "unroll",
        "4x4",
        GPUKernel(
            name="unroll",
            num_workgroups=1,
            instructions_per_wavefront=800,
            vregs_per_wavefront=32,
            memory_intensity=0.20,
            dependency_density=0.10,
        ),
        "neutral",
    ),
    # -------------------------------------------------------- HeteroSync
    _hs("SpinMutexEBO", _hs_kernel("SpinMutexEBO", contention=0.075)),
    _hs("FAMutex", _hs_kernel("FAMutex", contention=0.11)),
    _hs("SleepMutex", _hs_kernel("SleepMutex", contention=0.04)),
    _hs(
        "SpinMutexEBOUniq",
        _hs_kernel("SpinMutexEBOUniq", contention=0.17, per_cu=True),
    ),
    _hs(
        "FAMutexUniq",
        _hs_kernel("FAMutexUniq", contention=0.25, per_cu=True),
    ),
    _hs(
        "SleepMutexUniq",
        _hs_kernel("SleepMutexUniq", contention=0.09, per_cu=True),
    ),
    _hs(
        "LFTreeBarrUniq",
        _hs_kernel(
            "LFTreeBarrUniq", contention=0.10, sync_ops=8.0, per_cu=True
        ),
    ),
    _hs(
        "LFTreeBarrUniqLocalExch",
        _hs_kernel(
            "LFTreeBarrUniqLocalExch",
            contention=0.06,
            sync_ops=8.0,
            per_cu=True,
            lds=8 * _KiB,
        ),
    ),
    # ----------------------------------------------------------- DNNMark
    _dnn(
        "fwd_bypass",
        "NCHW = 100, 1000, 1, 1",
        GPUKernel(
            name="fwd_bypass",
            num_workgroups=8,
            instructions_per_wavefront=1000,
            vregs_per_wavefront=48,
            memory_intensity=0.25,
            dependency_density=0.02,
        ),
        "neutral",
    ),
    _dnn(
        "bwd_bypass",
        "NCHW = 100, 1000, 1, 1",
        GPUKernel(
            name="bwd_bypass",
            num_workgroups=8,
            instructions_per_wavefront=1000,
            vregs_per_wavefront=48,
            memory_intensity=0.25,
            dependency_density=0.02,
        ),
        "neutral",
    ),
    _dnn(
        "fwd_bn",
        "NCHW = 100, 1000, 1, 1",
        GPUKernel(
            name="fwd_bn",
            num_workgroups=390,
            instructions_per_wavefront=1400,
            vregs_per_wavefront=96,
            memory_intensity=0.25,
            dependency_density=0.045714,
        ),
        "better",
    ),
    _dnn(
        "bwd_bn",
        "NCHW = 100, 1000, 1, 1",
        GPUKernel(
            name="bwd_bn",
            num_workgroups=390,
            instructions_per_wavefront=1500,
            vregs_per_wavefront=96,
            memory_intensity=0.25,
            dependency_density=0.045714,
        ),
        "better",
    ),
    _dnn(
        "fwd_composed_model",
        "NCHW = 32, 32, 3, 1",
        GPUKernel(
            name="fwd_composed_model",
            num_workgroups=12,
            instructions_per_wavefront=2000,
            vregs_per_wavefront=64,
            memory_intensity=0.20,
            dependency_density=0.03,
        ),
        "neutral",
    ),
    _dnn(
        "bwd_composed_model",
        "NCHW = 32, 32, 3, 1",
        GPUKernel(
            name="bwd_composed_model",
            num_workgroups=12,
            instructions_per_wavefront=2200,
            vregs_per_wavefront=64,
            memory_intensity=0.20,
            dependency_density=0.03,
        ),
        "neutral",
    ),
    _dnn(
        "fwd_pool",
        "NCHW = 100, 3, 256, 256",
        GPUKernel(
            name="fwd_pool",
            num_workgroups=4800,
            wavefronts_per_workgroup=2,
            vregs_per_wavefront=40,
            instructions_per_wavefront=1100,
            memory_intensity=0.25,
            dependency_density=0.018673,
        ),
        "worse",
    ),
    _dnn(
        "bwd_pool",
        "NCHW = 100, 3, 256, 256",
        GPUKernel(
            name="bwd_pool",
            num_workgroups=4800,
            wavefronts_per_workgroup=2,
            vregs_per_wavefront=40,
            instructions_per_wavefront=1200,
            memory_intensity=0.25,
            dependency_density=0.021023,
        ),
        "worse",
    ),
    _dnn(
        "fwd_softmax",
        "NCHW = 100, 1000, 1, 1",
        GPUKernel(
            name="fwd_softmax",
            num_workgroups=390,
            instructions_per_wavefront=1300,
            vregs_per_wavefront=64,
            memory_intensity=0.30,
            dependency_density=0.03517,
        ),
        "better",
    ),
    _dnn(
        "bwd_softmax",
        "NCHW = 100, 1000, 1, 1",
        GPUKernel(
            name="bwd_softmax",
            num_workgroups=390,
            instructions_per_wavefront=1350,
            vregs_per_wavefront=64,
            memory_intensity=0.30,
            dependency_density=0.03517,
        ),
        "better",
    ),
    # ------------------------------------------------- DOE proxy apps etc.
    GPUWorkload(
        name="HACC",
        suite="halo-finder",
        input_size="(forceTreeTest) 0.5 0.1 64 0.1 100 N 12 rcb",
        kernel=GPUKernel(
            name="HACC",
            num_workgroups=16,
            instructions_per_wavefront=3000,
            vregs_per_wavefront=128,
            memory_intensity=0.20,
            dependency_density=0.03,
        ),
        expected_dynamic="neutral",
    ),
    GPUWorkload(
        name="LULESH",
        suite="lulesh",
        input_size="1 iteration",
        kernel=GPUKernel(
            name="LULESH",
            num_workgroups=8,
            wavefronts_per_workgroup=2,
            instructions_per_wavefront=5000,
            vregs_per_wavefront=200,
            memory_intensity=0.22,
            dependency_density=0.02,
        ),
        expected_dynamic="neutral",
    ),
    GPUWorkload(
        name="PENNANT",
        suite="pennant",
        input_size="noh",
        kernel=GPUKernel(
            name="PENNANT",
            num_workgroups=1024,
            wavefronts_per_workgroup=2,
            instructions_per_wavefront=2000,
            vregs_per_wavefront=64,
            memory_intensity=0.30,
            dependency_density=0.04127,
        ),
        expected_dynamic="better",
    ),
]

GPU_WORKLOADS: Dict[str, GPUWorkload] = {
    workload.name: workload for workload in _WORKLOAD_LIST
}

WORKLOADS_BY_SUITE: Dict[str, List[str]] = {}
for _workload in _WORKLOAD_LIST:
    WORKLOADS_BY_SUITE.setdefault(_workload.suite, []).append(
        _workload.name
    )


def get_gpu_workload(name: str) -> GPUWorkload:
    if name not in GPU_WORKLOADS:
        raise NotFoundError(
            f"unknown GPU workload {name!r}; known: {sorted(GPU_WORKLOADS)}"
        )
    return GPU_WORKLOADS[name]
