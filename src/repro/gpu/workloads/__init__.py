"""The GPU workload suite (the paper's Table IV)."""

from repro.gpu.workloads.registry import (
    GPU_WORKLOADS,
    GPUWorkload,
    get_gpu_workload,
    WORKLOADS_BY_SUITE,
)

__all__ = [
    "GPU_WORKLOADS",
    "GPUWorkload",
    "get_gpu_workload",
    "WORKLOADS_BY_SUITE",
]
