"""Thread-safe metrics: counters, gauges and histograms with labels.

The model follows Prometheus: an instrument is identified by name and kind,
and carries one *series* per distinct label set (``runs_total{outcome=
"failed"}``).  Histograms use fixed bucket boundaries so that two identical
experiments produce byte-identical exports — determinism is part of the
reproducibility contract.

Every instrument has a no-op twin so instrumented code can call
``get_metrics().counter(...).inc()`` unconditionally; when telemetry is
disabled the whole chain is a handful of attribute lookups.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ValidationError

#: Default histogram boundaries (seconds): micro-benchmarks up to long runs.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValidationError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]


class Gauge:
    """A value that can go up and down (queue depth, miss rate, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]


class Histogram:
    """Cumulative-bucket distribution with fixed boundaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValidationError(
                "histogram buckets must be a sorted non-empty sequence"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = lock
        # per label set: (bucket counts incl. +Inf, sum, count)
        self._series: Dict[LabelKey, Dict[str, Any]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.setdefault(
                key,
                {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                },
            )
            index = len(self.buckets)  # +Inf slot
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series["counts"][index] += 1
            series["sum"] += float(value)
            series["count"] += 1

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            out = []
            for key, series in sorted(self._series.items()):
                cumulative = {}
                running = 0
                for bound, count in zip(self.buckets, series["counts"]):
                    running += count
                    cumulative[repr(bound)] = running
                cumulative["+Inf"] = series["count"]
                out.append(
                    {
                        "labels": dict(key),
                        "buckets": cumulative,
                        "sum": series["sum"],
                        "count": series["count"],
                    }
                )
            return out

    def absorb_sample(self, sample: Dict[str, Any]) -> None:
        """Fold one exported sample (cumulative buckets) into this
        histogram — the merge path for worker-process snapshots."""
        bounds = [b for b in sample["buckets"] if b != "+Inf"]
        if tuple(float(b) for b in bounds) != self.buckets:
            raise ValidationError(
                f"histogram {self.name!r}: cannot merge sample with "
                f"buckets {bounds} into {list(self.buckets)}"
            )
        raw = []
        previous = 0
        for bound in bounds:
            cumulative = sample["buckets"][bound]
            raw.append(cumulative - previous)
            previous = cumulative
        raw.append(sample["count"] - previous)
        key = _label_key(sample["labels"])
        with self._lock:
            series = self._series.setdefault(
                key,
                {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                },
            )
            for index, count in enumerate(raw):
                series["counts"][index] += count
            series["sum"] += float(sample["sum"])
            series["count"] += int(sample["count"])


class MetricsRegistry:
    """Get-or-create home of every instrument; the unit of export."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        if not name or name != name.strip():
            raise ValidationError(f"bad metric name {name!r}")
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, threading.Lock(), **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise ValidationError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, buckets=buckets
        )

    def collect(self) -> List[Dict[str, Any]]:
        """Deterministic snapshot of every instrument's series."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return [
            {
                "name": name,
                "kind": instrument.kind,
                "help": instrument.help,
                "samples": instrument.samples(),
            }
            for name, instrument in instruments
        ]

    def merge(self, collected: List[Dict[str, Any]]) -> None:
        """Fold a ``collect()``-shaped snapshot from another registry
        (typically a worker process's private session) into this one.

        Counters and histogram observations add; gauges take the
        incoming value (last writer wins, matching their semantics).
        """
        for metric in collected:
            name = metric["name"]
            kind = metric["kind"]
            help_text = metric.get("help", "")
            samples = metric.get("samples", [])
            if kind == "counter":
                instrument = self.counter(name, help_text)
                for sample in samples:
                    instrument.inc(sample["value"], **sample["labels"])
            elif kind == "gauge":
                instrument = self.gauge(name, help_text)
                for sample in samples:
                    instrument.set(sample["value"], **sample["labels"])
            elif kind == "histogram":
                if not samples:
                    continue
                bounds = tuple(
                    float(b)
                    for b in samples[0]["buckets"]
                    if b != "+Inf"
                )
                instrument = self.histogram(
                    name, help_text, buckets=bounds
                )
                for sample in samples:
                    instrument.absorb_sample(sample)
            else:
                raise ValidationError(
                    f"cannot merge metric {name!r} of unknown "
                    f"kind {kind!r}"
                )


class _NullInstrument:
    """Absorbs every instrument method; the disabled-telemetry fast path."""

    kind = "null"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def samples(self) -> List[Dict[str, Any]]:
        return []


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry twin returned by ``get_metrics()`` when disabled."""

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def collect(self) -> List[Dict[str, Any]]:
        return []

    def merge(self, collected: List[Dict[str, Any]]) -> None:
        pass


NULL_METRICS = NullMetrics()
