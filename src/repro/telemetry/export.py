"""Exporters: JSONL, Prometheus text format, Chrome trace JSON.

Each exporter consumes the *plain-dict* snapshot forms produced by
:meth:`MetricsRegistry.collect`, :meth:`Tracer.finished_spans` and
:meth:`EventLog.records` — never live objects — so the same functions
render both a live session and a snapshot rehydrated from the database.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.common.jsonutil import dumps


# ------------------------------------------------------------------- JSONL


def to_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """One canonical-JSON document per line."""
    return "\n".join(dumps(record) for record in records)


# -------------------------------------------------------------- Prometheus


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def metrics_to_prometheus(collected: List[Dict[str, Any]]) -> str:
    """Render a ``MetricsRegistry.collect()`` snapshot in the Prometheus
    text exposition format (one HELP/TYPE header per metric family)."""
    lines: List[str] = []
    for family in collected:
        name, kind = family["name"], family["kind"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if kind == "histogram":
                for bound, count in sample["buckets"].items():
                    le = dict(labels)
                    le["le"] = bound
                    lines.append(
                        f"{name}_bucket{_render_labels(le)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_render_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} "
                    f"{sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_render_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------ Chrome trace


def spans_to_chrome_trace(
    spans: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Convert finished spans to the Chrome ``chrome://tracing`` /
    Perfetto JSON object format (complete ``"X"`` events).

    Timestamps are rebased to the earliest span so the viewer opens at
    t=0; one ``tid`` per recording thread keeps nesting readable.
    """
    finished = [s for s in spans if s.get("end_wall") is not None]
    if not finished:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(s["start_wall"] for s in finished)
    threads = sorted({s.get("thread", "main") for s in finished})
    tid_of = {name: index + 1 for index, name in enumerate(threads)}
    events = []
    for span in sorted(
        finished, key=lambda s: (s["start_wall"], s["span_id"])
    ):
        args = {
            key: value
            for key, value in span.get("attributes", {}).items()
            if isinstance(value, (str, int, float, bool))
        }
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (span["start_wall"] - base) * 1e6,
                "dur": (span["duration"] or 0.0) * 1e6,
                "pid": 1,
                "tid": tid_of.get(span.get("thread", "main"), 0),
                "args": args,
            }
        )
    thread_names = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in sorted(tid_of.items(), key=lambda kv: kv[1])
    ]
    return {
        "traceEvents": thread_names + events,
        "displayTimeUnit": "ms",
    }


def chrome_trace_json(spans: List[Dict[str, Any]]) -> str:
    """The Chrome trace as a JSON string ready to write to a file."""
    return json.dumps(spans_to_chrome_trace(spans), indent=1)
