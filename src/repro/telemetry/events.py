"""The structured event log: an append-only record of what happened.

Where spans answer "where did the time go", events answer "what state
changes occurred, in what order": task transitions, retries, fault-model
verdicts, experiment milestones.  Each event carries a process-unique
sequence number (total order even when wall clocks tie), both clock kinds,
an event ``kind`` and free-form attributes.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.common.timeutil import iso_from_timestamp, wall_now


class EventLog:
    """Thread-safe append-only log of structured events."""

    def __init__(self):
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._sequence = 0

    def emit(self, kind: str, **attributes: Any) -> Dict[str, Any]:
        """Append one event and return its record."""
        wall = wall_now()
        with self._lock:
            self._sequence += 1
            event = {
                "seq": self._sequence,
                "kind": kind,
                "wall": wall,
                "wall_iso": iso_from_timestamp(wall),
                "mono": time.perf_counter(),
                "thread": threading.current_thread().name,
                "attributes": dict(attributes),
            }
            self._events.append(event)
        return event

    def absorb(
        self, records: List[Dict[str, Any]], **extra: Any
    ) -> List[Dict[str, Any]]:
        """Append events recorded elsewhere (a worker process's log).

        The incoming records keep their own wall/mono timestamps and
        thread names — those describe where the event actually happened
        — but are re-sequenced into this log's total order.  ``extra``
        attributes (e.g. ``worker="procpool-worker-2"``) are stamped
        onto every absorbed event for attribution.
        """
        absorbed = []
        with self._lock:
            for record in records:
                self._sequence += 1
                event = dict(record)
                event["seq"] = self._sequence
                attributes = dict(record.get("attributes", {}))
                attributes.update(extra)
                event["attributes"] = attributes
                self._events.append(event)
                absorbed.append(dict(event))
        return absorbed

    def records(
        self, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Snapshot of events (optionally filtered by kind), in order."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        return [dict(e) for e in events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullEventLog:
    """Event log twin used while telemetry is disabled."""

    def emit(self, kind: str, **attributes: Any) -> None:
        return None

    def absorb(
        self, records: List[Dict[str, Any]], **extra: Any
    ) -> List[Dict[str, Any]]:
        return []

    def records(
        self, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


NULL_EVENT_LOG = NullEventLog()
