"""Archiving telemetry in the database — the reproducibility contract.

A run's trace must be explainable *from the database alone*, the same way
its statistics are: the recorder serializes a telemetry snapshot (spans,
metrics, events) to a JSON blob in the database's file store and indexes
it in a ``telemetry`` collection keyed by its owner (a run id or an
experiment id).  ``rehydrate`` reverses the trip with no live session.

The recorder is deliberately duck-typed over the database facade (anything
with ``upload_file`` / ``download_file`` and a ``database`` of collections,
i.e. :class:`repro.art.db.ArtifactDB`) so this package stays beside
``common`` in the layering — it never imports ``art`` or ``db``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import NotFoundError
from repro.common.ids import new_uuid
from repro.common.jsonutil import dumps, loads
from repro.common.timeutil import iso_now

#: Collection indexing archived telemetry blobs by owner document.
TELEMETRY = "telemetry"

#: Schema version stamped into every blob.
SNAPSHOT_VERSION = 1


def snapshot(
    spans: Optional[List[Dict[str, Any]]] = None,
    metrics: Optional[List[Dict[str, Any]]] = None,
    events: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Bundle already-exported telemetry into the archival form."""
    return {
        "version": SNAPSHOT_VERSION,
        "spans": list(spans or []),
        "metrics": list(metrics or []),
        "events": list(events or []),
    }


def archive_telemetry(
    db,
    owner_id: str,
    data: Dict[str, Any],
    kind: str = "run",
) -> str:
    """Store a snapshot as a blob + index document; returns the doc id.

    ``owner_id`` is the run or experiment the snapshot belongs to; the
    blob sits in the same file store as the run's ``stats.txt``.
    """
    blob_id = db.upload_file(
        dumps(data).encode("utf-8"),
        filename=f"telemetry-{owner_id}.json",
    )
    doc_id = new_uuid()
    db.database.collection(TELEMETRY).insert_one(
        {
            "_id": doc_id,
            "owner": owner_id,
            "kind": kind,
            "blob_id": blob_id,
            "spans": len(data.get("spans", [])),
            "events": len(data.get("events", [])),
            "created_at_wall": iso_now(),
        }
    )
    return doc_id


def rehydrate_telemetry(db, owner_id: str) -> Dict[str, Any]:
    """Load the (latest) archived snapshot for ``owner_id`` from the
    database alone.  Raises :class:`NotFoundError` when none exists."""
    docs = db.database.collection(TELEMETRY).find({"owner": owner_id})
    if not docs:
        raise NotFoundError(
            f"no telemetry archived for owner {owner_id!r}"
        )
    doc = sorted(docs, key=lambda d: d["created_at_wall"])[-1]
    data = loads(db.download_file(doc["blob_id"]).decode("utf-8"))
    data.setdefault("spans", [])
    data.setdefault("metrics", [])
    data.setdefault("events", [])
    return data


def merge_worker_telemetry(
    buffer: Optional[Dict[str, Any]],
    worker: Optional[str] = None,
) -> None:
    """Fold a worker process's telemetry buffer into the live session.

    ``buffer`` is the ``{"metrics": ..., "events": ...}`` dict a process
    pool worker records in its private session and ships back inside its
    result (processes share no registries with the parent, so merging on
    drain is the only way their observations reach the archived
    snapshot).  No-op when the buffer is empty or telemetry is disabled
    in the parent — the null twins absorb the calls.
    """
    if not buffer:
        return
    # Imported lazily: the package __init__ imports this module.
    from repro import telemetry

    telemetry.get_metrics().merge(buffer.get("metrics") or [])
    extra = {} if worker is None else {"worker": worker}
    telemetry.get_event_log().absorb(buffer.get("events") or [], **extra)


def telemetry_owners(db, kind: Optional[str] = None) -> List[str]:
    """Owner ids with archived telemetry (optionally by kind)."""
    query = {} if kind is None else {"kind": kind}
    docs = db.database.collection(TELEMETRY).find(query)
    return sorted({doc["owner"] for doc in docs})
