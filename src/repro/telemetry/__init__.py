"""Observability for reproducible experiments: tracing, metrics, events.

The paper's contract is that the database alone must explain an experiment
after the fact.  Results (stats blobs) cover *what* came out; this package
covers *how it happened*: where wall-clock time went (:mod:`tracing`),
what was counted (:mod:`metrics`), which state transitions occurred
(:mod:`events`), rendered by :mod:`export` (JSONL, Prometheus text,
Chrome trace) and archived next to the stats by :mod:`recorder`.

Telemetry is **off by default and zero-cost when off**: the module-level
accessors return shared no-op twins, so instrumented code in the
scheduler, simulator and art layers calls them unconditionally.  Enabling
is explicit and process-wide::

    from repro import telemetry
    session = telemetry.enable()
    ...  # run an experiment
    telemetry.disable()

or scoped::

    with telemetry.session() as s:
        experiment.launch(...)

Telemetry never feeds back into the simulation: simulated time and
statistics are bit-identical with it on or off (asserted by the tests).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.telemetry.events import NULL_EVENT_LOG, EventLog, NullEventLog
from repro.telemetry.export import (
    chrome_trace_json,
    metrics_to_prometheus,
    spans_to_chrome_trace,
    to_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.telemetry.recorder import (
    TELEMETRY,
    archive_telemetry,
    merge_worker_telemetry,
    rehydrate_telemetry,
    snapshot,
    telemetry_owners,
)
from repro.telemetry.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
)


class TelemetrySession:
    """One enabled recording: a tracer + metrics registry + event log."""

    def __init__(self):
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.events = EventLog()

    def snapshot(self, spans=None) -> dict:
        """Archival form of everything recorded so far (optionally with a
        restricted span set, e.g. one run's subtree)."""
        return snapshot(
            spans=self.tracer.finished_spans() if spans is None else spans,
            metrics=self.metrics.collect(),
            events=self.events.records(),
        )


_lock = threading.Lock()
_session: Optional[TelemetrySession] = None


def enable(
    session: Optional[TelemetrySession] = None,
) -> TelemetrySession:
    """Install (or replace) the process-wide telemetry session."""
    global _session
    with _lock:
        _session = session or TelemetrySession()
        return _session


def disable() -> None:
    """Drop the session; accessors return the no-op twins again."""
    global _session
    with _lock:
        _session = None


def enabled() -> bool:
    return _session is not None


def current_session() -> Optional[TelemetrySession]:
    return _session


@contextmanager
def session(
    existing: Optional[TelemetrySession] = None,
) -> Iterator[TelemetrySession]:
    """Enable telemetry for a ``with`` block, restoring the prior state."""
    previous = _session
    active = enable(existing)
    try:
        yield active
    finally:
        with _lock:
            globals()["_session"] = previous


def get_tracer() -> Union[Tracer, NullTracer]:
    active = _session
    return active.tracer if active is not None else NULL_TRACER


def get_metrics() -> Union[MetricsRegistry, NullMetrics]:
    active = _session
    return active.metrics if active is not None else NULL_METRICS


def get_event_log() -> Union[EventLog, NullEventLog]:
    active = _session
    return active.events if active is not None else NULL_EVENT_LOG


__all__ = [
    # session management
    "TelemetrySession",
    "enable",
    "disable",
    "enabled",
    "current_session",
    "session",
    "get_tracer",
    "get_metrics",
    "get_event_log",
    # tracing
    "Tracer",
    "Span",
    "SpanContext",
    "NullTracer",
    "NullSpan",
    "NULL_TRACER",
    "NULL_SPAN",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    # events
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    # export
    "to_jsonl",
    "metrics_to_prometheus",
    "spans_to_chrome_trace",
    "chrome_trace_json",
    # recorder
    "snapshot",
    "archive_telemetry",
    "merge_worker_telemetry",
    "rehydrate_telemetry",
    "telemetry_owners",
    "TELEMETRY",
]
