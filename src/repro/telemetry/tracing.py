"""Spans and the tracer: where wall-clock time goes, as a tree.

A :class:`Span` is one timed operation (an experiment, a run, a boot
phase).  Spans nest: within a thread the tracer keeps a thread-local stack
so ``tracer.span(...)`` blocks pick up their parent implicitly; *across*
threads a :class:`SpanContext` (trace id + span id, nothing else) is passed
explicitly — it travels inside the scheduler's ``TaskMessage``, because
thread-locals do not cross the broker.

Spans record both wall-clock (``timeutil.wall_now``, portable, archived)
and monotonic (``time.perf_counter``, duration-accurate) timestamps.  The
tracer accumulates finished spans; exporters and the recorder read them as
plain dicts.  Wall-clock access goes through ``repro.common.timeutil`` —
the sanctioned choke point the determinism lint rules whitelist — never
through raw ``time.time()``.
"""

from __future__ import annotations

import collections
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.common.ids import new_uuid
from repro.common.timeutil import iso_from_timestamp, wall_now


class SpanContext:
    """The minimal, serializable handle linking a child to its parent."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(
        cls, data: Optional[Dict[str, str]]
    ) -> Optional["SpanContext"]:
        if not data:
            return None
        return cls(data["trace_id"], data["span_id"])


ParentLike = Union["Span", SpanContext, Dict[str, str], None]


class Span:
    """One timed operation; usable as a context manager via the tracer."""

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_uuid()
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.thread = threading.current_thread().name
        self.start_wall = wall_now()
        self.start_mono = time.perf_counter()
        self.end_wall: Optional[float] = None
        self.end_mono: Optional[float] = None

    # ------------------------------------------------------------- content

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def ended(self) -> bool:
        return self.end_mono is not None

    @property
    def duration(self) -> Optional[float]:
        """Monotonic duration in seconds, once ended."""
        if self.end_mono is None:
            return None
        return self.end_mono - self.start_mono

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def end(self) -> None:
        if self.ended:
            return
        self.end_wall = wall_now()
        self.end_mono = time.perf_counter()
        self._tracer._finish(self)

    # ------------------------------------------------------ context manager

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        self.end()

    # -------------------------------------------------------------- export

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start_wall": self.start_wall,
            "start_wall_iso": iso_from_timestamp(self.start_wall),
            "end_wall": self.end_wall,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Creates spans, tracks per-thread nesting, collects finished spans."""

    def __init__(self):
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._local = threading.local()

    # ------------------------------------------------------------ creation

    def span(
        self,
        name: str,
        parent: ParentLike = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Start a span; use as ``with tracer.span("boot") as s:``.

        ``parent`` may be a :class:`Span`, a :class:`SpanContext`, or the
        dict form carried in a :class:`TaskMessage`; when omitted, the
        innermost open span on *this* thread is the parent.
        """
        parent_ctx = self._resolve_parent(parent)
        if parent_ctx is None:
            trace_id, parent_id = new_uuid(), None
        else:
            trace_id, parent_id = parent_ctx.trace_id, parent_ctx.span_id
        return Span(self, name, trace_id, parent_id, attributes)

    def _resolve_parent(self, parent: ParentLike) -> Optional[SpanContext]:
        if parent is None:
            current = self.current_span()
            return current.context if current is not None else None
        if isinstance(parent, Span):
            return parent.context
        if isinstance(parent, SpanContext):
            return parent
        return SpanContext.from_dict(parent)

    def current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_context_dict(self) -> Optional[Dict[str, str]]:
        """The active span's context in wire (dict) form, or None."""
        current = self.current_span()
        return current.context.to_dict() if current is not None else None

    @contextmanager
    def activate(self, parent: ParentLike) -> Iterator[None]:
        """Make ``parent`` the implicit parent on *this* thread.

        Used by executors whose worker threads receive a span context
        from another thread (e.g. the pool backend): inside the block,
        new spans nest under the remote parent without an extra
        intermediate span."""
        ctx = self._resolve_parent(parent)
        if ctx is None:
            yield
            return
        remote = _RemoteSpan(ctx)
        self._push(remote)
        try:
            yield
        finally:
            self._pop(remote)

    # ----------------------------------------------------------- internals

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # -------------------------------------------------------------- export

    def finished_spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [span.to_dict() for span in self._finished]

    def subtree(self, root_span_id: str) -> List[Dict[str, Any]]:
        """The finished span rooted at ``root_span_id`` plus every finished
        descendant, root first (breadth-first, completion order within a
        level)."""
        spans = self.finished_spans()
        children: Dict[str, List[Dict[str, Any]]] = {}
        by_id: Dict[str, Dict[str, Any]] = {}
        for span in spans:
            by_id[span["span_id"]] = span
            children.setdefault(span["parent_id"], []).append(span)
        out: List[Dict[str, Any]] = []
        # deque, not list.pop(0): popping the head of a list is O(n), and
        # archived experiment traces reach hundreds of thousands of spans.
        frontier = collections.deque([root_span_id])
        while frontier:
            span_id = frontier.popleft()
            span = by_id.get(span_id)
            if span is not None:
                out.append(span)
            frontier.extend(
                child["span_id"] for child in children.get(span_id, [])
            )
        return out


class _RemoteSpan:
    """Stack placeholder for a parent that lives on another thread; only
    its context matters."""

    __slots__ = ("_context",)

    def __init__(self, context: SpanContext):
        self._context = context

    @property
    def context(self) -> SpanContext:
        return self._context


class NullSpan:
    """Shared no-op span; every operation returns immediately."""

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    attributes: Dict[str, Any] = {}
    ended = True
    duration = None

    @property
    def context(self) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> "NullSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {}


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer twin returned by ``get_tracer()`` when telemetry is off."""

    def span(
        self,
        name: str,
        parent: ParentLike = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> NullSpan:
        return NULL_SPAN

    def current_span(self) -> None:
        return None

    def current_context_dict(self) -> None:
        return None

    @contextmanager
    def activate(self, parent: ParentLike) -> "Iterator[None]":
        yield

    def finished_spans(self) -> List[Dict[str, Any]]:
        return []

    def subtree(self, root_span_id: str) -> List[Dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()
