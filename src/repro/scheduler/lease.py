"""Task leases: at-least-once delivery for crash-prone workers.

A worker that dequeues a message holds a *lease* on it — a claim with a
deadline.  Live workers renew the deadline by heartbeating while the task
runs; if the worker dies (or wedges hard enough to stop heartbeating), the
lease expires and the scheduler's reaper reclaims the message, either
re-publishing it for another worker or dead-lettering it once its
redelivery budget is spent.  This is the standard visibility-timeout
contract of SQS/Pub-Sub brokers, reduced to one process: ``drain()`` can
no longer hang forever on a task whose worker no longer exists.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scheduler.broker import TaskMessage

#: Default time a worker may go silent before its task is reclaimed.
DEFAULT_LEASE_TTL = 5.0


@dataclass
class Lease:
    """One worker's claim on one in-flight task message."""

    message: "TaskMessage"
    worker: str
    deadline: float
    acquired_at: float

    @property
    def task_id(self) -> str:
        return self.message.task_id


class LeaseManager:
    """Thread-safe registry of in-flight task leases."""

    def __init__(self, ttl: float = DEFAULT_LEASE_TTL):
        if ttl <= 0:
            raise ValidationError("lease ttl must be positive")
        self.ttl = ttl
        self._lock = threading.Lock()
        self._leases: Dict[str, Lease] = {}

    def acquire(
        self,
        message: "TaskMessage",
        worker: str,
        ttl: Optional[float] = None,
    ) -> Lease:
        """Claim a message for ``worker``; counts one delivery."""
        now = time.monotonic()
        lease = Lease(
            message=message,
            worker=worker,
            deadline=now + (self.ttl if ttl is None else ttl),
            acquired_at=now,
        )
        with self._lock:
            message.deliveries += 1
            self._leases[message.task_id] = lease
        return lease

    def heartbeat(self, task_id: str, ttl: Optional[float] = None) -> bool:
        """Renew a lease; returns False when it no longer exists (the
        reaper already reclaimed it, or the task finished)."""
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None:
                return False
            lease.deadline = time.monotonic() + (
                self.ttl if ttl is None else ttl
            )
            return True

    def release(self, task_id: str) -> Optional[Lease]:
        """Drop a lease (task finished); idempotent."""
        with self._lock:
            return self._leases.pop(task_id, None)

    def expired(self, now: Optional[float] = None) -> List[Lease]:
        """Pop and return every lease past its deadline."""
        now = time.monotonic() if now is None else now
        with self._lock:
            dead = [
                lease
                for lease in self._leases.values()
                if lease.deadline <= now
            ]
            for lease in dead:
                del self._leases[lease.task_id]
        return sorted(dead, key=lambda lease: lease.acquired_at)

    def holder(self, task_id: str) -> Optional[str]:
        with self._lock:
            lease = self._leases.get(task_id)
            return None if lease is None else lease.worker

    def active(self) -> int:
        with self._lock:
            return len(self._leases)
