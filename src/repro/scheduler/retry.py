"""Retry policies with deterministic backoff.

A :class:`RetryPolicy` answers three questions about a failed task attempt:
*should* it be retried (budget left, exception class retryable), *when*
(exponential backoff), and *exactly* when (seeded jitter).  Jitter is drawn
from :mod:`repro.common.rng` streams keyed by ``(seed, key, attempt)``, so
a retry schedule is a pure function of the policy and the task key — two
replays of the same experiment produce bit-identical backoff sequences,
which is what lets a chaos run be reproduced from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Type

from repro.common.errors import ValidationError
from repro.common.rng import RngStream


@dataclass
class TaskOutcome:
    """Classification of one task attempt.

    ``kind`` is ``"success"``, ``"timeout"`` or ``"error"``; ``error`` is
    the human-readable text stored in the result backend and ``exception``
    the original object (when available) so policies can match on type.
    """

    kind: str
    value: Any = None
    error: Optional[str] = None
    exception: Optional[BaseException] = None


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed attempts of a task are retried.

    ``base_delay`` of zero — the default — keeps retries immediate, which
    preserves the scheduler's historical behaviour and keeps unit tests
    fast; campaigns that hammer shared infrastructure opt into backoff.
    """

    max_retries: int = 0
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValidationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError("jitter must be within [0, 1]")

    # ----------------------------------------------------------- decisions

    def should_retry(
        self, retries_used: int, exception: Optional[BaseException]
    ) -> bool:
        """Whether a failed attempt gets another go."""
        if retries_used >= self.max_retries:
            return False
        if exception is None:
            # The attempt died without surfacing an exception object
            # (e.g. its thread was killed); treat as transient.
            return True
        return isinstance(exception, self.retry_on)

    # ------------------------------------------------------------ schedule

    def backoff(self, key: str, attempt: int) -> float:
        """Delay in seconds before retry number ``attempt`` (1-based).

        Deterministic: the jitter stream is derived from
        ``(seed, key, attempt)``, never from wall clock or global RNG
        state.
        """
        if attempt < 1:
            raise ValidationError("attempt numbers are 1-based")
        if self.base_delay <= 0:
            return 0.0
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if self.jitter <= 0:
            return delay
        spread = self.jitter * delay
        stream = RngStream(self.seed, "retry", key, str(attempt))
        return max(0.0, delay + stream.uniform(-spread, spread))

    def schedule(self, key: str) -> List[float]:
        """The full backoff sequence for ``key`` — one delay per retry."""
        return [
            self.backoff(key, attempt)
            for attempt in range(1, self.max_retries + 1)
        ]
