"""Task lifecycle states, mirroring Celery's state vocabulary."""

from __future__ import annotations

import enum


class TaskState(str, enum.Enum):
    """States a task moves through from submission to completion."""

    PENDING = "PENDING"
    STARTED = "STARTED"
    RETRY = "RETRY"
    SUCCESS = "SUCCESS"
    FAILURE = "FAILURE"
    TIMEOUT = "TIMEOUT"
    REVOKED = "REVOKED"
    #: Retry/redelivery budget exhausted; the task is parked with a
    #: dead-letter record in the result backend for post-mortem triage.
    DEAD_LETTER = "DEAD_LETTER"
    #: Evicted from the queue under overload to admit higher-priority
    #: work; the submission is recorded in the admission controller's
    #: overflow log for later replay.
    SHED = "SHED"

    @property
    def is_terminal(self) -> bool:
        """Whether no further transitions can happen from this state."""
        return self in (
            TaskState.SUCCESS,
            TaskState.FAILURE,
            TaskState.TIMEOUT,
            TaskState.REVOKED,
            TaskState.DEAD_LETTER,
            TaskState.SHED,
        )


#: Transitions the result backend will accept; anything else is a bug.
ALLOWED_TRANSITIONS = {
    # PENDING -> DEAD_LETTER: a message can exhaust its redelivery budget
    # without ever starting when every worker that picks it up crashes
    # before the STARTED transition.
    # PENDING -> SHED: a still-queued message can be evicted under
    # overload to make room for higher-priority work.
    TaskState.PENDING: {
        TaskState.STARTED,
        TaskState.REVOKED,
        TaskState.DEAD_LETTER,
        TaskState.SHED,
    },
    TaskState.STARTED: {
        TaskState.SUCCESS,
        TaskState.FAILURE,
        TaskState.TIMEOUT,
        TaskState.RETRY,
        TaskState.DEAD_LETTER,
    },
    # RETRY -> DEAD_LETTER covers a reclaimed (lease-expired) task whose
    # redelivery budget ran out before any worker picked it back up.
    # RETRY -> SHED mirrors PENDING -> SHED for reclaimed messages
    # waiting in the queue for redelivery.
    TaskState.RETRY: {
        TaskState.STARTED,
        TaskState.REVOKED,
        TaskState.DEAD_LETTER,
        TaskState.SHED,
    },
    TaskState.SUCCESS: set(),
    TaskState.FAILURE: set(),
    TaskState.TIMEOUT: set(),
    TaskState.REVOKED: set(),
    TaskState.DEAD_LETTER: set(),
    TaskState.SHED: set(),
}


def can_transition(src: TaskState, dst: TaskState) -> bool:
    """Return True when the state machine permits ``src -> dst``."""
    return dst in ALLOWED_TRANSITIONS[src]
