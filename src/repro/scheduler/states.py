"""Task lifecycle states, mirroring Celery's state vocabulary."""

from __future__ import annotations

import enum


class TaskState(str, enum.Enum):
    """States a task moves through from submission to completion."""

    PENDING = "PENDING"
    STARTED = "STARTED"
    RETRY = "RETRY"
    SUCCESS = "SUCCESS"
    FAILURE = "FAILURE"
    TIMEOUT = "TIMEOUT"
    REVOKED = "REVOKED"

    @property
    def is_terminal(self) -> bool:
        """Whether no further transitions can happen from this state."""
        return self in (
            TaskState.SUCCESS,
            TaskState.FAILURE,
            TaskState.TIMEOUT,
            TaskState.REVOKED,
        )


#: Transitions the result backend will accept; anything else is a bug.
ALLOWED_TRANSITIONS = {
    TaskState.PENDING: {
        TaskState.STARTED,
        TaskState.REVOKED,
    },
    TaskState.STARTED: {
        TaskState.SUCCESS,
        TaskState.FAILURE,
        TaskState.TIMEOUT,
        TaskState.RETRY,
    },
    TaskState.RETRY: {TaskState.STARTED, TaskState.REVOKED},
    TaskState.SUCCESS: set(),
    TaskState.FAILURE: set(),
    TaskState.TIMEOUT: set(),
    TaskState.REVOKED: set(),
}


def can_transition(src: TaskState, dst: TaskState) -> bool:
    """Return True when the state machine permits ``src -> dst``."""
    return dst in ALLOWED_TRANSITIONS[src]
