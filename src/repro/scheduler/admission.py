"""Admission control and overload protection for the scheduler.

The broker used to be an unbounded FIFO: every ``apply_async`` was
accepted unconditionally, so one bulk sweep could starve interactive
runs, exhaust memory, and melt the worker pool with no pushback.  This
module is the protection layer in front of it:

- :class:`LeveledQueue` — a *bounded* three-level priority queue
  (interactive > default > bulk, FIFO within a level) with a single
  locked size counter, so queue depth is exact, capped, and reportable;
- :class:`TokenBucket` / :class:`TenantLimits` — deterministic
  per-tenant rate limiting and quota ledgers (max queued + max
  in-flight), driven by an *injectable clock* so tests and chaos
  replays stay seeded-deterministic;
- :class:`CircuitBreaker` — a per-task-name breaker that opens after N
  consecutive dead-letters, fails submissions fast while open, and
  probes with a single half-open task after a seeded backoff;
- :class:`AdmissionController` — the policy front end the app consults
  on every submission.  On saturation it sheds bulk work first: a shed
  or door-rejected bulk submission is parked in a dead-letter-style
  **overflow record** (for later replay) and the caller gets a
  structured :class:`AdmissionRejected` carrying ``retry_after`` —
  never a silent drop, never an indefinite block.

Every decision is appended to an in-order decision log; with the clock
injected, two identically-seeded runs produce identical
accept/reject/shed sequences, which is what the chaos suite replays.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro import chaos
from repro.common.errors import ReproError, ValidationError
from repro.scheduler.retry import RetryPolicy
from repro.telemetry import get_event_log, get_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scheduler.broker import TaskMessage

#: Priority names in descending urgency; queue level = tuple index.
PRIORITIES = ("interactive", "default", "bulk")

#: Priority name -> queue level (0 is served first).
PRIORITY_LEVEL = {name: level for level, name in enumerate(PRIORITIES)}

#: The level shed first under saturation (and never allowed to displace
#: other work).
BULK_LEVEL = PRIORITY_LEVEL["bulk"]

#: Default cap on parked overflow records; beyond it, rejections still
#: carry ``retry_after`` but are no longer parked for replay.
DEFAULT_OVERFLOW_LIMIT = 1024

#: Circuit-breaker states (also the ``breaker_state`` gauge values).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"
BREAKER_STATE_VALUE = {
    BREAKER_CLOSED: 0,
    BREAKER_HALF_OPEN: 1,
    BREAKER_OPEN: 2,
}


def priority_level(priority: str) -> int:
    """Validate a priority name and return its queue level."""
    if priority not in PRIORITY_LEVEL:
        raise ValidationError(
            f"unknown priority {priority!r}; one of {PRIORITIES}"
        )
    return PRIORITY_LEVEL[priority]


class AdmissionRejected(ReproError):
    """A submission the admission controller refused to enqueue.

    Structured so callers can back off instead of guessing: ``reason``
    is one of ``breaker_open`` / ``rate_limited`` / ``tenant_quota`` /
    ``queue_full``, ``retry_after`` is the seconds the caller should
    wait before resubmitting, and ``parked`` reports whether the
    submission was recorded in the overflow log for later replay.
    """

    def __init__(
        self,
        reason: str,
        task_name: str,
        tenant: str,
        priority: str,
        retry_after: float,
        parked: bool = False,
    ):
        self.reason = reason
        self.task_name = task_name
        self.tenant = tenant
        self.priority = priority
        self.retry_after = retry_after
        self.parked = parked
        parked_note = "; parked in overflow" if parked else ""
        super().__init__(
            f"submission of {task_name!r} rejected ({reason}) for "
            f"tenant {tenant!r} priority {priority!r}; retry after "
            f"{retry_after:.3f}s{parked_note}"
        )


# --------------------------------------------------------------- queue


class LeveledQueue:
    """Bounded multi-level priority queue of task messages.

    Three FIFO lanes (interactive / default / bulk); ``get`` always
    serves the most urgent non-empty lane.  ``limit`` caps the *total*
    resident depth — ``put`` refuses instead of blocking, so the
    admission layer above decides whether to shed, reject, or displace.
    Size is a single counter under the lock, not a ``qsize`` guess.
    """

    def __init__(self, limit: Optional[int] = None):
        if limit is not None and limit < 1:
            raise ValidationError("queue limit must be >= 1 (or None)")
        self.limit = limit
        self._cond = threading.Condition()
        self._levels: Tuple[deque, ...] = tuple(
            deque() for _ in PRIORITIES
        )
        self._size = 0

    def put(self, message: "TaskMessage", force: bool = False) -> bool:
        """Append to the message's priority lane.

        Returns False when the queue is at its bound (and ``force`` is
        not set); redeliveries publish with ``force=True`` because a
        reclaimed message must never be lost to backpressure.
        """
        level = priority_level(message.priority)
        with self._cond:
            if (
                not force
                and self.limit is not None
                and self._size >= self.limit
            ):
                return False
            self._levels[level].append(message)
            self._size += 1
            self._cond.notify()
        self._report_depth()
        return True

    def get(
        self, timeout: Optional[float] = None
    ) -> Optional["TaskMessage"]:
        """Pop the most urgent message; None on empty/timeout.

        ``timeout=None`` is non-blocking, matching the broker's
        historical ``get_nowait`` contract.
        """
        with self._cond:
            if timeout is None:
                message = self._pop_locked()
            else:
                deadline = time.monotonic() + timeout
                while True:
                    message = self._pop_locked()
                    if message is not None:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(timeout=remaining)
        if message is not None:
            self._report_depth()
        return message

    def _pop_locked(self) -> Optional["TaskMessage"]:
        for lane in self._levels:
            if lane:
                self._size -= 1
                return lane.popleft()
        return None

    def evict_lower(self, level: int) -> Optional["TaskMessage"]:
        """Remove and return the *newest* message of the lowest-priority
        non-empty lane strictly below ``level``'s urgency.

        This is the displacement primitive: when the queue is full and
        an interactive submission arrives, the freshest bulk message is
        shed to make room (newest first, so the oldest — closest to
        running — keeps its place in line).
        """
        with self._cond:
            for lane_level in range(len(self._levels) - 1, level, -1):
                lane = self._levels[lane_level]
                if lane:
                    self._size -= 1
                    message = lane.pop()
                    break
            else:
                return None
        self._report_depth()
        return message

    def depth(self) -> Dict[str, int]:
        """Exact per-level resident counts (one lock, one snapshot)."""
        with self._cond:
            return {
                name: len(self._levels[level])
                for name, level in PRIORITY_LEVEL.items()
            }

    def _report_depth(self) -> None:
        gauge = get_metrics().gauge(
            "queue_depth",
            "Messages resident in the broker queue, per priority level",
        )
        for name, count in self.depth().items():
            gauge.set(count, level=name)

    def __len__(self) -> int:
        with self._cond:
            return self._size


# --------------------------------------------------------- rate limits


@dataclass(frozen=True)
class TenantLimits:
    """Per-tenant admission limits; ``None`` disables a dimension.

    ``rate`` is sustained submissions/second through a token bucket of
    ``burst`` capacity (defaulting to ``rate``); ``max_queued`` caps
    the tenant's backlog and ``max_inflight`` its concurrently-running
    tasks (enforced at dispatch: excess messages wait in queue).
    """

    rate: Optional[float] = None
    burst: Optional[float] = None
    max_queued: Optional[int] = None
    max_inflight: Optional[int] = None

    def __post_init__(self):
        if self.rate is not None and self.rate <= 0:
            raise ValidationError("rate must be positive (or None)")
        if self.burst is not None and self.burst < 1:
            raise ValidationError("burst must be >= 1 (or None)")
        if self.max_queued is not None and self.max_queued < 1:
            raise ValidationError("max_queued must be >= 1 (or None)")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValidationError("max_inflight must be >= 1 (or None)")


class TokenBucket:
    """Deterministic token bucket: a pure function of the ``now``
    values it is fed (the caller injects the clock), never of wall
    time, so replays with a scripted clock reproduce every decision."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst < 1:
            raise ValidationError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._updated is None:
            self._updated = now
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, now: float) -> bool:
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until one token will be available."""
        self._refill(now)
        deficit = 1.0 - self._tokens
        return deficit / self.rate if deficit > 0 else 0.0


# ------------------------------------------------------------- breaker


@dataclass
class _BreakerEntry:
    """Mutable per-task-name breaker bookkeeping."""

    state: str = BREAKER_CLOSED
    failures: int = 0
    trips: int = 0
    open_until: float = 0.0
    probe_task_id: Optional[str] = None


class CircuitBreaker:
    """Per-task-name circuit breaker over dead-letter outcomes.

    A task name that dead-letters ``threshold`` times consecutively
    *opens*: submissions fail fast with ``breaker_open`` instead of
    burning worker time and redeliveries on a poisoned job class.
    After a seeded backoff (``backoff.backoff(name, trips)`` — the same
    deterministic machinery task retries use) the breaker goes
    *half-open* and admits exactly one probe; a successful probe closes
    it, any other terminal outcome of the probe re-opens it with the
    next backoff step.  ``threshold=None`` disables the breaker.
    """

    def __init__(
        self,
        threshold: Optional[int] = None,
        backoff: Optional[RetryPolicy] = None,
        seed: int = 0,
    ):
        if threshold is not None and threshold < 1:
            raise ValidationError(
                "breaker threshold must be >= 1 (or None to disable)"
            )
        self.threshold = threshold
        self.backoff = backoff or RetryPolicy(
            base_delay=0.5,
            multiplier=2.0,
            max_delay=30.0,
            jitter=0.1,
            seed=seed,
        )
        self._entries: Dict[str, _BreakerEntry] = {}

    def _entry(self, name: str) -> _BreakerEntry:
        if name not in self._entries:
            self._entries[name] = _BreakerEntry()
        return self._entries[name]

    def allow(
        self, name: str, task_id: str, now: float
    ) -> Tuple[bool, float]:
        """May a submission of ``name`` enter? Returns (allowed,
        retry_after); an open->half-open transition claims ``task_id``
        as the probe."""
        if self.threshold is None:
            return True, 0.0
        entry = self._entry(name)
        if entry.state == BREAKER_CLOSED:
            return True, 0.0
        if entry.state == BREAKER_OPEN:
            if now >= entry.open_until:
                entry.state = BREAKER_HALF_OPEN
                entry.probe_task_id = task_id
                return True, 0.0
            return False, entry.open_until - now
        # Half-open: one probe at a time.
        if entry.probe_task_id is None:
            entry.probe_task_id = task_id
            return True, 0.0
        return False, max(0.0, entry.open_until - now)

    def note_terminal(
        self,
        name: str,
        task_id: str,
        success: bool,
        dead_letter: bool,
        now: float,
    ) -> Optional[str]:
        """Feed a terminal task outcome; returns ``"tripped"`` /
        ``"closed"`` when the state machine moved, else None."""
        if self.threshold is None:
            return None
        entry = self._entry(name)
        if success:
            entry.failures = 0
            if entry.state != BREAKER_CLOSED:
                entry.state = BREAKER_CLOSED
                entry.trips = 0
                entry.probe_task_id = None
                return "closed"
            return None
        if dead_letter:
            entry.failures += 1
        probe_failed = (
            entry.state == BREAKER_HALF_OPEN
            and entry.probe_task_id == task_id
        )
        if probe_failed or (
            dead_letter
            and entry.state == BREAKER_CLOSED
            and entry.failures >= self.threshold
        ):
            return self._trip(name, entry, now)
        return None

    def _trip(self, name: str, entry: _BreakerEntry, now: float) -> str:
        entry.trips += 1
        entry.state = BREAKER_OPEN
        entry.open_until = now + self.backoff.backoff(name, entry.trips)
        entry.probe_task_id = None
        entry.failures = 0
        return "tripped"

    def state(self, name: str) -> str:
        entry = self._entries.get(name)
        return BREAKER_CLOSED if entry is None else entry.state

    def states(self) -> Dict[str, str]:
        return {
            name: entry.state for name, entry in self._entries.items()
        }


# ---------------------------------------------------------- controller


@dataclass
class _TenantCounts:
    """Live per-tenant ledger: backlog and running tasks."""

    queued: int = 0
    running: int = 0


@dataclass
class Decision:
    """One admission decision, in submission order.

    ``seq`` is the decision's position in the log; the sequence of
    ``(outcome, reason)`` pairs is the determinism contract — two
    identically-seeded runs with an injected clock produce identical
    logs.
    """

    seq: int
    outcome: str  # accept | reject | shed | coalesce
    task_name: str
    tenant: str
    priority: str
    reason: Optional[str] = None
    retry_after: float = 0.0


@dataclass
class OverflowRecord:
    """A dead-letter-style parking record for shed/rejected bulk work.

    Carries everything needed to resubmit later (``replay_overflow``):
    the submission's name, payload, tenant, priority, and retry
    configuration.  ``reason`` is ``"rejected"`` (refused at the door)
    or ``"shed"`` (evicted from the queue to admit urgent work).
    """

    seq: int
    reason: str
    task_name: str
    tenant: str
    priority: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    timeout: Optional[float] = None
    max_retries: int = 0
    retry_policy: Optional[RetryPolicy] = None
    task_id: Optional[str] = None


class AdmissionController:
    """Tenant-aware admission policy in front of the broker.

    The scheduler app consults :meth:`decide` before enqueuing and
    feeds back lifecycle events (:meth:`note_accepted`,
    :meth:`may_start`, :meth:`note_requeued`, :meth:`note_terminal`,
    :meth:`note_shed`) so the quota ledger and circuit breaker track
    reality.  All timing flows through the injected ``clock`` — the
    default is :func:`time.monotonic`, tests inject a scripted clock
    and get bit-identical decision sequences.
    """

    def __init__(
        self,
        default_limits: Optional[TenantLimits] = None,
        tenant_limits: Optional[Dict[str, TenantLimits]] = None,
        breaker_threshold: Optional[int] = None,
        breaker_backoff: Optional[RetryPolicy] = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        overflow_limit: int = DEFAULT_OVERFLOW_LIMIT,
        retry_after_hint: float = 1.0,
    ):
        if overflow_limit < 0:
            raise ValidationError("overflow_limit must be >= 0")
        if retry_after_hint <= 0:
            raise ValidationError("retry_after_hint must be positive")
        self.default_limits = default_limits or TenantLimits()
        self.tenant_limits = dict(tenant_limits or {})
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, backoff=breaker_backoff, seed=seed
        )
        self.seed = seed
        self.overflow_limit = overflow_limit
        self.retry_after_hint = retry_after_hint
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._counts: Dict[str, _TenantCounts] = {}
        self._decisions: List[Decision] = []
        self._overflow: List[OverflowRecord] = []
        self._seq = 0

    # ----------------------------------------------------------- policy

    def limits_for(self, tenant: str) -> TenantLimits:
        return self.tenant_limits.get(tenant, self.default_limits)

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        limits = self.limits_for(tenant)
        if limits.rate is None:
            return None
        if tenant not in self._buckets:
            self._buckets[tenant] = TokenBucket(
                rate=limits.rate,
                burst=limits.burst if limits.burst is not None
                else max(1.0, limits.rate),
            )
        return self._buckets[tenant]

    def _tenant(self, tenant: str) -> _TenantCounts:
        if tenant not in self._counts:
            self._counts[tenant] = _TenantCounts()
        return self._counts[tenant]

    def decide(self, message: "TaskMessage") -> None:
        """Gate one submission; raises :class:`AdmissionRejected`.

        Checks, in order: circuit breaker (fail fast for a poisoned
        task class), the tenant's token-bucket rate, the tenant's
        backlog quota.  Queue capacity is the broker's to enforce —
        the app resolves saturation (displace or shed) with
        :meth:`reject_saturated` / :meth:`note_shed`.
        """
        chaos.fire(
            "admission.decide",
            task_name=message.task_name,
            task_id=message.task_id,
            tenant=message.tenant,
            priority=message.priority,
        )
        now = self._clock()
        with self._lock:
            allowed, retry_after = self.breaker.allow(
                message.task_name, message.task_id, now
            )
            if not allowed:
                self._reject_locked(message, "breaker_open", retry_after)
            bucket = self._bucket(message.tenant)
            if bucket is not None and not bucket.try_acquire(now):
                self._reject_locked(
                    message, "rate_limited", bucket.retry_after(now)
                )
            limits = self.limits_for(message.tenant)
            counts = self._tenant(message.tenant)
            if (
                limits.max_queued is not None
                and counts.queued >= limits.max_queued
            ):
                self._reject_locked(
                    message, "tenant_quota", self.retry_after_hint
                )

    def reject_saturated(self, message: "TaskMessage") -> None:
        """Refuse a submission because the queue is at its bound.

        Bulk submissions are parked in the overflow log (replayable);
        every caller gets a ``retry_after`` either way.  Always raises.
        """
        with self._lock:
            parked = False
            if (
                priority_level(message.priority) >= BULK_LEVEL
                and len(self._overflow) < self.overflow_limit
            ):
                self._overflow.append(
                    self._overflow_record_locked(message, "rejected")
                )
                parked = True
            self._reject_locked(
                message, "queue_full", self.retry_after_hint, parked=parked
            )

    def _reject_locked(
        self,
        message: "TaskMessage",
        reason: str,
        retry_after: float,
        parked: bool = False,
    ) -> None:
        self._log_locked(
            "reject", message, reason=reason, retry_after=retry_after
        )
        get_metrics().counter(
            "admission_rejected_total",
            "Submissions refused by the admission controller",
        ).inc(reason=reason)
        get_event_log().emit(
            "admission.rejected",
            task_name=message.task_name,
            tenant=message.tenant,
            priority=message.priority,
            reason=reason,
            retry_after=retry_after,
            parked=parked,
        )
        raise AdmissionRejected(
            reason,
            message.task_name,
            message.tenant,
            message.priority,
            retry_after,
            parked=parked,
        )

    # -------------------------------------------------- lifecycle feed

    def note_accepted(self, message: "TaskMessage") -> None:
        """The message made it into the queue."""
        with self._lock:
            self._tenant(message.tenant).queued += 1
            self._log_locked("accept", message)
        get_metrics().counter(
            "admission_accepted_total",
            "Submissions admitted into the broker queue",
        ).inc(tenant=message.tenant, priority=message.priority)

    def note_coalesced(self, message: "TaskMessage") -> None:
        """The submission coalesced onto an in-flight single-flight
        leader — nothing entered the queue, nothing is charged to the
        tenant's backlog (the dedup stays cross-tenant)."""
        with self._lock:
            self._log_locked("coalesce", message)

    def may_start(self, message: "TaskMessage") -> bool:
        """Dispatch gate: may a worker start this message now?

        Enforces the tenant's ``max_inflight``; a True return moves the
        message from the tenant's backlog to its running count.  On
        False the worker requeues the message and serves other lanes.
        """
        with self._lock:
            limits = self.limits_for(message.tenant)
            counts = self._tenant(message.tenant)
            if (
                limits.max_inflight is not None
                and counts.running >= limits.max_inflight
            ):
                return False
            counts.queued = max(0, counts.queued - 1)
            counts.running += 1
            return True

    def note_requeued(self, message: "TaskMessage") -> None:
        """A reclaimed (lease-expired) message went back in the queue."""
        with self._lock:
            counts = self._tenant(message.tenant)
            counts.running = max(0, counts.running - 1)
            counts.queued += 1

    def note_terminal(
        self, message: "TaskMessage", state_value: Optional[str]
    ) -> None:
        """A message reached a terminal state; settle the ledger and
        feed the circuit breaker."""
        now = self._clock()
        with self._lock:
            counts = self._tenant(message.tenant)
            counts.running = max(0, counts.running - 1)
            moved = self.breaker.note_terminal(
                message.task_name,
                message.task_id,
                success=state_value == "SUCCESS",
                dead_letter=state_value == "DEAD_LETTER",
                now=now,
            )
            breaker_state = self.breaker.state(message.task_name)
        self._report_breaker(message.task_name, breaker_state)
        if moved == "tripped":
            chaos.fire(
                "breaker.trip",
                task_name=message.task_name,
                state=breaker_state,
            )
            get_metrics().counter(
                "breaker_trips_total",
                "Circuit-breaker openings, per task name",
            ).inc(task_name=message.task_name)
            get_event_log().emit(
                "breaker.tripped",
                task_name=message.task_name,
                state=breaker_state,
            )
        elif moved == "closed":
            get_event_log().emit(
                "breaker.closed", task_name=message.task_name
            )

    def note_shed(self, message: "TaskMessage") -> None:
        """A queued message was evicted to admit more urgent work; park
        it in the overflow log (bounded) and account for it."""
        with self._lock:
            counts = self._tenant(message.tenant)
            counts.queued = max(0, counts.queued - 1)
            parked = len(self._overflow) < self.overflow_limit
            if parked:
                self._overflow.append(
                    self._overflow_record_locked(message, "shed")
                )
            self._log_locked("shed", message, reason="queue_full")
        get_metrics().counter(
            "admission_shed_total",
            "Queued messages evicted under overload",
        ).inc(priority=message.priority)
        get_event_log().emit(
            "admission.shed",
            task_name=message.task_name,
            task_id=message.task_id,
            tenant=message.tenant,
            priority=message.priority,
            parked=parked,
        )

    def _report_breaker(self, task_name: str, state: str) -> None:
        get_metrics().gauge(
            "breaker_state",
            "Circuit-breaker state per task name "
            "(0 closed, 1 half-open, 2 open)",
        ).set(BREAKER_STATE_VALUE[state], task_name=task_name)

    # ------------------------------------------------- logs & overflow

    def _log_locked(
        self,
        outcome: str,
        message: "TaskMessage",
        reason: Optional[str] = None,
        retry_after: float = 0.0,
    ) -> None:
        self._decisions.append(
            Decision(
                seq=self._seq,
                outcome=outcome,
                task_name=message.task_name,
                tenant=message.tenant,
                priority=message.priority,
                reason=reason,
                retry_after=retry_after,
            )
        )
        self._seq += 1

    def _overflow_record_locked(
        self, message: "TaskMessage", reason: str
    ) -> OverflowRecord:
        get_metrics().counter(
            "admission_overflowed_total",
            "Bulk submissions parked in the overflow log",
        ).inc(reason=reason)
        return OverflowRecord(
            seq=self._seq,
            reason=reason,
            task_name=message.task_name,
            tenant=message.tenant,
            priority=message.priority,
            args=message.args,
            kwargs=dict(message.kwargs),
            timeout=message.timeout,
            max_retries=message.max_retries,
            retry_policy=message.retry_policy,
            task_id=message.task_id,
        )

    def decision_log(self) -> List[Decision]:
        """Every decision so far, in order (the determinism contract)."""
        with self._lock:
            return list(self._decisions)

    def overflow_records(self) -> List[OverflowRecord]:
        with self._lock:
            return list(self._overflow)

    def pop_overflow(
        self, limit: Optional[int] = None
    ) -> List[OverflowRecord]:
        """Remove and return up to ``limit`` parked records (FIFO), for
        replay once load clears."""
        with self._lock:
            count = len(self._overflow) if limit is None else limit
            records = self._overflow[:count]
            del self._overflow[:count]
            return records

    def stats(self) -> Dict[str, Any]:
        """Snapshot for operators (the ``repro admit stats`` verb)."""
        with self._lock:
            outcomes: Dict[str, int] = {}
            rejects: Dict[str, int] = {}
            for decision in self._decisions:
                outcomes[decision.outcome] = (
                    outcomes.get(decision.outcome, 0) + 1
                )
                if decision.outcome == "reject" and decision.reason:
                    rejects[decision.reason] = (
                        rejects.get(decision.reason, 0) + 1
                    )
            return {
                "decisions": len(self._decisions),
                "outcomes": outcomes,
                "rejected_by_reason": rejects,
                "overflow": len(self._overflow),
                "tenants": {
                    tenant: {
                        "queued": counts.queued,
                        "running": counts.running,
                    }
                    for tenant, counts in sorted(self._counts.items())
                },
                "breakers": self.breaker.states(),
            }
