"""Process-parallel sharded execution — the real multiprocessing substrate.

The paper offers the Python multiprocessing library as the lighter-weight
alternative to Celery for driving gem5art's 480-run boot-test cross
product.  A thread pool cannot deliver that promise for a GIL-bound
pure-Python simulator: every "parallel" run serializes on the interpreter
lock.  :class:`ProcessPool` shards a batch of jobs across real OS
processes instead:

- jobs travel as **pickle-safe** :class:`JobEnvelope` s — a dotted-path
  target (importable under the ``spawn`` start method) plus plain-data
  arguments, typically built from a content-addressed
  :class:`~repro.art.spec.RunSpec` document;
- each worker process executes one envelope at a time and ships the
  outcome back over a result queue;
- worker *crash* detection reuses the scheduler's lease machinery
  (:mod:`repro.scheduler.lease`): the parent heartbeats leases only for
  workers it can still see alive, so a SIGKILLed worker's lease expires
  and the job is **redelivered** to a respawned worker — bounded by a
  redelivery budget, exactly like the thread scheduler's reaper;
- per-process telemetry buffers (metrics + events recorded inside the
  worker) are merged into the parent's session when results drain.

The pool deliberately stays below the broker: single-flight dedup and the
result cache keep living in the parent (:class:`SchedulerApp` /
:mod:`repro.art.cache`); only leader executions ship to workers.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import pickle
import queue
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import chaos
from repro.common.errors import StateError, ValidationError
from repro.common.ids import new_uuid
from repro.scheduler.lease import LeaseManager
from repro.telemetry import (
    get_event_log,
    get_metrics,
    merge_worker_telemetry,
)

#: Default time a worker process may go silent before its job is
#: reclaimed.  Processes heartbeat via the parent's monitor (the parent
#: renews leases for workers it can observe alive), so the TTL only has
#: to cover one monitor interval plus scheduling noise.
DEFAULT_PROC_LEASE_TTL = 2.0

#: Extra deliveries a job may receive after worker crashes before it is
#: failed outright (the first delivery is not a *re*-delivery).
DEFAULT_MAX_REDELIVERIES = 3

_MONITOR_INTERVAL = 0.05
_RESULT_POLL = 0.1

#: Marker key for an interned-payload reference inside envelope args.
#: ``{"__intern__": <content hash>}`` is replaced, inside the worker,
#: with the payload shipped once under that hash — see :func:`intern_ref`.
INTERN_KEY = "__intern__"


def intern_ref(content_hash: str) -> Dict[str, str]:
    """An envelope-arg placeholder for a shared, content-hashed payload.

    Builders put ``intern_ref(h)`` where a large repeated value (artifact
    payload, checkpoint document) would go and supply the value itself in
    ``JobEnvelope.shared[h]``.  The pool ships each hash to each worker
    at most once; subsequent envelopes carry only the reference.
    """
    return {INTERN_KEY: content_hash}


def _resolve_interned(value: Any, cache: Dict[str, Any]) -> Any:
    """Replace ``intern_ref`` placeholders with their cached payloads."""
    if isinstance(value, dict):
        if set(value.keys()) == {INTERN_KEY}:
            content_hash = value[INTERN_KEY]
            if content_hash not in cache:
                raise KeyError(
                    f"interned payload {content_hash!r} was never "
                    "shipped to this worker"
                )
            return cache[content_hash]
        return {k: _resolve_interned(v, cache) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_resolve_interned(v, cache) for v in value)
    return value


class WorkerJobError(StateError):
    """A job failed in (or was lost with) its worker process."""


@dataclass(frozen=True)
class JobEnvelope:
    """A pickle-safe description of one unit of work.

    ``target`` is a ``"package.module:function"`` dotted path resolved
    *inside* the worker process — the function object itself never
    crosses the process boundary, which is what makes the envelope safe
    under the ``spawn`` start method (no inherited state, no closures).
    ``args``/``kwargs`` must be plain picklable data; for gem5art runs
    they carry the run's :class:`~repro.art.spec.RunSpec` document plus
    the artifact payloads the simulation needs (see
    :mod:`repro.art.procjobs`).

    ``fingerprint`` is carried for observability only: dedup decisions
    happen in the parent broker before an envelope is ever built.

    ``shared`` maps content hash → payload for every
    :func:`intern_ref` placeholder in ``args``/``kwargs``.  The pool
    ships each hash to each worker process at most once (the worker
    interns it), so an envelope whose payloads a worker has already
    seen travels as a near-empty delta.
    """

    target: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    task_id: str = field(default_factory=new_uuid)
    fingerprint: str = ""
    telemetry: bool = False
    shared: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if ":" not in self.target:
            raise ValidationError(
                f"envelope target {self.target!r} must be a "
                "'package.module:function' dotted path"
            )


class ProcJobHandle:
    """Parent-side handle for one submitted envelope."""

    def __init__(self, envelope: JobEnvelope):
        self.envelope = envelope
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[str] = None
        self.host_seconds: float = 0.0
        self.worker: Optional[str] = None

    @property
    def task_id(self) -> str:
        return self.envelope.task_id

    def _complete(
        self,
        value: Any = None,
        error: Optional[str] = None,
        host_seconds: float = 0.0,
        worker: Optional[str] = None,
    ) -> None:
        if self._event.is_set():
            return  # late result for an already-failed/abandoned job
        self._value = value
        self._error = error
        self.host_seconds = host_seconds
        self.worker = worker
        self._event.set()

    def ready(self) -> bool:
        return self._event.is_set()

    def successful(self) -> bool:
        if not self.ready():
            raise ValueError("job result is not ready")
        return self._error is None

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout=timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout=timeout):
            raise multiprocessing.TimeoutError(
                f"job {self.task_id} did not finish in time"
            )
        if self._error is not None:
            raise WorkerJobError(self._error)
        return self._value


class _JobRecord:
    """Mutable parent-side state for one envelope (duck-types the
    ``task_id``/``deliveries`` surface :class:`LeaseManager` expects)."""

    def __init__(self, envelope: JobEnvelope, handle: ProcJobHandle):
        self.envelope = envelope
        self.handle = handle
        self.deliveries = 0

    @property
    def task_id(self) -> str:
        return self.envelope.task_id


def _resolve_target(spec: str) -> Callable:
    """Import ``"package.module:qualname"`` inside the worker."""
    module_name, _, qualname = spec.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _worker_main(worker: str, inbox, outbox) -> None:
    """Worker-process loop: execute wire batches until the ``None`` sentinel.

    Runs in a freshly spawned interpreter; everything it needs arrives
    through the wire.  Each inbox item is one parent-pickled **batch**
    (``{"jobs": [...], "shared": {hash: payload}}``) — one pickle + one
    queue round-trip per shard, not per job.  ``shared`` payloads are
    interned in a per-process cache keyed by content hash; job arguments
    reference them via :func:`intern_ref` placeholders, so a payload the
    worker has already seen never crosses the pipe again.  Telemetry,
    when requested, is recorded in a private per-process session and
    shipped back inside the result so the parent can merge it — worker
    and parent never share a registry.
    """
    from repro import telemetry as _telemetry

    interned: Dict[str, Any] = {}
    while True:
        wire = inbox.get()
        if wire is None:
            return
        batch = pickle.loads(wire)
        interned.update(batch.get("shared") or {})
        for job in batch["jobs"]:
            started = time.monotonic()
            result: Dict[str, Any] = {
                "task_id": job["task_id"],
                "worker": worker,
                "pid": os.getpid(),
                "ok": False,
                "value": None,
                "error": None,
                "telemetry": None,
            }
            session = _telemetry.enable() if job["telemetry"] else None
            try:
                target = _resolve_target(job["target"])
                args = _resolve_interned(job["args"], interned)
                kwargs = _resolve_interned(job["kwargs"], interned)
                result["value"] = target(*args, **kwargs)
                result["ok"] = True
            except Exception:
                result["error"] = traceback.format_exc()
            finally:
                if session is not None:
                    result["telemetry"] = {
                        "metrics": session.metrics.collect(),
                        "events": session.events.records(),
                    }
                    _telemetry.disable()
            result["host_seconds"] = time.monotonic() - started
            outbox.put(result)


class _WorkerSlot:
    """One worker seat: the live process, its private inbox/outbox, and
    the batch currently assigned to it (at most one batch at a time,
    which is what keeps crash attribution exact — every job in
    ``current`` died with this worker).

    The outbox is private for a reason: a queue's writer side holds a
    shared lock while its feeder thread flushes, and a SIGKILL that
    lands mid-flush leaves that lock acquired forever.  With one queue
    per worker a dying writer can only poison its own pipe — results it
    failed to flush are recovered by lease expiry, and no other worker
    ever blocks on the corpse's lock.

    ``interned`` mirrors the worker's payload intern cache: content
    hashes already shipped down this seat's pipe.  A respawned worker
    gets a fresh slot, so the mirror can never claim a payload a new
    process has not seen.
    """

    def __init__(self, name: str, process, inbox, outbox):
        self.name = name
        self.process = process
        self.inbox = inbox
        self.outbox = outbox
        self.current: Dict[str, _JobRecord] = {}
        self.interned: set = set()

    def alive(self) -> bool:
        return self.process.is_alive()


class ProcessPool:
    """A spawn-safe multiprocessing executor with lease-backed recovery.

    The API is deliberately envelope-shaped rather than function-shaped:
    callers describe work as data (:class:`JobEnvelope`), which is what
    guarantees the pool never depends on forked parent state.
    """

    def __init__(
        self,
        workers: int = 4,
        lease_ttl: float = DEFAULT_PROC_LEASE_TTL,
        max_redeliveries: int = DEFAULT_MAX_REDELIVERIES,
        start_method: str = "spawn",
        dispatch_batch: int = 1,
    ):
        if workers < 1:
            raise ValidationError("process pool needs at least one worker")
        if max_redeliveries < 0:
            raise ValidationError("max_redeliveries must be >= 0")
        if dispatch_batch < 1:
            raise ValidationError("dispatch_batch must be >= 1")
        self.worker_count = workers
        self.max_redeliveries = max_redeliveries
        # How many pending jobs one idle worker receives per wire batch
        # (one pickle + one queue round-trip for the whole shard).  1
        # preserves the historical job-at-a-time transport.
        self.dispatch_batch = dispatch_batch
        self._context = multiprocessing.get_context(start_method)
        self._leases = LeaseManager(ttl=lease_ttl)
        # One condition guards pending/inflight/slot state; blocking
        # queue operations always happen outside it.
        self._state = threading.Condition()
        self._pending: "deque[_JobRecord]" = deque()
        self._inflight: Dict[str, _JobRecord] = {}
        self._slots: List[_WorkerSlot] = []
        self._closed = False
        self._stop = threading.Event()
        self._started = False
        self._monitor: Optional[threading.Thread] = None
        self._collector: Optional[threading.Thread] = None

    # ------------------------------------------------------------- submit

    def submit(self, envelope: JobEnvelope) -> ProcJobHandle:
        """Queue an envelope; returns its handle immediately."""
        chaos.fire(
            "procpool.submit",
            task_id=envelope.task_id,
            target=envelope.target,
        )
        handle = ProcJobHandle(envelope)
        record = _JobRecord(envelope, handle)
        with self._state:
            if self._closed:
                raise StateError("process pool is closed")
            self._pending.append(record)
            self._state.notify_all()
        get_metrics().counter(
            "procpool_jobs_submitted_total",
            "Envelopes handed to the process pool",
        ).inc()
        self._ensure_started()
        return handle

    def map_envelopes(
        self,
        envelopes: List[JobEnvelope],
        timeout: Optional[float] = None,
    ) -> List[Any]:
        """Submit every envelope and return results in input order."""
        handles = [self.submit(envelope) for envelope in envelopes]
        return [handle.result(timeout=timeout) for handle in handles]

    # ------------------------------------------------------------ workers

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (for chaos tests)."""
        with self._state:
            return [
                slot.process.pid
                for slot in self._slots
                if slot.alive() and slot.process.pid is not None
            ]

    def _ensure_started(self) -> None:
        with self._state:
            if self._started:
                return
            self._started = True
            for index in range(self.worker_count):
                self._slots.append(self._spawn_slot(index))
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="procpool-monitor", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collector_loop,
            name="procpool-collector",
            daemon=True,
        )
        self._monitor.start()
        self._collector.start()

    def _spawn_slot(self, index: int) -> _WorkerSlot:
        name = f"procpool-worker-{index}"
        inbox = self._context.Queue()
        outbox = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(name, inbox, outbox),
            name=name,
            daemon=True,
        )
        process.start()
        return _WorkerSlot(name, process, inbox, outbox)

    # ------------------------------------------------------------ monitor

    def _monitor_loop(self) -> None:
        """Dispatch, heartbeat, crash-detect, and redeliver — one loop.

        Heartbeats are issued *on behalf of* workers the parent can see
        alive; a killed worker stops earning them, its lease expires,
        and the expiry path below redelivers or dead-letters the job —
        the same contract the thread scheduler's reaper enforces.
        """
        while not self._stop.is_set():
            self._assign_pending()
            for task_id in self._observed_live_jobs():
                self._leases.heartbeat(task_id)
            self._recover_lost_workers()
            self._reap_expired()
            with self._state:
                self._state.wait(timeout=_MONITOR_INTERVAL)

    def _assign_pending(self) -> None:
        """Hand queued jobs to idle live workers, a batch per worker.

        Each idle worker receives up to ``dispatch_batch`` jobs as one
        parent-pickled wire message.  Shared payloads are delta-encoded
        against the slot's intern mirror: a content hash this worker has
        already received ships as a reference, not a payload.  Leases
        stay per-job — a crashed worker's whole batch expires, but jobs
        that already produced results released their leases, so
        redelivery re-dispatches only the incomplete remainder.
        """
        assignments: List[Tuple[_WorkerSlot, List[_JobRecord]]] = []
        with self._state:
            for slot in self._slots:
                if not self._pending:
                    break
                if slot.current or not slot.alive():
                    continue
                batch: List[_JobRecord] = []
                while self._pending and len(batch) < self.dispatch_batch:
                    record = self._pending.popleft()
                    slot.current[record.task_id] = record
                    self._inflight[record.task_id] = record
                    batch.append(record)
                assignments.append((slot, batch))
        for slot, batch in assignments:
            jobs: List[Dict[str, Any]] = []
            shared: Dict[str, Any] = {}
            for record in batch:
                self._leases.acquire(record, slot.name)
                record.handle.worker = slot.name
                envelope = record.envelope
                for content_hash, payload in envelope.shared.items():
                    if content_hash not in slot.interned:
                        shared[content_hash] = payload
                        slot.interned.add(content_hash)
                jobs.append(
                    {
                        "target": envelope.target,
                        "args": envelope.args,
                        "kwargs": envelope.kwargs,
                        "task_id": envelope.task_id,
                        "telemetry": envelope.telemetry,
                    }
                )
                get_event_log().emit(
                    "procpool.dispatch",
                    task_id=record.task_id,
                    worker=slot.name,
                    delivery=record.deliveries,
                )
            wire = pickle.dumps(
                {"jobs": jobs, "shared": shared},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            get_metrics().counter(
                "transport_bytes_total",
                "Bytes of pickled job transport shipped to workers",
            ).inc(len(wire))
            get_event_log().emit(
                "procpool.batch",
                worker=slot.name,
                jobs=len(jobs),
                wire_bytes=len(wire),
                interned=len(shared),
            )
            slot.inbox.put(wire)

    def _observed_live_jobs(self) -> List[str]:
        """Task ids whose assigned worker the parent can still see."""
        with self._state:
            return [
                task_id
                for slot in self._slots
                if slot.current and slot.alive()
                for task_id in slot.current
            ]

    def _recover_lost_workers(self) -> None:
        """Respawn dead workers; their in-flight jobs stay leased and
        are reclaimed by lease expiry, not by this path — one recovery
        mechanism, not two racing ones."""
        lost: List[Tuple[int, _WorkerSlot]] = []
        with self._state:
            if self._stop.is_set():
                return
            for index, slot in enumerate(self._slots):
                if slot.alive():
                    continue
                lost.append((index, slot))
        for index, slot in lost:
            # Salvage results the worker flushed before dying — a job
            # that completed must win over its own redelivery.
            self._drain_outbox(slot.outbox)
            replacement = self._spawn_slot(index)
            with self._state:
                self._slots[index] = replacement
            get_metrics().counter(
                "procpool_workers_lost_total",
                "Worker processes that died and were respawned",
            ).inc()
            get_event_log().emit(
                "procpool.worker_lost",
                worker=slot.name,
                pid=slot.process.pid,
                task_ids=sorted(slot.current),
            )

    def _reap_expired(self) -> None:
        """Redeliver (or fail) jobs whose lease expired with the worker."""
        for lease in self._leases.expired():
            record = lease.message
            with self._state:
                self._inflight.pop(record.task_id, None)
                for slot in self._slots:
                    slot.current.pop(record.task_id, None)
            if record.handle.ready():
                continue  # raced with a late result
            if record.deliveries > self.max_redeliveries:
                error = (
                    f"job {record.task_id} lost with worker "
                    f"{lease.worker} after {record.deliveries} "
                    "deliveries (redelivery budget exhausted)"
                )
                get_event_log().emit(
                    "procpool.dead_letter",
                    task_id=record.task_id,
                    deliveries=record.deliveries,
                )
                get_metrics().counter(
                    "procpool_jobs_total", "Jobs by terminal outcome"
                ).inc(outcome="lost")
                record.handle._complete(error=error, worker=lease.worker)
                with self._state:
                    self._state.notify_all()
                continue
            get_metrics().counter(
                "procpool_redeliveries_total",
                "Jobs redelivered after a worker crash",
            ).inc()
            get_event_log().emit(
                "procpool.redelivered",
                task_id=record.task_id,
                worker=lease.worker,
                delivery=record.deliveries,
            )
            with self._state:
                self._pending.appendleft(record)
                self._state.notify_all()

    # ---------------------------------------------------------- collector

    def _collector_loop(self) -> None:
        while not self._stop.is_set():
            with self._state:
                outboxes = [slot.outbox for slot in self._slots]
            drained = sum(
                self._drain_outbox(outbox) for outbox in outboxes
            )
            if not drained:
                time.sleep(_RESULT_POLL)

    def _drain_outbox(self, outbox) -> int:
        """Absorb every result currently readable from one worker's
        outbox.  A worker killed mid-flush can leave a truncated pickle
        in its (private) pipe; that read fails, the remainder of the
        pipe dies with the slot, and lease expiry redelivers the jobs
        whose results never made it out."""
        drained = 0
        while True:
            try:
                result = outbox.get_nowait()
            except queue.Empty:
                break
            except Exception as error:
                # Torn write from a killed worker; the jobs behind it
                # are recovered by lease expiry, not this read.
                get_event_log().emit(
                    "procpool.torn_result", error=repr(error)
                )
                break
            self._absorb_result(result)
            drained += 1
        return drained

    def _absorb_result(self, result: Dict[str, Any]) -> None:
        task_id = result["task_id"]
        self._leases.release(task_id)
        with self._state:
            record = self._inflight.pop(task_id, None)
            for slot in self._slots:
                slot.current.pop(task_id, None)
            self._state.notify_all()
        buffer = result.get("telemetry")
        if buffer:
            merge_worker_telemetry(buffer, worker=result["worker"])
        outcome = "ok" if result["ok"] else "error"
        get_metrics().counter(
            "procpool_jobs_total", "Jobs by terminal outcome"
        ).inc(outcome=outcome)
        get_event_log().emit(
            "procpool.result",
            task_id=task_id,
            worker=result["worker"],
            ok=result["ok"],
        )
        if record is None:
            return  # job already reaped (late result after redelivery)
        record.handle._complete(
            value=result["value"],
            error=result["error"],
            host_seconds=result.get("host_seconds", 0.0),
            worker=result["worker"],
        )

    # ----------------------------------------------------------- shutdown

    def close(self) -> None:
        """Stop accepting new envelopes; queued work still runs."""
        with self._state:
            self._closed = True

    def join(self, timeout: float = 60.0) -> None:
        """Block until every submitted envelope has a terminal outcome."""
        with self._state:
            if not self._closed:
                raise StateError("join() requires close() first")
            if not self._state.wait_for(
                lambda: not self._pending and not self._inflight,
                timeout=timeout,
            ):
                raise StateError(
                    "process pool did not drain in time: "
                    f"{len(self._pending)} pending, "
                    f"{len(self._inflight)} in flight"
                )

    def shutdown(self) -> None:
        """Terminate workers and parent-side service threads."""
        self._stop.set()
        with self._state:
            self._closed = True
            slots = list(self._slots)
        for slot in slots:
            if slot.alive():
                slot.inbox.put(None)
        for thread in (self._monitor, self._collector):
            if thread is not None:
                thread.join(timeout=2.0)
        for slot in slots:
            slot.process.join(timeout=2.0)
            if slot.alive():
                slot.process.kill()
                slot.process.join(timeout=2.0)
            slot.outbox.cancel_join_thread()
        with self._state:
            self._slots.clear()
            self._started = False

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if exc_info[0] is None:
                self.close()
                self.join()
        finally:
            self.shutdown()
