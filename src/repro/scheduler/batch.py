"""A Condor-style batch system.

Section IV-D: "The GEM5ART task package can be extended to other job
schedulers and distributed computing environments (e.g., Condor) in the
future."  This module is that extension: a matchmaking batch system in the
HTCondor mould —

- a pool of :class:`Machine` s, each advertising slots and attributes
  (memory, arbitrary key/values);
- :class:`JobDescription` s declaring *requirements* that machines must
  satisfy;
- a deterministic negotiator that matches idle jobs (by priority, then
  submission order) to free slots;
- job states ``IDLE → RUNNING → COMPLETED/FAILED``, with ``HELD`` for
  jobs no machine in the pool can ever satisfy.

Execution is thread-backed (one worker per slot), like the rest of the
scheduler substrate.
"""

from __future__ import annotations

import enum
import itertools
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import StateError, ValidationError
from repro.telemetry import get_event_log, get_metrics, get_tracer


class JobState(str, enum.Enum):
    IDLE = "idle"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    HELD = "held"


@dataclass(frozen=True)
class Machine:
    """One execute node in the pool."""

    name: str
    slots: int = 1
    memory_mb: int = 8192
    attributes: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        if self.slots < 1:
            raise ValidationError("machines need at least one slot")
        if self.memory_mb <= 0:
            raise ValidationError("memory_mb must be positive")

    def attribute_map(self) -> Dict[str, Any]:
        return dict(self.attributes)

    def satisfies(self, requirements: Dict[str, Any]) -> bool:
        """Classad-style matching: ``memory_mb`` is a minimum, any other
        key must equal the machine's advertised attribute."""
        attributes = self.attribute_map()
        for key, wanted in requirements.items():
            if key == "memory_mb":
                if self.memory_mb < wanted:
                    return False
            elif attributes.get(key) != wanted:
                return False
        return True


@dataclass
class JobDescription:
    """A submit file, as an object."""

    executable: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    requirements: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0


class BatchJob:
    """Handle for one submitted job."""

    _ids = itertools.count(1)

    def __init__(self, description: JobDescription):
        self.job_id = next(BatchJob._ids)
        self.description = description
        self.state = JobState.IDLE
        self.machine: Optional[str] = None
        self.result: Any = None
        self.error: Optional[str] = None
        self._done = threading.Event()
        # Captured at construction (the submitter's thread) so the
        # execute thread can parent its span correctly.
        self.trace_context = get_tracer().current_context_dict()

    def wait(self, timeout: Optional[float] = None) -> JobState:
        if not self._done.wait(timeout=timeout):
            raise StateError(f"job {self.job_id} not finished in time")
        return self.state

    def get(self, timeout: Optional[float] = None) -> Any:
        state = self.wait(timeout=timeout)
        if state is JobState.COMPLETED:
            return self.result
        raise StateError(
            f"job {self.job_id} ended {state.value}: {self.error}"
        )


class BatchSystem:
    """The pool: machines + queue + negotiator."""

    def __init__(self):
        self._machines: List[Machine] = []
        self._queue: List[BatchJob] = []
        self._free_slots: Dict[str, int] = {}
        self._lock = threading.Condition()
        self._threads: List[threading.Thread] = []

    # ---------------------------------------------------------------- pool

    def add_machine(self, machine: Machine) -> None:
        with self._lock:
            if any(m.name == machine.name for m in self._machines):
                raise ValidationError(
                    f"machine {machine.name!r} already in the pool"
                )
            self._machines.append(machine)
            self._free_slots[machine.name] = machine.slots
            self._lock.notify_all()

    def total_slots(self) -> int:
        with self._lock:
            return sum(machine.slots for machine in self._machines)

    # -------------------------------------------------------------- submit

    def submit(self, description: JobDescription) -> BatchJob:
        job = BatchJob(description)
        get_metrics().counter(
            "batch_jobs_submitted_total",
            "Jobs handed to the batch system",
        ).inc()
        with self._lock:
            if not self._matchable(description):
                job.state = JobState.HELD
                job.error = (
                    "no machine in the pool satisfies the job "
                    f"requirements {description.requirements}"
                )
                job._done.set()
                self._record_final(job)
                return job
            self._queue.append(job)
            get_event_log().emit(
                "batch.job.queued", job_id=job.job_id
            )
        self._negotiate()
        return job

    @staticmethod
    def _record_final(job: "BatchJob") -> None:
        get_metrics().counter(
            "batch_jobs_total", "Jobs by terminal state"
        ).inc(state=job.state.value)
        get_event_log().emit(
            "batch.job.finished",
            job_id=job.job_id,
            state=job.state.value,
            machine=job.machine,
        )

    def _matchable(self, description: JobDescription) -> bool:
        return any(
            machine.satisfies(description.requirements)
            for machine in self._machines
        )

    # ---------------------------------------------------------- negotiator

    def _negotiate(self) -> None:
        """Match idle jobs to free slots; highest priority first, then
        submission (job id) order — deterministic, as tests require."""
        with self._lock:
            # Reap finished executor threads so a long-lived batch
            # system doesn't accumulate one dead Thread per job ever run.
            self._threads = [t for t in self._threads if t.is_alive()]
            get_metrics().gauge(
                "batch_queue_depth", "Jobs queued or running"
            ).set(len(self._queue))
            idle = sorted(
                (j for j in self._queue if j.state is JobState.IDLE),
                key=lambda j: (-j.description.priority, j.job_id),
            )
            for job in idle:
                machine = self._find_free_machine(job.description)
                if machine is None:
                    continue
                self._free_slots[machine.name] -= 1
                job.state = JobState.RUNNING
                job.machine = machine.name
                thread = threading.Thread(
                    target=self._execute, args=(job, machine), daemon=True
                )
                self._threads.append(thread)
                thread.start()

    def _find_free_machine(
        self, description: JobDescription
    ) -> Optional[Machine]:
        for machine in self._machines:
            if self._free_slots[machine.name] <= 0:
                continue
            if machine.satisfies(description.requirements):
                return machine
        return None

    def _execute(self, job: BatchJob, machine: Machine) -> None:
        description = job.description
        try:
            with get_tracer().span(
                "batch.job",
                parent=job.trace_context,
                attributes={
                    "job_id": job.job_id,
                    "machine": machine.name,
                },
            ) as span:
                job.result = description.executable(
                    *description.args, **description.kwargs
                )
                job.state = JobState.COMPLETED
                span.set_attribute("state", job.state.value)
        except Exception as error:
            # A failed job is a result, not an incident to hide: keep
            # the full traceback on the job (surfaced by .get()), and
            # emit the structured failure so the event log can explain
            # the run without access to the job object.
            job.error = traceback.format_exc()
            job.state = JobState.FAILED
            get_event_log().emit(
                "batch.job.error",
                job_id=job.job_id,
                machine=machine.name,
                error=type(error).__name__,
                detail=str(error),
            )
        finally:
            with self._lock:
                self._free_slots[machine.name] += 1
                self._queue.remove(job)
                self._lock.notify_all()
            self._record_final(job)
            job._done.set()
            self._negotiate()

    # ---------------------------------------------------------------- wait

    def wait_all(self, timeout: float = 60.0) -> None:
        """Block until the queue drains (held jobs are already final)."""
        import time

        deadline = time.monotonic() + timeout
        with self._lock:
            while self._queue:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StateError("batch queue did not drain in time")
                self._lock.wait(timeout=remaining)

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)
