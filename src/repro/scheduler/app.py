"""The Celery-like application object.

A :class:`SchedulerApp` owns the broker, the result backend, a registry of
task functions, and a pool of worker threads.  Task functions are registered
with the ``@app.task(...)`` decorator and submitted with ``apply_async``,
matching how gem5art launch scripts fan out gem5 jobs.

Resilience model (see ``docs/robustness.md``):

- Every attempt runs on a helper thread while the worker thread heartbeats
  the task's **lease**; a worker that crashes mid-task stops heartbeating,
  the lease expires, and the **reaper** re-publishes the message for
  another worker (bounded by ``max_redeliveries``) — so ``drain()`` cannot
  hang on a dead worker.
- Failed attempts are retried by a single loop-based :class:`RetryPolicy`
  with deterministic, seeded exponential backoff; exhausted tasks are
  parked in the result backend's **dead-letter** record.
- Helper threads abandoned by timed-out tasks are tracked (the
  ``scheduler_leaked_threads`` gauge) and capped.

Overload model (also ``docs/robustness.md``): every submission passes
the app's :class:`~repro.scheduler.admission.AdmissionController`
(circuit breaker, per-tenant rate/quota) before it may enter the
broker's bounded leveled queue.  At the bound, an interactive or
default submission displaces the newest queued bulk message (which is
shed into the overflow log); a bulk submission is rejected with a
structured ``retry_after`` and parked for replay.  The default
controller is fully permissive and the default queue unbounded, so a
plain ``SchedulerApp()`` behaves exactly as before admission control
existed.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import chaos
from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.scheduler.admission import (
    AdmissionController,
    AdmissionRejected,
    BULK_LEVEL,
    OverflowRecord,
    priority_level,
)
from repro.scheduler.broker import Broker, TaskMessage
from repro.scheduler.lease import DEFAULT_LEASE_TTL
from repro.scheduler.result import AsyncResult, ResultBackend
from repro.scheduler.retry import RetryPolicy, TaskOutcome
from repro.scheduler.states import TaskState
from repro.telemetry import get_event_log, get_metrics, get_tracer

_POLL_INTERVAL = 0.05

#: Extra deliveries a message may receive after worker crashes before it
#: is dead-lettered (the first delivery is not a *re*-delivery).
DEFAULT_MAX_REDELIVERIES = 3

#: Ceiling on live helper threads abandoned by timed-out tasks.
DEFAULT_MAX_LEAKED_THREADS = 64


class RegisteredTask:
    """A task function bound to its app; supports direct calls and
    ``apply_async`` submission."""

    def __init__(
        self,
        app: "SchedulerApp",
        func: Callable,
        name: str,
        max_retries: int,
        timeout: Optional[float],
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.app = app
        self.func = func
        self.name = name
        self.max_retries = max_retries
        self.timeout = timeout
        self.retry_policy = retry_policy

    def __call__(self, *args, **kwargs):
        return self.func(*args, **kwargs)

    def apply_async(
        self,
        args: Tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        dedup_key: Optional[str] = None,
        tenant: str = "default",
        priority: str = "default",
    ) -> AsyncResult:
        """Enqueue an invocation; returns the result handle immediately.

        ``dedup_key`` opts into single-flight coalescing: if an
        invocation with the same key is already in flight, no new task
        is enqueued and the returned handle subscribes to the in-flight
        leader's result.

        ``tenant``/``priority`` are the admission coordinates: whose
        quota the submission charges and which queue lane it waits in.
        Raises :class:`~repro.scheduler.admission.AdmissionRejected`
        (with ``retry_after``) when the admission controller refuses.
        """
        return self.app.send_task(
            self.name,
            args=args,
            kwargs=kwargs or {},
            timeout=self.timeout if timeout is None else timeout,
            max_retries=self.max_retries,
            retry_policy=self.retry_policy,
            dedup_key=dedup_key,
            tenant=tenant,
            priority=priority,
        )


class SchedulerApp:
    """Task registry + broker + result backend + worker pool."""

    def __init__(
        self,
        name: str = "repro",
        worker_count: int = 2,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_redeliveries: int = DEFAULT_MAX_REDELIVERIES,
        max_leaked_threads: int = DEFAULT_MAX_LEAKED_THREADS,
        respawn_workers: bool = True,
        queue_limit: Optional[int] = None,
        admission: Optional[AdmissionController] = None,
    ):
        if worker_count < 1:
            raise ValidationError("worker_count must be >= 1")
        if max_redeliveries < 0 or max_leaked_threads < 1:
            raise ValidationError(
                "max_redeliveries must be >= 0 and max_leaked_threads >= 1"
            )
        self.name = name
        self.broker = Broker(lease_ttl=lease_ttl, queue_limit=queue_limit)
        # The default controller is fully permissive (no rates, no
        # quotas, breaker disabled) so a plain app keeps its historical
        # accept-everything behaviour; pass an AdmissionController to
        # opt into overload protection.
        self.admission = admission or AdmissionController()
        self.backend = ResultBackend()
        self.worker_count = worker_count
        self.max_redeliveries = max_redeliveries
        self.max_leaked_threads = max_leaked_threads
        self._respawn_workers = respawn_workers
        self._heartbeat_interval = max(0.005, min(_POLL_INTERVAL, lease_ttl / 5))
        self._reap_interval = max(0.005, min(_POLL_INTERVAL, lease_ttl / 4))
        self._tasks: Dict[str, RegisteredTask] = {}
        self._workers: list = []
        self._reaper: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        self._lock = threading.Lock()
        # Serializes decide -> (displace | reject) -> publish, so the
        # queue bound is a hard invariant: concurrent submitters cannot
        # both pass the capacity check and overshoot the limit.
        self._admission_lock = threading.Lock()
        self._leak_lock = threading.Lock()
        self._leaked: list = []
        # Submitted-but-not-finished count; drain() sleeps on the
        # condition instead of polling the queue length.
        self._inflight = 0
        self._idle = threading.Condition()

    # ------------------------------------------------------------ registry

    def task(
        self,
        name: Optional[str] = None,
        max_retries: int = 0,
        timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> Callable:
        """Decorator registering a function as a named task.

        ``retry_policy`` overrides ``max_retries`` and adds backoff/
        retry-class control; a bare ``max_retries`` keeps the historical
        immediate-retry behaviour.
        """

        def decorator(func: Callable) -> RegisteredTask:
            task_name = name or f"{func.__module__}.{func.__qualname__}"
            if task_name in self._tasks:
                raise ValidationError(
                    f"task {task_name!r} already registered"
                )
            registered = RegisteredTask(
                self,
                func,
                task_name,
                retry_policy.max_retries if retry_policy else max_retries,
                timeout,
                retry_policy,
            )
            self._tasks[task_name] = registered
            return registered

        return decorator

    def task_names(self):
        return sorted(self._tasks)

    # ---------------------------------------------------------- submission

    def send_task(
        self,
        name: str,
        args: Tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        dedup_key: Optional[str] = None,
        tenant: str = "default",
        priority: str = "default",
    ) -> AsyncResult:
        """Admit and enqueue one invocation.

        Order of gates: single-flight coalescing first (a follower
        enqueues nothing and is free, so dedup stays cross-tenant),
        then the admission controller (breaker / rate / quota), then
        queue capacity — where an urgent submission may displace the
        newest queued bulk message instead of being refused.  Raises
        :class:`AdmissionRejected` with ``retry_after`` when refused.
        """
        if name not in self._tasks:
            raise NotFoundError(f"no task registered as {name!r}")
        if not tenant:
            raise ValidationError("tenant must be a non-empty string")
        level = priority_level(priority)
        message = TaskMessage(
            task_name=name,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            timeout=timeout,
            max_retries=(
                retry_policy.max_retries if retry_policy else max_retries
            ),
            retry_policy=retry_policy,
            trace_context=get_tracer().current_context_dict(),
            dedup_key=dedup_key,
            tenant=tenant,
            priority=priority,
        )
        if dedup_key is not None:
            leader = self.broker.singleflight.acquire(
                dedup_key, message.task_id, is_active=self._task_in_flight
            )
            if leader is not None:
                # Coalesce: the follower's handle subscribes to the
                # leader's result; nothing new enters the queue.
                self.admission.note_coalesced(message)
                get_metrics().counter(
                    "scheduler_coalesced_total",
                    "Submissions coalesced onto an in-flight "
                    "single-flight leader",
                ).inc(app=self.name)
                get_event_log().emit(
                    "task.coalesced",
                    task_name=name,
                    dedup_key=dedup_key,
                    leader_task_id=leader,
                )
                return AsyncResult(leader, self.backend)
        try:
            with self._admission_lock:
                self.admission.decide(message)
                if not self.broker.has_capacity():
                    self._make_room_or_reject(message, level)
                self.backend.create(message.task_id)
                with self._idle:
                    self._inflight += 1
                # Capacity was secured under the admission lock (only
                # workers consume concurrently, which frees space), so
                # this force-publish cannot overshoot the bound.
                self.broker.publish(message, force=True)
                self.admission.note_accepted(message)
        except AdmissionRejected:
            self.broker.singleflight.release(dedup_key, message.task_id)
            raise
        get_metrics().counter(
            "scheduler_tasks_submitted_total",
            "Tasks accepted by the scheduler app",
        ).inc(app=self.name)
        self._ensure_started()
        return AsyncResult(message.task_id, self.backend)

    def _make_room_or_reject(
        self, message: TaskMessage, level: int
    ) -> None:
        """Resolve a saturated queue: shed bulk-priority work first.

        An interactive/default submission displaces the newest queued
        message of strictly lower urgency; when there is nothing to
        displace (or the submission is itself bulk) the controller
        rejects it — parking bulk submissions in the overflow log.
        """
        victim = (
            self.broker.evict_lower(level) if level < BULK_LEVEL else None
        )
        if victim is None:
            self.admission.reject_saturated(message)  # always raises
        self._finish_shed_victim(victim)

    def _finish_shed_victim(self, victim: TaskMessage) -> None:
        """Settle a message evicted from the queue: terminal SHED state
        (so its handle never hangs), overflow parking, ledger credit."""
        try:
            self.backend.transition(
                victim.task_id,
                TaskState.SHED,
                error=(
                    "shed under overload to admit higher-priority work; "
                    "the submission is parked in the admission "
                    "controller's overflow log"
                ),
            )
        except (NotFoundError, StateError):  # pragma: no cover - racing
            # The victim raced to a terminal state while being evicted;
            # its in-flight accounting was settled by whoever won.
            return
        self.broker.singleflight.release(victim.dedup_key, victim.task_id)
        self.broker.discard_revoked(victim.task_id)
        self.admission.note_shed(victim)
        self._task_done()

    def replay_overflow(
        self, limit: Optional[int] = None
    ) -> List[AsyncResult]:
        """Resubmit parked overflow records (FIFO), oldest first.

        Each record passes admission again; records that are refused a
        second time are re-parked/raised by the normal path, and this
        method stops at the first refusal so the remaining backlog
        stays queued for a later replay.
        """
        handles: List[AsyncResult] = []
        for record in self.admission.pop_overflow(limit):
            try:
                handles.append(self._resubmit(record))
            except AdmissionRejected:
                break
        return handles

    def _resubmit(self, record: OverflowRecord) -> AsyncResult:
        return self.send_task(
            record.task_name,
            args=record.args,
            kwargs=record.kwargs,
            timeout=record.timeout,
            max_retries=record.max_retries,
            retry_policy=record.retry_policy,
            tenant=record.tenant,
            priority=record.priority,
        )

    def revoke(self, result: AsyncResult) -> None:
        """Prevent a still-queued task from running.

        Revoking an already-terminal task is a no-op — recording it
        would leak a revocation mark nothing will ever prune.
        """
        try:
            if self.backend.state(result.task_id).is_terminal:
                return
        except NotFoundError:
            pass
        self.broker.revoke(result.task_id)

    # ------------------------------------------------------------- workers

    def _ensure_started(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.worker_count):
                self._workers.append(self._spawn_worker(index))
            self._reaper = threading.Thread(
                target=self._reaper_loop,
                name=f"{self.name}-reaper",
                daemon=True,
            )
            self._reaper.start()

    def _spawn_worker(self, index: int) -> threading.Thread:
        worker = threading.Thread(
            target=self._worker_loop,
            name=f"{self.name}-worker-{index}",
            daemon=True,
        )
        worker.start()
        return worker

    def _worker_loop(self) -> None:
        worker = threading.current_thread().name
        while not self._stop.is_set():
            message = self.broker.consume(timeout=_POLL_INTERVAL)
            if message is None:
                continue
            if not self.admission.may_start(message):
                self._defer_capped_message(message)
                continue
            self.broker.leases.acquire(message, worker)
            try:
                self._execute(message)
            except BaseException as error:
                # The worker is dying mid-task — a chaos-injected crash or
                # an internal scheduler error.  Leave the lease unreleased
                # and the in-flight count intact: the reaper will notice
                # the silence, then re-publish or dead-letter the message.
                self._note_worker_death(worker, message, error)
                return
            self.broker.leases.release(message.task_id)
            try:
                self._finish_message(message)
            except BaseException as error:
                self._note_worker_death(worker, message, error)
                return

    def _defer_capped_message(self, message: TaskMessage) -> None:
        """The tenant is at its max_inflight concurrency: put the
        message back (tail of its lane) and briefly yield so the worker
        doesn't spin on an un-startable head.  No lease is in play yet —
        acquisition happens only after the dispatch gate admits."""
        self.broker.publish(message, force=True)
        self._stop.wait(self._heartbeat_interval)

    def _note_worker_death(
        self, worker: str, message: TaskMessage, error: BaseException
    ) -> None:
        get_metrics().counter(
            "scheduler_worker_crashes_total",
            "Worker threads that died mid-task",
        ).inc(app=self.name)
        get_event_log().emit(
            "worker.crashed",
            worker=worker,
            task_id=message.task_id,
            error=type(error).__name__,
        )

    def _task_done(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    def _finish_message(self, message: TaskMessage) -> None:
        """Settle a message that reached a terminal state: feed the
        admission ledger/circuit breaker, then release the in-flight
        count.  The ``finally`` keeps drain() safe even if the breaker's
        ``breaker.trip`` chaos point injects a fault mid-accounting."""
        try:
            try:
                state = self.backend.state(message.task_id).value
            except NotFoundError:  # pragma: no cover - defensive
                state = None
            self.admission.note_terminal(message, state)
        finally:
            self._task_done()

    # ------------------------------------------------------------ execution

    def _task_in_flight(self, task_id: str) -> bool:
        """Is a task id still a live single-flight leader?"""
        try:
            return not self.backend.state(task_id).is_terminal
        except NotFoundError:
            return False

    def _execute(self, message: TaskMessage) -> None:
        if self.broker.is_revoked(message.task_id):
            self.backend.transition(
                message.task_id, TaskState.REVOKED, error="revoked"
            )
            self.broker.singleflight.release(
                message.dedup_key, message.task_id
            )
            # The revocation mark has done its job; prune it so a
            # long-running service doesn't grow one set entry per
            # revoked task forever.
            self.broker.discard_revoked(message.task_id)
            return
        with get_tracer().span(
            "task",
            parent=message.trace_context,
            attributes={
                "task_name": message.task_name,
                "task_id": message.task_id,
            },
        ) as span:
            self._execute_message(message)
            span.set_attribute(
                "state", self.backend.state(message.task_id).value
            )
        # _execute_message only returns once the task is terminal, so
        # the key is free for the next identical submission (which will
        # normally be served by the result cache instead).
        self.broker.singleflight.release(
            message.dedup_key, message.task_id
        )

    def _execute_message(self, message: TaskMessage) -> None:
        """Run a message to a terminal state through one retry loop.

        Retries are iterative, not recursive, so an arbitrarily large
        retry budget cannot blow the stack; the loop is also the single
        place outcome handling happens (success / timeout / retry /
        failure / dead-letter).
        """
        chaos.fire(
            "task.execute",
            task_id=message.task_id,
            task_name=message.task_name,
            worker=threading.current_thread().name,
            delivery=message.deliveries,
        )
        task = self._tasks[message.task_name]
        policy = message.retry_policy or RetryPolicy(
            max_retries=message.max_retries
        )
        while True:
            self.backend.transition(message.task_id, TaskState.STARTED)
            outcome = self._run_attempt(task, message)
            if outcome.kind == "success":
                self.backend.transition(
                    message.task_id,
                    TaskState.SUCCESS,
                    result=outcome.value,
                )
                return
            if outcome.kind == "timeout":
                self.backend.transition(
                    message.task_id, TaskState.TIMEOUT, error=outcome.error
                )
                return
            if policy.should_retry(message.retries, outcome.exception):
                self.backend.transition(message.task_id, TaskState.RETRY)
                message.retries += 1
                delay = policy.backoff(message.task_name, message.retries)
                get_event_log().emit(
                    "task.retry",
                    task_id=message.task_id,
                    task_name=message.task_name,
                    attempt=message.retries,
                    delay=delay,
                )
                if delay > 0:
                    self._sleep_with_heartbeat(message.task_id, delay)
                continue
            if policy.max_retries > 0 and (
                message.retries >= policy.max_retries
            ):
                self.backend.dead_letter(message, error=outcome.error)
            else:
                self.backend.transition(
                    message.task_id, TaskState.FAILURE, error=outcome.error
                )
            return

    def _run_attempt(
        self, task: RegisteredTask, message: TaskMessage
    ) -> TaskOutcome:
        """Run one attempt on a helper thread, heartbeating the lease.

        The helper thread lets the worker thread keep renewing the task's
        lease while user code runs (and enforce the timeout); on timeout
        the helper is abandoned — acceptable because simulator jobs are
        pure computations — but *tracked*, so leaks are observable and
        capped instead of silently accumulating.
        """
        leaked = self._prune_leaked()
        if leaked >= self.max_leaked_threads:
            error = (
                f"refusing to start task {message.task_name!r}: {leaked} "
                "helper threads leaked by timed-out tasks are still "
                f"running (cap {self.max_leaked_threads}); raise "
                "max_leaked_threads or fix the hung tasks"
            )
            return TaskOutcome(
                "error", error=error, exception=StateError(error)
            )
        box: Dict[str, Any] = {}
        tracer = get_tracer()
        parent_context = tracer.current_context_dict()

        def target():
            try:
                with tracer.activate(parent_context):
                    chaos.fire(
                        "task.run",
                        task_id=message.task_id,
                        task_name=message.task_name,
                    )
                    box["value"] = task.func(*message.args, **message.kwargs)
            except Exception as error:
                box["exception"] = error
                box["error"] = traceback.format_exc()

        helper = threading.Thread(
            target=target,
            name=(
                f"{threading.current_thread().name}"
                f"-attempt-{message.task_id[:8]}"
            ),
            daemon=True,
        )
        helper.start()
        deadline = (
            None
            if message.timeout is None
            else time.monotonic() + message.timeout
        )
        while True:
            wait = self._heartbeat_interval
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            helper.join(timeout=wait)
            if not helper.is_alive():
                break
            self.broker.leases.heartbeat(message.task_id)
            if deadline is not None and time.monotonic() >= deadline:
                self._register_leak(helper)
                return TaskOutcome(
                    "timeout",
                    error=f"timed out after {message.timeout}s",
                )
        if "error" in box:
            return TaskOutcome(
                "error",
                error=box["error"],
                exception=box.get("exception"),
            )
        if "value" not in box:
            return TaskOutcome(
                "error",
                error="task helper thread died without an outcome",
            )
        return TaskOutcome("success", value=box["value"])

    def _sleep_with_heartbeat(self, task_id: str, delay: float) -> None:
        """Backoff sleep that keeps the task's lease alive."""
        deadline = time.monotonic() + delay
        while not self._stop.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            self._stop.wait(min(self._heartbeat_interval, remaining))
            self.broker.leases.heartbeat(task_id)

    # --------------------------------------------------------- leak tracking

    def _leaked_gauge(self):
        return get_metrics().gauge(
            "scheduler_leaked_threads",
            "Live helper threads abandoned by timed-out tasks",
        )

    def _prune_leaked(self) -> int:
        with self._leak_lock:
            self._leaked = [t for t in self._leaked if t.is_alive()]
            count = len(self._leaked)
        self._leaked_gauge().set(count, app=self.name)
        return count

    def _register_leak(self, thread: threading.Thread) -> None:
        with self._leak_lock:
            self._leaked.append(thread)
            count = sum(1 for t in self._leaked if t.is_alive())
        self._leaked_gauge().set(count, app=self.name)
        get_event_log().emit("task.thread_leaked", thread=thread.name)

    def leaked_threads(self) -> int:
        """Live helper threads abandoned by timed-out tasks (pruned)."""
        return self._prune_leaked()

    # -------------------------------------------------------------- reaper

    def _reaper_loop(self) -> None:
        while not self._stop.wait(self._reap_interval):
            self._reap_once()

    def _reap_once(self) -> None:
        """One maintenance pass: respawn dead workers, reclaim leases."""
        if self._respawn_workers:
            self._respawn_dead_workers()
        for lease in self.broker.leases.expired():
            message = lease.message
            try:
                state = self.backend.state(message.task_id)
            except NotFoundError:  # pragma: no cover - defensive
                continue
            if state.is_terminal:
                # The worker finished but died (or raced) before
                # releasing; nothing to recover.
                continue
            get_metrics().counter(
                "scheduler_lease_expirations_total",
                "Task leases that expired and were reclaimed",
            ).inc(app=self.name)
            get_event_log().emit(
                "task.lease_expired",
                task_id=message.task_id,
                worker=lease.worker,
                deliveries=message.deliveries,
            )
            try:
                if message.deliveries > self.max_redeliveries:
                    self.backend.dead_letter(
                        message,
                        error=(
                            f"lease expired after {message.deliveries} "
                            f"deliveries (last worker {lease.worker} "
                            "presumed dead)"
                        ),
                    )
                    # The crashed workers never decremented the in-flight
                    # count; parking the task finishes it (and feeds the
                    # circuit breaker — crash redeliveries that exhaust
                    # the budget count as dead-letters).
                    self.broker.singleflight.release(
                        message.dedup_key, message.task_id
                    )
                    try:
                        self._finish_message(message)
                    except Exception as error:
                        # A fault injected at the breaker.trip chaos
                        # point must not kill the reaper thread — the
                        # in-flight count was already settled by the
                        # _finish_message finally block.
                        get_event_log().emit(
                            "reaper.finish_error",
                            task_id=message.task_id,
                            error=type(error).__name__,
                        )
                else:
                    if state is not TaskState.PENDING:
                        self.backend.transition(
                            message.task_id, TaskState.RETRY
                        )
                    # Redelivery bypasses the queue bound: refusing a
                    # reclaimed message would lose acknowledged work.
                    self.broker.publish(message, force=True)
                    self.admission.note_requeued(message)
            except StateError:
                # Raced with a worker completing the task after all.
                continue

    def _respawn_dead_workers(self) -> None:
        alive = 0
        with self._lock:
            if not self._started or self._stop.is_set():
                return
            for index, worker in enumerate(self._workers):
                if worker.is_alive():
                    alive += 1
                    continue
                self._workers[index] = self._spawn_worker(index)
                alive += 1
                get_metrics().counter(
                    "scheduler_worker_respawns_total",
                    "Dead worker threads replaced by the reaper",
                ).inc(app=self.name)
                get_event_log().emit(
                    "worker.respawned", worker=worker.name
                )
        get_metrics().gauge(
            "scheduler_workers_alive",
            "Worker threads currently alive",
        ).set(alive, app=self.name)

    # ------------------------------------------------------------ shutdown

    def drain(self, timeout: float = 60.0) -> None:
        """Block until every submitted task has finished executing.

        Waits on the in-flight condition rather than sleep-polling the
        queue length, so it returns the moment the last worker finishes
        (and, unlike a queue-length poll, also covers tasks a worker has
        already dequeued but not completed).  Tasks stranded by worker
        crashes are recovered by the reaper — redelivered or
        dead-lettered — so a dead worker cannot wedge the drain.
        """
        with self._idle:
            if not self._idle.wait_for(
                lambda: self._inflight <= 0, timeout=timeout
            ):
                raise StateError(
                    "drain timed out with tasks still in flight"
                )

    def shutdown(self) -> None:
        """Stop the worker threads (queued tasks are abandoned)."""
        self._stop.set()
        # Snapshot under the lock: _respawn_dead_workers mutates the
        # list concurrently until the threads see the stop flag.
        with self._lock:
            workers = list(self._workers)
            reaper = self._reaper
        for worker in workers:
            worker.join(timeout=2.0)
        if reaper is not None:
            reaper.join(timeout=2.0)
        with self._lock:
            self._workers.clear()
            self._reaper = None
            self._started = False
        self._stop = threading.Event()
