"""The Celery-like application object.

A :class:`SchedulerApp` owns the broker, the result backend, a registry of
task functions, and a pool of worker threads.  Task functions are registered
with the ``@app.task(...)`` decorator and submitted with ``apply_async``,
matching how gem5art launch scripts fan out gem5 jobs.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.scheduler.broker import Broker, TaskMessage
from repro.scheduler.result import AsyncResult, ResultBackend
from repro.scheduler.states import TaskState
from repro.telemetry import get_metrics, get_tracer

_POLL_INTERVAL = 0.05


class RegisteredTask:
    """A task function bound to its app; supports direct calls and
    ``apply_async`` submission."""

    def __init__(
        self,
        app: "SchedulerApp",
        func: Callable,
        name: str,
        max_retries: int,
        timeout: Optional[float],
    ):
        self.app = app
        self.func = func
        self.name = name
        self.max_retries = max_retries
        self.timeout = timeout

    def __call__(self, *args, **kwargs):
        return self.func(*args, **kwargs)

    def apply_async(
        self,
        args: Tuple = (),
        kwargs: Dict[str, Any] = None,
        timeout: float = None,
    ) -> AsyncResult:
        """Enqueue an invocation; returns the result handle immediately."""
        return self.app.send_task(
            self.name,
            args=args,
            kwargs=kwargs or {},
            timeout=self.timeout if timeout is None else timeout,
            max_retries=self.max_retries,
        )


class SchedulerApp:
    """Task registry + broker + result backend + worker pool."""

    def __init__(self, name: str = "repro", worker_count: int = 2):
        if worker_count < 1:
            raise ValidationError("worker_count must be >= 1")
        self.name = name
        self.broker = Broker()
        self.backend = ResultBackend()
        self.worker_count = worker_count
        self._tasks: Dict[str, RegisteredTask] = {}
        self._workers: list = []
        self._stop = threading.Event()
        self._started = False
        self._lock = threading.Lock()
        # Submitted-but-not-finished count; drain() sleeps on the
        # condition instead of polling the queue length.
        self._inflight = 0
        self._idle = threading.Condition()

    # ------------------------------------------------------------ registry

    def task(
        self,
        name: str = None,
        max_retries: int = 0,
        timeout: float = None,
    ) -> Callable:
        """Decorator registering a function as a named task."""

        def decorator(func: Callable) -> RegisteredTask:
            task_name = name or f"{func.__module__}.{func.__qualname__}"
            if task_name in self._tasks:
                raise ValidationError(
                    f"task {task_name!r} already registered"
                )
            registered = RegisteredTask(
                self, func, task_name, max_retries, timeout
            )
            self._tasks[task_name] = registered
            return registered

        return decorator

    def task_names(self):
        return sorted(self._tasks)

    # ---------------------------------------------------------- submission

    def send_task(
        self,
        name: str,
        args: Tuple = (),
        kwargs: Dict[str, Any] = None,
        timeout: float = None,
        max_retries: int = 0,
    ) -> AsyncResult:
        if name not in self._tasks:
            raise NotFoundError(f"no task registered as {name!r}")
        message = TaskMessage(
            task_name=name,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            timeout=timeout,
            max_retries=max_retries,
            trace_context=get_tracer().current_context_dict(),
        )
        self.backend.create(message.task_id)
        get_metrics().counter(
            "scheduler_tasks_submitted_total",
            "Tasks accepted by the scheduler app",
        ).inc(app=self.name)
        with self._idle:
            self._inflight += 1
        self.broker.publish(message)
        self._ensure_started()
        return AsyncResult(message.task_id, self.backend)

    def revoke(self, result: AsyncResult) -> None:
        """Prevent a still-queued task from running."""
        self.broker.revoke(result.task_id)

    # ------------------------------------------------------------- workers

    def _ensure_started(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.worker_count):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self.name}-worker-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            message = self.broker.consume(timeout=_POLL_INTERVAL)
            if message is None:
                continue
            try:
                self._execute(message)
            finally:
                self._task_done()

    def _task_done(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    def _execute(self, message: TaskMessage) -> None:
        if self.broker.is_revoked(message.task_id):
            self.backend.transition(
                message.task_id, TaskState.REVOKED, error="revoked"
            )
            return
        with get_tracer().span(
            "task",
            parent=message.trace_context,
            attributes={
                "task_name": message.task_name,
                "task_id": message.task_id,
            },
        ) as span:
            self._execute_message(message)
            span.set_attribute(
                "state", self.backend.state(message.task_id).value
            )

    def _execute_message(self, message: TaskMessage) -> None:
        task = self._tasks[message.task_name]
        self.backend.transition(message.task_id, TaskState.STARTED)
        outcome = _run_with_timeout(
            task.func, message.args, message.kwargs, message.timeout
        )
        kind, payload = outcome
        if kind == "success":
            self.backend.transition(
                message.task_id, TaskState.SUCCESS, result=payload
            )
        elif kind == "timeout":
            self.backend.transition(
                message.task_id,
                TaskState.TIMEOUT,
                error=f"timed out after {message.timeout}s",
            )
        elif message.retries < message.max_retries:
            self.backend.transition(message.task_id, TaskState.RETRY)
            message.retries += 1
            self.backend.transition(message.task_id, TaskState.STARTED)
            self.broker_retry(message)
        else:
            self.backend.transition(
                message.task_id, TaskState.FAILURE, error=payload
            )

    def broker_retry(self, message: TaskMessage) -> None:
        """Re-execute a retried message inline on this worker.

        Inline (rather than re-published) execution keeps retry order
        deterministic, which the integration tests rely on.
        """
        task = self._tasks[message.task_name]
        kind, payload = _run_with_timeout(
            task.func, message.args, message.kwargs, message.timeout
        )
        if kind == "success":
            self.backend.transition(
                message.task_id, TaskState.SUCCESS, result=payload
            )
        elif kind == "timeout":
            self.backend.transition(
                message.task_id,
                TaskState.TIMEOUT,
                error=f"timed out after {message.timeout}s",
            )
        elif message.retries < message.max_retries:
            self.backend.transition(message.task_id, TaskState.RETRY)
            message.retries += 1
            self.backend.transition(message.task_id, TaskState.STARTED)
            self.broker_retry(message)
        else:
            self.backend.transition(
                message.task_id, TaskState.FAILURE, error=payload
            )

    # ------------------------------------------------------------ shutdown

    def drain(self, timeout: float = 60.0) -> None:
        """Block until every submitted task has finished executing.

        Waits on the in-flight condition rather than sleep-polling the
        queue length, so it returns the moment the last worker finishes
        (and, unlike a queue-length poll, also covers tasks a worker has
        already dequeued but not completed).
        """
        with self._idle:
            if not self._idle.wait_for(
                lambda: self._inflight <= 0, timeout=timeout
            ):
                raise StateError(
                    "drain timed out with tasks still in flight"
                )

    def shutdown(self) -> None:
        """Stop the worker threads (queued tasks are abandoned)."""
        self._stop.set()
        for worker in self._workers:
            worker.join(timeout=2.0)
        self._workers.clear()
        with self._lock:
            self._started = False
        self._stop = threading.Event()


def _run_with_timeout(
    func: Callable, args: Tuple, kwargs: Dict, timeout: Optional[float]
):
    """Run ``func`` and classify the outcome.

    Returns ("success", value), ("timeout", None) or ("error", traceback).
    Timeouts are implemented by running the call in a helper thread and
    abandoning it — acceptable because simulator jobs are pure computations
    with no external side effects to clean up.  The worker's active span
    context is re-activated on the helper thread so spans opened inside
    the task still nest under the task span.
    """
    if timeout is None:
        try:
            return ("success", func(*args, **kwargs))
        except Exception:
            return ("error", traceback.format_exc())

    box: Dict[str, Any] = {}
    tracer = get_tracer()
    parent_context = tracer.current_context_dict()

    def target():
        try:
            with tracer.activate(parent_context):
                box["value"] = func(*args, **kwargs)
        except Exception:
            box["error"] = traceback.format_exc()

    helper = threading.Thread(target=target, daemon=True)
    helper.start()
    helper.join(timeout=timeout)
    if helper.is_alive():
        return ("timeout", None)
    if "error" in box:
        return ("error", box["error"])
    return ("success", box.get("value"))
