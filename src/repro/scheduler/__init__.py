"""A job-scheduler substrate — the Celery / multiprocessing substitute.

gem5art hands run objects to an external task manager: Celery when runs span
machines, or the Python multiprocessing library for a single host.  This
package provides both API shapes backed by a thread worker pool, which is the
right execution vehicle for a pure-Python simulator (jobs are CPU-light model
evaluations, and threads share the in-process database):

- :class:`SchedulerApp` — a Celery-like application: ``@app.task`` decorated
  functions, ``apply_async``, task states, retries, timeouts, a result
  backend, and worker lifecycle management.
- :class:`SimplePool` — a ``multiprocessing.Pool``-like fallback for users
  who want no scheduler at all (the paper's third option).
- :class:`ProcessPool` — the *real* multiprocessing substrate: spawn-safe
  worker processes fed pickle-safe :class:`JobEnvelope` s, with
  lease-backed crash redelivery and telemetry merge-on-drain.  Selected
  behind the scheduler with ``substrate="processes"``.
"""

from repro.scheduler.states import TaskState
from repro.scheduler.result import AsyncResult, ResultBackend
from repro.scheduler.retry import RetryPolicy, TaskOutcome
from repro.scheduler.lease import DEFAULT_LEASE_TTL, Lease, LeaseManager
from repro.scheduler.admission import (
    PRIORITIES,
    AdmissionController,
    AdmissionRejected,
    CircuitBreaker,
    LeveledQueue,
    OverflowRecord,
    TenantLimits,
    TokenBucket,
)
from repro.scheduler.broker import Broker, TaskMessage
from repro.scheduler.app import SchedulerApp
from repro.scheduler.pool import PoolResult, SimplePool
from repro.scheduler.procpool import (
    JobEnvelope,
    ProcessPool,
    ProcJobHandle,
    WorkerJobError,
)
from repro.scheduler.batch import (
    BatchSystem,
    BatchJob,
    JobDescription,
    JobState,
    Machine,
)

__all__ = [
    "PRIORITIES",
    "AdmissionController",
    "AdmissionRejected",
    "CircuitBreaker",
    "LeveledQueue",
    "OverflowRecord",
    "TenantLimits",
    "TokenBucket",
    "TaskState",
    "AsyncResult",
    "ResultBackend",
    "RetryPolicy",
    "TaskOutcome",
    "DEFAULT_LEASE_TTL",
    "Lease",
    "LeaseManager",
    "Broker",
    "TaskMessage",
    "SchedulerApp",
    "SimplePool",
    "PoolResult",
    "JobEnvelope",
    "ProcessPool",
    "ProcJobHandle",
    "WorkerJobError",
    "BatchSystem",
    "BatchJob",
    "JobDescription",
    "JobState",
    "Machine",
]
