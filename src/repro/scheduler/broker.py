"""The message broker: a thread-safe FIFO of task messages.

Celery's broker (RabbitMQ/Redis) reduces, for a single host, to a queue of
serializable messages; this is that queue.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.common.ids import new_uuid
from repro.scheduler.lease import DEFAULT_LEASE_TTL, LeaseManager
from repro.scheduler.retry import RetryPolicy


@dataclass
class TaskMessage:
    """One enqueued task invocation.

    ``trace_context`` carries the submitting span's context (trace id +
    span id, dict form) across the broker: worker threads cannot see the
    submitter's thread-local span stack, so the handle must travel in the
    message for telemetry to stitch experiment → task → run spans.

    ``retries`` counts failed attempts consumed from the retry budget;
    ``deliveries`` counts lease acquisitions (how many workers have picked
    the message up), which is what bounds redelivery after crashes.
    """

    task_name: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    task_id: str = field(default_factory=new_uuid)
    timeout: Optional[float] = None
    max_retries: int = 0
    retries: int = 0
    deliveries: int = 0
    retry_policy: Optional[RetryPolicy] = None
    trace_context: Optional[Dict[str, str]] = None


class Broker:
    """FIFO delivery of task messages to workers, with leases.

    ``leases`` tracks which worker currently holds each dequeued message;
    the scheduler's reaper re-publishes messages whose lease expired.
    """

    def __init__(self, lease_ttl: float = DEFAULT_LEASE_TTL):
        self._queue: "queue.Queue[TaskMessage]" = queue.Queue()
        self._revoked = set()
        self._lock = threading.Lock()
        self.leases = LeaseManager(ttl=lease_ttl)

    def publish(self, message: TaskMessage) -> None:
        self._queue.put(message)

    def consume(self, timeout: float = None) -> Optional[TaskMessage]:
        """Pop the next message, or None on timeout / empty non-blocking."""
        try:
            if timeout is None:
                return self._queue.get_nowait()
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def revoke(self, task_id: str) -> None:
        """Mark a task so workers drop it instead of executing it."""
        with self._lock:
            self._revoked.add(task_id)

    def is_revoked(self, task_id: str) -> bool:
        with self._lock:
            return task_id in self._revoked

    def __len__(self) -> int:
        return self._queue.qsize()
