"""The message broker: a bounded, leveled queue of task messages.

Celery's broker (RabbitMQ/Redis) reduces, for a single host, to a queue of
serializable messages; this is that queue.  Since the admission-control
layer it is no longer an unbounded FIFO: messages live in a
:class:`~repro.scheduler.admission.LeveledQueue` — three priority lanes
(interactive > default > bulk, FIFO within a lane) under an optional
total bound, so ``publish`` can refuse instead of letting a bulk flood
grow memory without limit.  The broker also hosts the **single-flight
registry**: tasks submitted with an identical ``dedup_key`` while one is
still in flight coalesce onto the first submission (the *leader*)
instead of enqueuing duplicate work — followers simply subscribe to the
leader's result.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.ids import new_uuid
from repro.scheduler.admission import LeveledQueue
from repro.scheduler.lease import DEFAULT_LEASE_TTL, LeaseManager
from repro.scheduler.retry import RetryPolicy


@dataclass
class TaskMessage:
    """One enqueued task invocation.

    ``trace_context`` carries the submitting span's context (trace id +
    span id, dict form) across the broker: worker threads cannot see the
    submitter's thread-local span stack, so the handle must travel in the
    message for telemetry to stitch experiment → task → run spans.

    ``retries`` counts failed attempts consumed from the retry budget;
    ``deliveries`` counts lease acquisitions (how many workers have picked
    the message up), which is what bounds redelivery after crashes.

    ``dedup_key`` opts the message into single-flight coalescing: while
    this message is in flight, later submissions carrying the same key
    are not enqueued at all — they receive this message's result handle.

    ``tenant`` and ``priority`` are the admission-control coordinates:
    which quota ledger/rate bucket the submission is charged to, and
    which queue lane it waits in (``interactive`` > ``default`` >
    ``bulk``; bulk is shed first under overload).
    """

    task_name: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    task_id: str = field(default_factory=new_uuid)
    timeout: Optional[float] = None
    max_retries: int = 0
    retries: int = 0
    deliveries: int = 0
    retry_policy: Optional[RetryPolicy] = None
    trace_context: Optional[Dict[str, str]] = None
    dedup_key: Optional[str] = None
    tenant: str = "default"
    priority: str = "default"


class SingleFlight:
    """In-flight dedup-key → leader-task registry.

    The registry only tracks *in-flight* work: once a leader reaches a
    terminal state it is released (completed results are the result
    cache's job, not the broker's).  ``acquire`` is atomic — exactly one
    of N concurrent submissions with the same key becomes the leader.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._leaders: Dict[str, str] = {}

    def acquire(
        self,
        key: str,
        task_id: str,
        is_active: Optional[Callable[[str], bool]] = None,
    ) -> Optional[str]:
        """Claim leadership of ``key`` for ``task_id``.

        Returns None when ``task_id`` became the leader (the caller must
        enqueue the message), or the current leader's task id when the
        submission coalesces.  ``is_active`` guards against a stale
        leader that finished without releasing (e.g. a racing terminal
        transition): an inactive leader is replaced.
        """
        with self._lock:
            leader = self._leaders.get(key)
            if leader is not None and (
                is_active is None or is_active(leader)
            ):
                return leader
            self._leaders[key] = task_id
            return None

    def release(self, key: Optional[str], task_id: str) -> None:
        """Drop leadership, but only if ``task_id`` still holds it."""
        if key is None:
            return
        with self._lock:
            if self._leaders.get(key) == task_id:
                del self._leaders[key]

    def leader(self, key: str) -> Optional[str]:
        with self._lock:
            return self._leaders.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._leaders)


class Broker:
    """Leveled, bounded delivery of task messages to workers, with leases.

    ``leases`` tracks which worker currently holds each dequeued message;
    the scheduler's reaper re-publishes messages whose lease expired.
    ``queue_limit`` caps total resident messages (None keeps the
    historical unbounded behaviour); when full, ``publish`` returns
    False and the admission layer decides whether to displace lower-
    priority work or reject the submission.
    """

    def __init__(
        self,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        queue_limit: Optional[int] = None,
    ):
        self._queue = LeveledQueue(limit=queue_limit)
        self._revoked = set()
        self._lock = threading.Lock()
        self.leases = LeaseManager(ttl=lease_ttl)
        self.singleflight = SingleFlight()

    @property
    def queue_limit(self) -> Optional[int]:
        return self._queue.limit

    def publish(self, message: TaskMessage, force: bool = False) -> bool:
        """Enqueue into the message's priority lane.

        Returns False when the queue is at its bound; ``force`` pushes
        past the bound (redeliveries of reclaimed messages must never be
        refused — losing an acknowledged task is worse than a transient
        one-slot overshoot).
        """
        return self._queue.put(message, force=force)

    def has_capacity(self) -> bool:
        limit = self._queue.limit
        return limit is None or len(self._queue) < limit

    def consume(
        self, timeout: Optional[float] = None
    ) -> Optional[TaskMessage]:
        """Pop the most urgent message, or None on timeout / empty
        non-blocking."""
        return self._queue.get(timeout=timeout)

    def evict_lower(self, level: int) -> Optional[TaskMessage]:
        """Shed the newest queued message less urgent than ``level``."""
        return self._queue.evict_lower(level)

    def queue_depth(self) -> Dict[str, int]:
        """Exact per-priority resident counts."""
        return self._queue.depth()

    def revoke(self, task_id: str) -> None:
        """Mark a task so workers drop it instead of executing it."""
        with self._lock:
            self._revoked.add(task_id)

    def is_revoked(self, task_id: str) -> bool:
        with self._lock:
            return task_id in self._revoked

    def discard_revoked(self, task_id: str) -> None:
        """Forget a revocation once the task is terminal — the mark has
        done its job, and keeping it would leak one set entry per
        revoked task over a long-running service's life."""
        with self._lock:
            self._revoked.discard(task_id)

    def revoked_count(self) -> int:
        """Live (not yet pruned) revocation marks."""
        with self._lock:
            return len(self._revoked)

    def __len__(self) -> int:
        return len(self._queue)
