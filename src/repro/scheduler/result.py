"""Result backend and the AsyncResult handle callers poll.

The backend records per-task state transitions (enforcing the state machine
from :mod:`repro.scheduler.states`), the return value or error text, and
timing — the "summary of useful information (like run status and execution
time)" that gem5art stores in the database.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro import chaos
from repro.common.errors import NotFoundError, StateError
from repro.common.timeutil import iso_now
from repro.scheduler.states import TaskState, can_transition
from repro.telemetry import get_event_log, get_metrics


class ResultBackend:
    """Thread-safe store of task outcomes."""

    def __init__(self):
        self._records: Dict[str, Dict[str, Any]] = {}
        self._dead_letters: List[Dict[str, Any]] = []
        self._lock = threading.Condition()

    def create(self, task_id: str) -> None:
        with self._lock:
            # Monotonic timestamps measure durations within this process;
            # the *_wall ISO-8601 fields are what survives archiving —
            # monotonic values are meaningless across processes/sessions.
            self._records[task_id] = {
                "state": TaskState.PENDING,
                "result": None,
                "error": None,
                "submitted_at": time.monotonic(),
                "submitted_at_wall": iso_now(),
                "started_at": None,
                "started_at_wall": None,
                "finished_at": None,
                "finished_at_wall": None,
                "retries": 0,
            }

    def transition(
        self,
        task_id: str,
        state: TaskState,
        result: Any = None,
        error: Optional[str] = None,
    ) -> None:
        chaos.fire("backend.transition", task_id=task_id, dst=state.value)
        with self._lock:
            record = self._get(task_id)
            current = record["state"]
            if not can_transition(current, state):
                raise StateError(
                    f"illegal transition {current.value} -> {state.value} "
                    f"for task {task_id}"
                )
            record["state"] = state
            if state is TaskState.STARTED:
                record["started_at"] = time.monotonic()
                record["started_at_wall"] = iso_now()
            if state is TaskState.RETRY:
                record["retries"] += 1
                get_metrics().counter(
                    "scheduler_task_retries_total",
                    "Task executions that ended in a retry",
                ).inc()
            if state.is_terminal:
                record["finished_at"] = time.monotonic()
                record["finished_at_wall"] = iso_now()
                record["result"] = result
                record["error"] = error
                get_metrics().counter(
                    "scheduler_tasks_total",
                    "Tasks by terminal state",
                ).inc(state=state.value)
            get_event_log().emit(
                "task.transition",
                task_id=task_id,
                src=current.value,
                dst=state.value,
            )
            self._lock.notify_all()

    def dead_letter(self, message, error: Optional[str] = None) -> None:
        """Park a task whose retry/redelivery budget is exhausted.

        Besides the terminal ``DEAD_LETTER`` transition, a standalone
        record is appended so operators can triage what was lost without
        trawling every task record; ``message`` is a
        :class:`~repro.scheduler.broker.TaskMessage`.
        """
        self.transition(
            message.task_id, TaskState.DEAD_LETTER, error=error
        )
        with self._lock:
            self._dead_letters.append(
                {
                    "task_id": message.task_id,
                    "task_name": message.task_name,
                    "retries": message.retries,
                    "deliveries": message.deliveries,
                    "error": error,
                    "at_wall": iso_now(),
                }
            )
        get_metrics().counter(
            "scheduler_dead_letters_total",
            "Tasks parked after exhausting retries/redeliveries",
        ).inc(task_name=message.task_name)
        get_event_log().emit(
            "task.dead_letter",
            task_id=message.task_id,
            task_name=message.task_name,
            retries=message.retries,
            deliveries=message.deliveries,
        )

    def dead_letters(self) -> List[Dict[str, Any]]:
        """Snapshot of every dead-letter record, in park order."""
        with self._lock:
            return [dict(record) for record in self._dead_letters]

    def state(self, task_id: str) -> TaskState:
        with self._lock:
            return self._get(task_id)["state"]

    def record(self, task_id: str) -> Dict[str, Any]:
        with self._lock:
            return dict(self._get(task_id))

    def wait(
        self, task_id: str, timeout: Optional[float] = None
    ) -> TaskState:
        """Block until the task reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                state = self._get(task_id)["state"]
                if state.is_terminal:
                    return state
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return state
                self._lock.wait(timeout=remaining)

    def _get(self, task_id: str) -> Dict[str, Any]:
        if task_id not in self._records:
            raise NotFoundError(f"unknown task id: {task_id}")
        return self._records[task_id]


class AsyncResult:
    """Handle for one submitted task, in the Celery style."""

    def __init__(self, task_id: str, backend: ResultBackend):
        self.task_id = task_id
        self._backend = backend

    @property
    def state(self) -> TaskState:
        return self._backend.state(self.task_id)

    def ready(self) -> bool:
        return self.state.is_terminal

    def successful(self) -> bool:
        return self.state is TaskState.SUCCESS

    def get(self, timeout: Optional[float] = None) -> Any:
        """Wait for completion and return the result.

        Raises :class:`StateError` carrying the task error when the task
        failed, timed out, was revoked, or did not finish before ``timeout``.
        """
        state = self._backend.wait(self.task_id, timeout=timeout)
        record = self._backend.record(self.task_id)
        if state is TaskState.SUCCESS:
            return record["result"]
        if not state.is_terminal:
            raise StateError(
                f"task {self.task_id} not finished within timeout "
                f"(state={state.value})"
            )
        raise StateError(
            f"task {self.task_id} ended in state {state.value}: "
            f"{record['error']}"
        )

    def runtime(self) -> Optional[float]:
        """Wall-clock execution time in seconds, when finished."""
        record = self._backend.record(self.task_id)
        if record["started_at"] is None or record["finished_at"] is None:
            return None
        return record["finished_at"] - record["started_at"]
