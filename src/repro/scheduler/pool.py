"""A ``multiprocessing.Pool``-shaped fallback.

The paper offers the Python multiprocessing library as the lighter-weight
alternative to Celery.  :class:`SimplePool` mirrors the relevant API surface
(`apply_async`, `map`, `close`, `join`) over a thread pool so launch scripts
can switch between the two scheduler styles with one line.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, List, Optional

from repro.common.errors import StateError


class PoolResult:
    """Handle returned by :meth:`SimplePool.apply_async`."""

    def __init__(self):
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _complete(
        self, value: Any = None, error: Optional[BaseException] = None
    ):
        self._value = value
        self._error = error
        self._event.set()

    def ready(self) -> bool:
        return self._event.is_set()

    def successful(self) -> bool:
        if not self.ready():
            raise StateError("result not ready")
        return self._error is None

    def get(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout=timeout):
            raise StateError("timed out waiting for pool result")
        if self._error is not None:
            raise self._error
        return self._value


class SimplePool:
    """A fixed-size worker pool with multiprocessing.Pool semantics."""

    def __init__(self, processes: int = 4):
        if processes < 1:
            raise StateError("pool needs at least one worker")
        self._semaphore = threading.Semaphore(processes)
        self._threads: List[threading.Thread] = []
        self._closed = False
        self._lock = threading.Lock()

    def apply_async(
        self, func: Callable, args: tuple = (), kwds: Optional[dict] = None
    ) -> PoolResult:
        with self._lock:
            if self._closed:
                raise StateError("pool is closed")
            result = PoolResult()

            def runner():
                with self._semaphore:
                    try:
                        result._complete(value=func(*args, **(kwds or {})))
                    except BaseException as exc:  # propagate to .get()
                        result._complete(error=exc)

            thread = threading.Thread(target=runner, daemon=True)
            self._threads.append(thread)
            thread.start()
            return result

    def map(self, func: Callable, iterable: Iterable) -> List[Any]:
        """Apply ``func`` to every item, preserving order."""
        handles = [self.apply_async(func, (item,)) for item in iterable]
        return [handle.get() for handle in handles]

    def close(self) -> None:
        with self._lock:
            self._closed = True

    def join(self) -> None:
        if not self._closed:
            raise StateError("join() requires close() first")
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "SimplePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.join()
