"""A ``multiprocessing.Pool``-shaped fallback.

The paper offers the Python multiprocessing library as the lighter-weight
alternative to Celery.  :class:`SimplePool` mirrors the relevant API surface
(`apply_async`, `map`, `close`, `join`) over a **fixed set of worker
threads** so launch scripts can switch between the two scheduler styles
with one line: a 480-job submission queues 480 envelopes, not 480 OS
threads.  For real CPU parallelism over the GIL-bound simulator, use
:class:`repro.scheduler.procpool.ProcessPool` — this class keeps the
stdlib-compatible facade for in-process use.

API fidelity matters because callers are written against the stdlib
contract: ``PoolResult.get(timeout=...)`` raises
:class:`multiprocessing.TimeoutError`, ``successful()`` raises
:class:`ValueError` before the result is ready, and ``close()`` stops
intake while letting already-queued work finish.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Any, Callable, Iterable, List, Optional

from repro.common.errors import StateError


class PoolResult:
    """Handle returned by :meth:`SimplePool.apply_async`."""

    def __init__(self):
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _complete(
        self, value: Any = None, error: Optional[BaseException] = None
    ):
        self._value = value
        self._error = error
        self._event.set()

    def ready(self) -> bool:
        return self._event.is_set()

    def successful(self) -> bool:
        if not self.ready():
            raise ValueError("result is not ready")
        return self._error is None

    def wait(self, timeout: Optional[float] = None) -> None:
        self._event.wait(timeout=timeout)

    def get(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout=timeout):
            raise multiprocessing.TimeoutError(
                "timed out waiting for pool result"
            )
        if self._error is not None:
            raise self._error
        return self._value


class SimplePool:
    """A fixed-size worker pool with multiprocessing.Pool semantics."""

    def __init__(self, processes: int = 4):
        if processes < 1:
            raise StateError("pool needs at least one worker")
        self.processes = processes
        self._tasks: "queue.Queue" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker,
                name=f"simplepool-worker-{index}",
                daemon=True,
            )
            for index in range(processes)
        ]
        for thread in self._threads:
            thread.start()

    def _worker(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            func, args, kwds, result = item
            try:
                result._complete(value=func(*args, **kwds))
            except BaseException as exc:  # propagate to .get()
                result._complete(error=exc)

    def apply_async(
        self, func: Callable, args: tuple = (), kwds: Optional[dict] = None
    ) -> PoolResult:
        result = PoolResult()
        # The unbounded queue's put() never blocks, so enqueueing under
        # the lock is safe and makes close() race-free: after close()
        # wins the lock, no new task can slip in behind the sentinels.
        with self._lock:
            if self._closed:
                raise StateError("pool is closed")
            self._tasks.put((func, args, kwds or {}, result))
        return result

    def map(self, func: Callable, iterable: Iterable) -> List[Any]:
        """Apply ``func`` to every item, preserving order.

        Waits for *every* submitted item before raising, so an early
        failure cannot orphan still-queued work; the first error (in
        input order) is then re-raised, matching ``Pool.map``.
        """
        handles = [self.apply_async(func, (item,)) for item in iterable]
        for handle in handles:
            handle.wait()
        return [handle.get() for handle in handles]

    def close(self) -> None:
        """Stop accepting new work; queued work still runs.

        One exit sentinel per worker is queued *behind* the pending
        tasks, so workers drain the queue before exiting.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._threads:
                self._tasks.put(None)

    def join(self) -> None:
        with self._lock:
            if not self._closed:
                raise StateError("join() requires close() first")
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "SimplePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.join()
