"""Compiler toolchain models.

The paper attributes the PARSEC runtime gap between Ubuntu releases largely
to the bundled GCC: 18.04 ships GCC 7.4, 20.04 ships GCC 9.3, and the
authors observed the 20.04 binaries executing *more* instructions but at a
*higher* CPU utilization (fewer stall cycles), netting faster runs.

A :class:`Compiler` therefore carries two codegen coefficients:

- ``instruction_scale`` — multiplier on a benchmark's dynamic instruction
  count relative to the reference toolchain (GCC 7.4 == 1.0);
- ``memory_cpi_scale`` — multiplier on the memory-stall component of CPI,
  capturing vectorization/locality improvements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import NotFoundError


@dataclass(frozen=True)
class Compiler:
    """An immutable description of a guest toolchain."""

    name: str
    version: str
    #: Dynamic-instruction multiplier vs the GCC 7.4 reference build.
    instruction_scale: float
    #: Multiplier on memory-stall cycles per instruction (locality).
    memory_cpi_scale: float

    @property
    def key(self) -> str:
        return f"{self.name}-{self.version}"

    def describe(self) -> str:
        return (
            f"{self.name} {self.version} "
            f"(instr x{self.instruction_scale}, "
            f"mem-stall x{self.memory_cpi_scale})"
        )


#: Toolchains referenced by the paper.  GCC 9.3 emits more instructions
#: (more aggressive inlining/vectorized prologues) but with better locality,
#: matching the authors' observation for Ubuntu 20.04 builds.
COMPILERS = {
    "gcc-7.4": Compiler("gcc", "7.4", 1.00, 1.00),
    "gcc-7.5": Compiler("gcc", "7.5", 1.00, 0.99),
    "gcc-9.3": Compiler("gcc", "9.3", 1.07, 0.80),
}


def get_compiler(key: str) -> Compiler:
    """Look up a compiler by ``name-version`` key."""
    if key not in COMPILERS:
        raise NotFoundError(
            f"unknown compiler {key!r}; known: {sorted(COMPILERS)}"
        )
    return COMPILERS[key]
