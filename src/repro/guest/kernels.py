"""Linux kernel models.

Each :class:`LinuxKernel` carries the properties the simulator consumes:

- the *boot phase* breakdown (how many instructions each boot stage retires,
  per the kernel generation), used by the full-system boot sequencer;
- a *scheduler efficiency* coefficient capturing CFS improvements across
  kernel generations — newer kernels place and balance threads better, which
  is one of the paper's explanations for Ubuntu 20.04's better multi-core
  speedups (Fig 7);
- a deterministic ``vmlinux`` build so kernel binaries are hashable
  artifacts.

The five LTS versions used by the boot-test cross product (Fig 8) and the
two distro kernels used by the PARSEC study (Fig 6/7) are registered here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import NotFoundError
from repro.common.hashing import md5_text


@dataclass(frozen=True)
class LinuxKernel:
    """An immutable description of one Linux kernel version."""

    version: str
    #: Major.minor series, e.g. "4.19".
    series: str
    lts: bool
    #: (phase name, instructions retired on the boot CPU) in boot order.
    boot_phases: Tuple[Tuple[str, int], ...]
    #: Fraction of ideal multi-core scaling the scheduler achieves (0..1).
    scheduler_efficiency: float
    #: Relative syscall/IO path cost (1.0 == the 4.15 baseline).
    syscall_cost_scale: float = 1.0

    @property
    def key(self) -> str:
        return f"linux-{self.version}"

    def total_boot_instructions(self) -> int:
        return sum(count for _, count in self.boot_phases)


def _phases(scale: float) -> Tuple[Tuple[str, int], ...]:
    """Standard boot phase breakdown, scaled per kernel generation.

    Newer kernels initialize more subsystems (more code run at boot) —
    hence scale grows with the series.
    """
    base = (
        ("early_setup", 18_000_000),
        ("memory_init", 42_000_000),
        ("scheduler_init", 9_000_000),
        ("driver_probe", 110_000_000),
        ("mount_root", 35_000_000),
        ("start_init", 16_000_000),
    )
    return tuple((name, int(count * scale)) for name, count in base)


KERNELS: Dict[str, LinuxKernel] = {
    kernel.version: kernel
    for kernel in (
        LinuxKernel(
            version="4.4.186",
            series="4.4",
            lts=True,
            boot_phases=_phases(0.85),
            scheduler_efficiency=0.80,
            syscall_cost_scale=1.05,
        ),
        LinuxKernel(
            version="4.9.186",
            series="4.9",
            lts=True,
            boot_phases=_phases(0.90),
            scheduler_efficiency=0.83,
            syscall_cost_scale=1.03,
        ),
        LinuxKernel(
            version="4.14.134",
            series="4.14",
            lts=True,
            boot_phases=_phases(0.95),
            scheduler_efficiency=0.86,
            syscall_cost_scale=1.01,
        ),
        LinuxKernel(
            version="4.15.18",
            series="4.15",
            lts=False,  # Ubuntu 18.04's HWE kernel line
            boot_phases=_phases(0.97),
            scheduler_efficiency=0.87,
            syscall_cost_scale=1.00,
        ),
        LinuxKernel(
            version="4.19.83",
            series="4.19",
            lts=True,
            boot_phases=_phases(1.00),
            scheduler_efficiency=0.89,
            syscall_cost_scale=0.99,
        ),
        LinuxKernel(
            version="5.4.49",
            series="5.4",
            lts=True,
            boot_phases=_phases(1.08),
            scheduler_efficiency=0.93,
            syscall_cost_scale=0.97,
        ),
        LinuxKernel(
            version="5.4.51",
            series="5.4",
            lts=True,
            boot_phases=_phases(1.08),
            scheduler_efficiency=0.93,
            syscall_cost_scale=0.97,
        ),
    )
}

#: The five LTS kernels swept by the Fig 8 boot-test cross product.
BOOT_TEST_KERNEL_VERSIONS: List[str] = [
    "4.4.186",
    "4.9.186",
    "4.14.134",
    "4.19.83",
    "5.4.49",
]


def get_kernel(version: str) -> LinuxKernel:
    if version not in KERNELS:
        raise NotFoundError(
            f"unknown kernel {version!r}; known: {sorted(KERNELS)}"
        )
    return KERNELS[version]


def build_kernel_binary(kernel: LinuxKernel, config: str = "default") -> bytes:
    """Produce a deterministic pseudo-``vmlinux`` for the kernel+config.

    The binary embeds a header naming the version and a body derived from
    the (version, config) pair, so distinct builds hash differently while
    repeated builds are bit-identical — exactly the property the artifact
    layer needs.
    """
    header = f"VMLINUX {kernel.version} config={config}\n"
    body = md5_text(f"{kernel.version}/{config}") * 64
    return header.encode("ascii") + body.encode("ascii")
