"""OS distribution models.

An :class:`UbuntuRelease` ties together the facts the PARSEC study (use-case
1) varies: which kernel the release ships, which GCC builds its packages,
and how much work its init system does to reach each runlevel.  The paper
compares the two most recent LTS releases, 18.04 and 20.04.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import NotFoundError
from repro.guest.compilers import Compiler, get_compiler
from repro.guest.kernels import LinuxKernel, get_kernel


@dataclass(frozen=True)
class UbuntuRelease:
    """An immutable description of one Ubuntu LTS userland."""

    name: str
    version: str
    codename: str
    released: str  # YYYY-MM
    kernel_version: str
    compiler_key: str
    #: Instructions retired by userspace init to reach runlevel 5
    #: (systemd grew between releases).
    init_instructions: int
    #: Base packages recorded in built disk images, for provenance.
    base_packages: Tuple[str, ...]

    @property
    def key(self) -> str:
        return f"ubuntu-{self.version}"

    @property
    def kernel(self) -> LinuxKernel:
        return get_kernel(self.kernel_version)

    @property
    def compiler(self) -> Compiler:
        return get_compiler(self.compiler_key)

    def describe(self) -> str:
        return (
            f"Ubuntu {self.version} ({self.codename}), kernel "
            f"{self.kernel_version}, {self.compiler.describe()}"
        )


DISTROS: Dict[str, UbuntuRelease] = {
    distro.key: distro
    for distro in (
        UbuntuRelease(
            name="Ubuntu",
            version="18.04",
            codename="bionic",
            released="2018-04",
            kernel_version="4.15.18",
            compiler_key="gcc-7.4",
            init_instructions=240_000_000,
            base_packages=(
                "systemd",
                "openssh-server",
                "gcc-7",
                "libc6",
                "coreutils",
            ),
        ),
        UbuntuRelease(
            name="Ubuntu",
            version="20.04",
            codename="focal",
            released="2020-04",
            kernel_version="5.4.51",
            compiler_key="gcc-9.3",
            init_instructions=265_000_000,
            base_packages=(
                "systemd",
                "openssh-server",
                "gcc-9",
                "libc6",
                "coreutils",
            ),
        ),
    )
}


def get_distro(key: str) -> UbuntuRelease:
    """Look up a release by key, accepting 'ubuntu-18.04' or '18.04'."""
    if key in DISTROS:
        return DISTROS[key]
    qualified = f"ubuntu-{key}"
    if qualified in DISTROS:
        return DISTROS[qualified]
    raise NotFoundError(
        f"unknown distro {key!r}; known: {sorted(DISTROS)}"
    )
