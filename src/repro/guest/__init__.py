"""Models of the guest software stack.

A real full-system experiment layers a Linux kernel, an OS userland, a
compiler toolchain, and benchmark binaries on a disk image.  The properties
of those components — not their actual machine code — are what drive the
paper's results: the compiler that built PARSEC determines dynamic
instruction counts and locality (Fig 6), the kernel version determines boot
behaviour and scheduler efficiency (Figs 7 and 8), and the init system
determines what "boot to runlevel 5" costs.

This package models exactly those properties, with deterministic "builds"
so every produced binary has a stable content hash for the artifact layer.
"""

from repro.guest.compilers import Compiler, get_compiler, COMPILERS
from repro.guest.kernels import (
    LinuxKernel,
    get_kernel,
    build_kernel_binary,
    KERNELS,
    BOOT_TEST_KERNEL_VERSIONS,
)
from repro.guest.distros import (
    UbuntuRelease,
    get_distro,
    DISTROS,
)

__all__ = [
    "Compiler",
    "get_compiler",
    "COMPILERS",
    "LinuxKernel",
    "get_kernel",
    "build_kernel_binary",
    "KERNELS",
    "BOOT_TEST_KERNEL_VERSIONS",
    "UbuntuRelease",
    "get_distro",
    "DISTROS",
]
