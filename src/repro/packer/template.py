"""Packer template representation and validation."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import ValidationError
from repro.common.jsonutil import canonical_dumps, loads

#: Builder types understood by the build pipeline.
BUILDER_TYPES = ("ubuntu", "ubuntu-iso")

#: Provisioner types understood by the build pipeline.
PROVISIONER_TYPES = ("file", "shell", "preseed")


class Template:
    """A validated disk-image recipe.

    ``builder`` example::

        {"type": "ubuntu", "distro": "ubuntu-18.04", "image_name": "parsec"}

    ``provisioners`` example::

        [{"type": "preseed", "hostname": "gem5"},
         {"type": "file", "destination": "/home/gem5/run.sh",
          "content": "...", "executable": True},
         {"type": "shell", "inline": ["install-package parsec-deps",
                                      "build-benchmark parsec ferret"]}]
    """

    def __init__(
        self,
        builder: Dict[str, Any],
        provisioners: Optional[List[Dict[str, Any]]] = None,
        variables: Optional[Dict[str, str]] = None,
    ):
        self.builder = dict(builder)
        self.provisioners = [dict(p) for p in (provisioners or [])]
        self.variables = dict(variables or {})
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ValidationError` on any malformed section."""
        builder_type = self.builder.get("type")
        if builder_type not in BUILDER_TYPES:
            raise ValidationError(
                f"unknown builder type {builder_type!r}; "
                f"expected one of {BUILDER_TYPES}"
            )
        if "distro" not in self.builder:
            raise ValidationError("builder needs a 'distro' key")
        if "image_name" not in self.builder:
            raise ValidationError("builder needs an 'image_name' key")
        if builder_type == "ubuntu-iso" and "iso_path" not in self.builder:
            raise ValidationError(
                "ubuntu-iso builder needs 'iso_path' (licensed media is "
                "never distributed; the user must supply their own .iso)"
            )
        for index, provisioner in enumerate(self.provisioners):
            kind = provisioner.get("type")
            if kind not in PROVISIONER_TYPES:
                raise ValidationError(
                    f"provisioner #{index}: unknown type {kind!r}"
                )
            if kind == "file":
                if "destination" not in provisioner:
                    raise ValidationError(
                        f"provisioner #{index}: file needs 'destination'"
                    )
                if "content" not in provisioner:
                    raise ValidationError(
                        f"provisioner #{index}: file needs 'content'"
                    )
            if kind == "shell" and "inline" not in provisioner:
                raise ValidationError(
                    f"provisioner #{index}: shell needs 'inline' commands"
                )

    def substitute(self, text: str) -> str:
        """Expand ``{{var}}`` references from the template variables."""
        for key, value in self.variables.items():
            text = text.replace("{{" + key + "}}", value)
        return text

    # ------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, Any]:
        return {
            "builder": self.builder,
            "provisioners": self.provisioners,
            "variables": self.variables,
        }

    def canonical_json(self) -> str:
        return canonical_dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Template":
        data = loads(text)
        if not isinstance(data, dict) or "builder" not in data:
            raise ValidationError("template JSON must contain 'builder'")
        return cls(
            builder=data["builder"],
            provisioners=data.get("provisioners", []),
            variables=data.get("variables", {}),
        )
