"""Base-image builders.

A builder produces the pristine OS userland a template's provisioners then
customize.  The ``ubuntu`` builder synthesizes the base image directly from
the distro model; the ``ubuntu-iso`` builder additionally demands the caller
supply installation media, modelling the licensing rule gem5-resources
applies to proprietary content (SPEC): recipes ship, media does not.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.common.errors import ValidationError
from repro.guest.distros import UbuntuRelease, get_distro
from repro.vfs.image import DiskImage

#: Standard user account created in every gem5-resources image.
GUEST_USER = "gem5"


def build_base_image(builder: Dict[str, Any]) -> DiskImage:
    """Dispatch to the builder named by ``builder['type']``."""
    builder_type = builder["type"]
    if builder_type == "ubuntu":
        return _build_ubuntu(builder)
    if builder_type == "ubuntu-iso":
        return _build_ubuntu_iso(builder)
    raise ValidationError(f"unknown builder type {builder_type!r}")


def _build_ubuntu(builder: Dict[str, Any]) -> DiskImage:
    distro = get_distro(builder["distro"])
    image = DiskImage(
        name=builder["image_name"],
        metadata={
            "distro": distro.key,
            "distro_version": distro.version,
            "kernel": distro.kernel_version,
            "compiler": distro.compiler.key,
            "init_instructions": distro.init_instructions,
            "packages": list(distro.base_packages),
            "benchmarks": [],
        },
    )
    _populate_userland(image, distro)
    return image


def _build_ubuntu_iso(builder: Dict[str, Any]) -> DiskImage:
    iso_path = builder.get("iso_path")
    if not iso_path:
        raise ValidationError("ubuntu-iso builder requires 'iso_path'")
    image = _build_ubuntu(builder)
    image.metadata["installed_from_iso"] = iso_path
    return image


def _populate_userland(image: DiskImage, distro: UbuntuRelease) -> None:
    """Lay out the minimal filesystem the simulator's boot sequencer and
    the m5-style run scripts expect."""
    image.write_file(
        "/etc/os-release",
        (
            f"NAME={distro.name}\n"
            f"VERSION_ID={distro.version}\n"
            f"VERSION_CODENAME={distro.codename}\n"
        ),
    )
    image.write_file("/etc/hostname", "gem5-guest\n")
    image.write_file(
        "/sbin/init",
        f"# systemd stub for {distro.key}\n",
        executable=True,
    )
    compiler = distro.compiler
    image.write_file(
        f"/usr/bin/{compiler.name}",
        f"# {compiler.name} {compiler.version}\n",
        executable=True,
    )
    image.mkdir(f"/home/{GUEST_USER}")
    for package in distro.base_packages:
        image.write_file(
            f"/var/lib/dpkg/info/{package}.list", f"{package}\n"
        )
