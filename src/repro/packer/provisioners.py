"""Provisioner steps applied to a base image.

Three step kinds, mirroring the gem5-resources Packer scripts:

- ``file`` — upload a file into the image;
- ``preseed`` — record the unattended-install answers (hostname, user,
  locale) the real Packer flow feeds the Ubuntu installer;
- ``shell`` — run a small command language against the image.  The language
  covers what the real benchmark-install scripts do: make directories,
  write files, install packages, chmod, and *build benchmarks with the
  image's own toolchain* (the step that makes the compiler → instruction
  count causal chain real).
"""

from __future__ import annotations

import shlex
from typing import Any, Dict, List

from repro.common.errors import ValidationError
from repro.common.hashing import md5_text
from repro.guest.compilers import get_compiler
from repro.packer.builders import GUEST_USER
from repro.vfs.image import DiskImage


def apply_provisioner(
    image: DiskImage, provisioner: Dict[str, Any], log: List[str]
) -> None:
    """Apply one provisioner step, appending human-readable log lines."""
    kind = provisioner["type"]
    if kind == "file":
        _apply_file(image, provisioner, log)
    elif kind == "preseed":
        _apply_preseed(image, provisioner, log)
    elif kind == "shell":
        for command in provisioner["inline"]:
            _run_shell_command(image, command, log)
    else:
        raise ValidationError(f"unknown provisioner type {kind!r}")


def _apply_file(image, provisioner, log) -> None:
    destination = provisioner["destination"]
    image.write_file(
        destination,
        provisioner["content"],
        executable=bool(provisioner.get("executable", False)),
    )
    log.append(f"file: wrote {destination}")


def _apply_preseed(image, provisioner, log) -> None:
    hostname = provisioner.get("hostname", "gem5-guest")
    username = provisioner.get("username", GUEST_USER)
    locale = provisioner.get("locale", "en_US.UTF-8")
    content = (
        f"d-i netcfg/get_hostname string {hostname}\n"
        f"d-i passwd/username string {username}\n"
        f"d-i debian-installer/locale string {locale}\n"
        "d-i pkgsel/include string openssh-server build-essential\n"
    )
    image.write_file("/preseed.cfg", content)
    image.metadata["preseed"] = {
        "hostname": hostname,
        "username": username,
        "locale": locale,
    }
    log.append(f"preseed: hostname={hostname} user={username}")


def _run_shell_command(image: DiskImage, command: str, log: List[str]):
    """Interpret one command of the provisioning shell language."""
    words = shlex.split(command)
    if not words:
        return
    verb = words[0]
    if verb == "mkdir":
        args = [w for w in words[1:] if w != "-p"]
        if len(args) != 1:
            raise ValidationError(f"mkdir takes one path: {command!r}")
        image.mkdir(args[0])
        log.append(f"shell: mkdir {args[0]}")
    elif verb == "echo":
        _shell_echo(image, words[1:], command, log)
    elif verb == "chmod":
        if len(words) != 3 or words[1] != "+x":
            raise ValidationError(f"chmod supports '+x PATH': {command!r}")
        content = image.read_file(words[2])
        image.write_file(words[2], content, executable=True)
        log.append(f"shell: chmod +x {words[2]}")
    elif verb == "install-package":
        if len(words) != 2:
            raise ValidationError(
                f"install-package takes one name: {command!r}"
            )
        _install_package(image, words[1], log)
    elif verb == "build-benchmark":
        if len(words) != 3:
            raise ValidationError(
                f"build-benchmark takes SUITE APP: {command!r}"
            )
        build_benchmark(image, suite=words[1], app=words[2], log=log)
    else:
        raise ValidationError(
            f"unsupported provisioning command {verb!r} in {command!r}"
        )


def _shell_echo(image, args, command, log) -> None:
    if len(args) < 3 or args[-2] != ">":
        raise ValidationError(
            f"echo must be 'echo TEXT > PATH': {command!r}"
        )
    text = " ".join(args[:-2])
    path = args[-1]
    image.write_file(path, text + "\n")
    log.append(f"shell: echo > {path}")


def _install_package(image: DiskImage, package: str, log: List[str]):
    packages = image.metadata.setdefault("packages", [])
    if package not in packages:
        packages.append(package)
    image.write_file(f"/var/lib/dpkg/info/{package}.list", f"{package}\n")
    log.append(f"shell: install-package {package}")


def build_benchmark(
    image: DiskImage, suite: str, app: str, log: List[str]
) -> str:
    """Compile a benchmark inside the image with its own toolchain.

    Produces a deterministic pseudo-binary whose content depends on
    (suite, app, compiler) — rebuild the image on a different distro and
    the benchmark binary, hence the image hash, changes.  Records the build
    in image metadata for the workload layer to discover at run time.
    """
    compiler_key = image.metadata.get("compiler")
    if compiler_key is None:
        raise ValidationError(
            "image metadata lacks 'compiler'; was a base builder run?"
        )
    compiler = get_compiler(compiler_key)
    path = f"/home/{GUEST_USER}/{suite}/{app}"
    body = md5_text(f"{suite}/{app}/built-with/{compiler.key}") * 8
    image.write_file(
        path,
        f"#!ELF {suite}:{app} cc={compiler.key}\n{body}",
        executable=True,
    )
    builds = image.metadata.setdefault("benchmarks", [])
    entry = {"suite": suite, "app": app, "compiler": compiler.key}
    if entry not in builds:
        builds.append(entry)
    log.append(f"shell: build-benchmark {suite}/{app} ({compiler.key})")
    return path
