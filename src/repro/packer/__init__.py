"""A declarative disk-image builder — the Packer substitute.

gem5-resources builds every disk image with Packer: a JSON template names a
builder (which installs the base OS, driven by a preseed file) and a list of
provisioners (file uploads and shell scripts that install benchmarks).  This
package reproduces that pipeline against the virtual filesystem:

- :class:`Template` — the validated recipe,
- builders — produce a base :class:`~repro.vfs.DiskImage` for a distro,
- provisioners — file/shell/preseed steps applied to the image,
- :func:`build` — run a template end to end, returning the image and a
  build log.

Builds are fully deterministic: the same template yields a bit-identical
image (and therefore the same artifact hash), which is the property the
paper's reproducibility story rests on.
"""

from repro.packer.template import Template
from repro.packer.build import build, BuildResult

__all__ = ["Template", "build", "BuildResult"]
