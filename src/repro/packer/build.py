"""Template execution: base image + provisioners → finished disk image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.packer.builders import build_base_image
from repro.packer.provisioners import apply_provisioner
from repro.packer.template import Template


@dataclass
class BuildResult:
    """Output of one packer build."""

    image: "DiskImage"
    log: List[str] = field(default_factory=list)

    @property
    def image_hash(self) -> str:
        return self.image.content_hash()


def build(template: Template) -> BuildResult:
    """Run a template: build the base image, apply each provisioner in
    order (with ``{{var}}`` substitution), and stamp the template hash
    into the image for provenance."""
    template.validate()
    log: List[str] = []
    image = build_base_image(template.builder)
    log.append(
        f"builder: {template.builder['type']} -> "
        f"{template.builder['distro']}"
    )
    for provisioner in template.provisioners:
        apply_provisioner(
            image, _substitute(template, provisioner), log
        )
    image.metadata["packer_template_hash"] = _template_hash(template)
    log.append(f"done: image hash {image.content_hash()}")
    return BuildResult(image=image, log=log)


def _substitute(template: Template, provisioner: dict) -> dict:
    """Expand template variables in every string field of a provisioner
    (including each inline shell command)."""
    expanded = {}
    for key, value in provisioner.items():
        if isinstance(value, str):
            expanded[key] = template.substitute(value)
        elif isinstance(value, list):
            expanded[key] = [
                template.substitute(item) if isinstance(item, str) else item
                for item in value
            ]
        else:
            expanded[key] = value
    return expanded


def _template_hash(template: Template) -> str:
    from repro.common.hashing import md5_text

    return md5_text(template.canonical_json())
