"""repro — a full reproduction of "Enabling Reproducible and Agile
Full-System Simulation" (Bruce et al., ISPASS 2021).

The package tree mirrors the paper's architecture:

- :mod:`repro.art` — **gem5art**, the paper's primary contribution:
  artifact registration, run objects, and task execution;
- :mod:`repro.resources` — **gem5-resources**, the Table I catalog;
- :mod:`repro.sim` — the full-system simulator substrate (the gem5
  substitute) with CPU/memory models, boot sequencing, and the fault model
  behind the Fig 8 boot tests;
- :mod:`repro.gpu` — the GCN3-class GPU model with the simple/dynamic
  register allocators of Fig 9;
- :mod:`repro.db`, :mod:`repro.scheduler`, :mod:`repro.vfs`,
  :mod:`repro.packer`, :mod:`repro.guest` — the MongoDB, Celery, disk
  image, Packer, and guest-software substrates;
- :mod:`repro.pipeline` — one-click reproduction DAGs: declarative
  manifests, content-addressed stage outputs, validation gates, and
  bounded backtracking behind ``repro reproduce``;
- :mod:`repro.analysis` — query/series/chart helpers for regenerating the
  paper's tables and figures.

Quick start::

    from repro.art import (ArtifactDB, Gem5Run, register_gem5_binary,
                           register_kernel_binary, register_disk_image,
                           register_repo, run_job)
    from repro.resources import build_resource
    from repro.sim import Gem5Build
    from repro.guest import get_kernel

    db = ArtifactDB()
    repo = register_repo(db, "gem5")
    gem5 = register_gem5_binary(db, Gem5Build(), inputs=[repo])
    kernel = register_kernel_binary(db, get_kernel("4.15.18"))
    disk = register_disk_image(db, build_resource("parsec").image)
    run = Gem5Run.create_fs_run(db, gem5, repo, repo, kernel, disk,
                                benchmark="ferret")
    print(run_job(run)["workload_seconds"])
"""

__version__ = "1.0.0"

__all__ = [
    "art",
    "resources",
    "sim",
    "gpu",
    "db",
    "scheduler",
    "vfs",
    "packer",
    "guest",
    "pipeline",
    "analysis",
    "common",
]
