"""Seed-driven chaos engineering for the experiment stack.

The resilience contract of this codebase — retries with backoff, task
leases, crash-resumable experiments, content-verified blobs — is only
credible if every recovery path is *exercised*.  This package provides the
exerciser: a deterministic fault injector whose failure schedule is a pure
function of a seed, so any failure a chaos test provokes can be replayed
exactly from ``(seed, rules)`` alone.  Reproducibility includes
reproducing what happens when infrastructure fails.

Failure points currently wired into production code:

======================  ====================================================
point                   fired
======================  ====================================================
``filestore.put``       before a blob write (:meth:`FileStore.put_bytes`)
``filestore.get``       before a blob read (:meth:`FileStore.get_bytes`)
``backend.transition``  before a task state transition is applied
``task.execute``        on the worker thread, before a task attempt
``task.run``            on the task helper thread, inside the task body
``run.status``          before a run document status update
``wal.append``          before a WAL record is written (crash here =
                        write accepted but never logged, so never
                        acknowledged)
``segment.seal``        before the active WAL is renamed into a segment
``compact.publish``     before a compacted snapshot is renamed into
                        place (crash = only a ``*.tmp`` left behind)
``compact.manifest``    after the compacted snapshot is renamed but
                        before the manifest republish (crash = an
                        unreferenced ``compact-*.seg``, swept on open)
======================  ====================================================

Usage::

    from repro import chaos

    rules = [chaos.FaultRule("task.execute", action="crash", times=1)]
    with chaos.injected(seed=7, rules=rules) as injector:
        ...  # first task attempt kills its worker; recovery must kick in
    assert injector.report()  # what fired, deterministically
"""

from repro.chaos.injector import (
    ACTIONS,
    ChaosInjector,
    FaultRule,
    WorkerCrashed,
    active,
    fire,
    injected,
    install,
    uninstall,
)

__all__ = [
    "ACTIONS",
    "ChaosInjector",
    "FaultRule",
    "WorkerCrashed",
    "active",
    "fire",
    "injected",
    "install",
    "uninstall",
]
