"""Deterministic, seed-driven fault injection.

Production code declares *failure points* by calling :func:`fire` at the
places where real infrastructure fails — filestore writes, database state
transitions, task execution, worker loops.  With no injector installed the
call is two attribute lookups; with one installed, the injector consults
its rules and either does nothing, sleeps (``delay``), raises a
:class:`~repro.common.errors.FaultInjectedError` (``raise``), or raises
:class:`WorkerCrashed` (``crash`` — simulating the death of the executing
thread/process).

Determinism is the whole point: every probabilistic decision draws from a
per-rule :class:`~repro.common.rng.RngStream` derived from the injector
seed, so two runs with the same seed, rules, and call sequence inject the
same faults at the same points.  The chaos test suite relies on this to
replay a failure schedule bit-for-bit from nothing but a seed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import FaultInjectedError, ValidationError
from repro.common.rng import RngStream

#: Actions a rule may take when it fires.
ACTIONS = ("raise", "crash", "delay")


class WorkerCrashed(BaseException):
    """A simulated worker death.

    Deliberately *not* a :class:`~repro.common.errors.ReproError` (nor even
    an :class:`Exception`): a crashed worker must not be rescued by the
    ordinary ``except Exception`` task-failure handling — it has to escape
    all the way out of the worker loop, exactly as a killed process would
    simply stop executing.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, and how often.

    ``point`` matches a failure-point name exactly, or by prefix when it
    ends with ``*`` (``"filestore.*"``).  ``match`` optionally restricts
    firing to calls whose context carries the given key/value pairs
    (values compared as strings).  ``after`` skips the first N matching
    calls and ``times`` caps how often the rule fires; ``probability``
    gates each eligible call through the rule's seeded stream.
    """

    point: str
    action: str = "raise"
    probability: float = 1.0
    times: Optional[int] = None
    after: int = 0
    delay: float = 0.0
    error: str = "injected fault"
    match: Optional[Dict[str, Any]] = None

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValidationError(
                f"unknown chaos action {self.action!r}; one of {ACTIONS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError("probability must be within [0, 1]")
        if self.after < 0 or (self.times is not None and self.times < 0):
            raise ValidationError("after/times must be non-negative")
        if self.delay < 0:
            raise ValidationError("delay must be non-negative")

    def matches(self, point: str, context: Dict[str, Any]) -> bool:
        if self.point.endswith("*"):
            if not point.startswith(self.point[:-1]):
                return False
        elif point != self.point:
            return False
        for key, value in (self.match or {}).items():
            if key not in context or str(context[key]) != str(value):
                return False
        return True


@dataclass
class _RuleState:
    """Mutable per-rule bookkeeping (the rule itself stays frozen)."""

    rule: FaultRule
    stream: RngStream
    seen: int = 0
    fired: int = 0


class ChaosInjector:
    """A seeded set of fault rules plus the log of what actually fired."""

    def __init__(self, seed: int, rules: Sequence[FaultRule] = ()):
        self.seed = seed
        self._lock = threading.Lock()
        self._states: List[_RuleState] = [
            _RuleState(
                rule=rule,
                stream=RngStream(seed, "chaos", str(index), rule.point),
            )
            for index, rule in enumerate(rules)
        ]
        self._log: List[Dict[str, Any]] = []

    # ------------------------------------------------------------ firing

    def fire(self, point: str, **context: Any) -> None:
        """Evaluate every rule against this failure-point call.

        At most one fault is raised per call (the first rule that decides
        to fire); ``delay`` rules sleep and let evaluation continue.
        """
        pending: Optional[Tuple[FaultRule, Dict[str, Any]]] = None
        sleep_for = 0.0
        with self._lock:
            for state in self._states:
                rule = state.rule
                if not rule.matches(point, context):
                    continue
                state.seen += 1
                if state.seen <= rule.after:
                    continue
                if rule.times is not None and state.fired >= rule.times:
                    continue
                if rule.probability < 1.0:
                    # Draw even when the outcome is predetermined by the
                    # counters above?  No — draws happen only for calls
                    # that reached the probability gate, so the stream
                    # position is a pure function of the eligible-call
                    # sequence and replays stay aligned.
                    if state.stream.random() > rule.probability:
                        continue
                state.fired += 1
                entry = {
                    "point": point,
                    "action": rule.action,
                    "rule": rule.point,
                    "context": {k: str(v) for k, v in context.items()},
                }
                self._log.append(entry)
                if rule.action == "delay":
                    sleep_for += rule.delay
                    continue
                pending = (rule, entry)
                break
        if sleep_for > 0:
            time.sleep(sleep_for)
        if pending is not None:
            rule, entry = pending
            if rule.action == "crash":
                raise WorkerCrashed(f"{point}: {rule.error}")
            raise FaultInjectedError(f"{point}: {rule.error}")

    # ----------------------------------------------------------- reports

    def log(self) -> List[Dict[str, Any]]:
        """Every fault fired so far, in firing order."""
        with self._lock:
            return [dict(entry) for entry in self._log]

    def report(self) -> Dict[str, Dict[str, int]]:
        """Deterministic summary: per rule, calls seen and faults fired."""
        with self._lock:
            out: Dict[str, Dict[str, int]] = {}
            for index, state in enumerate(self._states):
                key = f"{index}:{state.rule.point}:{state.rule.action}"
                out[key] = {"seen": state.seen, "fired": state.fired}
            return out


# ------------------------------------------------------ global installation

_install_lock = threading.Lock()
_injector: Optional[ChaosInjector] = None


def install(injector: ChaosInjector) -> ChaosInjector:
    """Make ``injector`` the process-wide injector (one at a time)."""
    global _injector
    with _install_lock:
        if _injector is not None:
            raise ValidationError("a chaos injector is already installed")
        _injector = injector
    return injector


def uninstall() -> None:
    global _injector
    with _install_lock:
        _injector = None


def active() -> Optional[ChaosInjector]:
    return _injector


def fire(point: str, **context: Any) -> None:
    """Failure-point hook for production code; no-op unless installed."""
    injector = _injector
    if injector is not None:
        injector.fire(point, **context)


@contextmanager
def injected(
    seed: int, rules: Sequence[FaultRule]
) -> Iterator[ChaosInjector]:
    """Install a fresh injector for the duration of a ``with`` block."""
    injector = install(ChaosInjector(seed, rules))
    try:
        yield injector
    finally:
        uninstall()
