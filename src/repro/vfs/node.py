"""VFS node types: files and directories."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Union

from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.common.hashing import md5_bytes


class VirtualFile:
    """A file in the virtual filesystem: bytes plus an executable flag."""

    def __init__(self, content: bytes = b"", executable: bool = False):
        if not isinstance(content, bytes):
            raise ValidationError("file content must be bytes")
        self.content = content
        self.executable = executable

    @property
    def size(self) -> int:
        return len(self.content)

    def content_hash(self) -> str:
        return md5_bytes(self.content)

    def to_dict(self) -> dict:
        return {
            "kind": "file",
            "content": self.content,
            "executable": self.executable,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VirtualFile":
        return cls(
            content=data["content"], executable=data.get("executable", False)
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, VirtualFile)
            and self.content == other.content
            and self.executable == other.executable
        )

    def __repr__(self) -> str:
        return f"VirtualFile({self.size} bytes)"


class VirtualDirectory:
    """A directory: a name → node mapping."""

    def __init__(self):
        self.children: Dict[str, Union[VirtualFile, "VirtualDirectory"]] = {}

    def get(self, name: str):
        if name not in self.children:
            raise NotFoundError(f"no entry named {name!r}")
        return self.children[name]

    def add(self, name: str, node) -> None:
        if "/" in name or name in ("", ".", ".."):
            raise ValidationError(f"invalid entry name: {name!r}")
        if name in self.children:
            raise StateError(f"entry {name!r} already exists")
        self.children[name] = node

    def remove(self, name: str) -> None:
        if name not in self.children:
            raise NotFoundError(f"no entry named {name!r}")
        del self.children[name]

    def names(self):
        return sorted(self.children)

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, VirtualFile]]:
        """Yield (path, file) pairs for every file under this directory,
        in sorted order for determinism."""
        for name in self.names():
            node = self.children[name]
            path = f"{prefix}/{name}"
            if isinstance(node, VirtualFile):
                yield path, node
            else:
                yield from node.walk(prefix=path)

    def to_dict(self) -> dict:
        return {
            "kind": "dir",
            "children": {
                name: node.to_dict() for name, node in self.children.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VirtualDirectory":
        directory = cls()
        for name, child in data.get("children", {}).items():
            if child["kind"] == "file":
                directory.children[name] = VirtualFile.from_dict(child)
            else:
                directory.children[name] = VirtualDirectory.from_dict(child)
        return directory

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, VirtualDirectory)
            and self.children == other.children
        )

    def __repr__(self) -> str:
        return f"VirtualDirectory({len(self.children)} entries)"
