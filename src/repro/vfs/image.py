"""The disk image: a virtual filesystem tree plus provenance metadata.

A :class:`DiskImage` is what Packer builds, what gem5art registers as a
``disk image`` artifact, and what the simulator mounts when booting a full
system.  Its content hash covers both the file tree and the metadata, so two
images built from the same recipe hash identically while any change — a new
package, a different compiler — produces a new artifact.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import NotFoundError, ValidationError
from repro.common.hashing import md5_text
from repro.common.jsonutil import canonical_dumps, dumps, loads
from repro.vfs.node import VirtualDirectory, VirtualFile
from repro.vfs.path import dirname, normalize, split


class DiskImage:
    """A mountable, serializable virtual disk.

    ``metadata`` records the recipe-level facts the guest model needs at
    boot: the distribution name/version, the installed kernel version, the
    compiler that built the payload benchmarks, and arbitrary extra keys
    provisioners choose to record.
    """

    def __init__(self, name: str, metadata: Optional[Dict[str, Any]] = None):
        if not name:
            raise ValidationError("disk image needs a name")
        self.name = name
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self.root = VirtualDirectory()
        # Canonical serialization of the tree, memoized because restore
        # compatibility checks hash the (large, rarely changing) tree on
        # every run.  Only the tree is cached — metadata is a plain dict
        # callers may mutate directly, so the final digest is cached
        # alongside a snapshot of the metadata it was computed from and
        # revalidated by equality on every call.
        self._tree_json: Optional[str] = None
        self._hash_cache: Optional[str] = None
        self._hash_snapshot: Optional[Tuple[str, str]] = None

    # -------------------------------------------------------------- files

    def write_file(
        self, path: str, content, executable: bool = False
    ) -> None:
        """Create or overwrite a file, creating parent directories."""
        if isinstance(content, str):
            content = content.encode("utf-8")
        directory = self._ensure_directory(dirname(path))
        name = split(path)[-1]
        directory.children[name] = VirtualFile(
            content=content, executable=executable
        )
        self._tree_json = None

    def read_file(self, path: str) -> bytes:
        node = self._resolve(path)
        if not isinstance(node, VirtualFile):
            raise ValidationError(f"{path} is a directory")
        return node.content

    def read_text(self, path: str) -> str:
        return self.read_file(path).decode("utf-8")

    def exists(self, path: str) -> bool:
        try:
            self._resolve(path)
            return True
        except NotFoundError:
            return False

    def is_executable(self, path: str) -> bool:
        node = self._resolve(path)
        return isinstance(node, VirtualFile) and node.executable

    def mkdir(self, path: str) -> None:
        self._ensure_directory(path)
        self._tree_json = None

    def remove(self, path: str) -> None:
        segments = split(path)
        if not segments:
            raise ValidationError("cannot remove the root")
        parent = self._resolve("/" + "/".join(segments[:-1]))
        parent.remove(segments[-1])
        self._tree_json = None

    def listdir(self, path: str = "/") -> List[str]:
        node = self._resolve(path)
        if isinstance(node, VirtualFile):
            raise ValidationError(f"{path} is a file")
        return node.names()

    def walk(self) -> Iterator[Tuple[str, VirtualFile]]:
        """Yield every (absolute path, file) pair, deterministically."""
        return self.root.walk()

    def file_count(self) -> int:
        return sum(1 for _ in self.walk())

    def total_size(self) -> int:
        return sum(node.size for _, node in self.walk())

    def _resolve(self, path: str):
        node = self.root
        for segment in split(path):
            if isinstance(node, VirtualFile):
                raise NotFoundError(f"{path}: not a directory")
            if segment not in node.children:
                raise NotFoundError(f"no such path: {normalize(path)}")
            node = node.children[segment]
        return node

    def _ensure_directory(self, path: str) -> VirtualDirectory:
        node = self.root
        for segment in split(path):
            child = node.children.get(segment)
            if child is None:
                child = VirtualDirectory()
                node.children[segment] = child
            if isinstance(child, VirtualFile):
                raise ValidationError(
                    f"{path}: {segment!r} is a file, not a directory"
                )
            node = child
        return node

    # ----------------------------------------------------------- identity

    def content_hash(self) -> str:
        """MD5 over the canonical serialization (tree + metadata).

        Splices the memoized tree serialization into the canonical form
        of the full document.  ``canonical_dumps`` is compositional
        (recursive encode/normalize, per-dict key sort), so the spliced
        string is byte-identical to ``canonical_dumps(self.to_dict())``
        — the keys below appear in their sorted order.
        """
        if self._tree_json is None:
            self._tree_json = canonical_dumps(self.root.to_dict())
            self._hash_cache = None
        # repr() is a faithful fingerprint for JSON-ish metadata (it
        # distinguishes True/1/1.0 where dict equality does not) and is
        # far cheaper than canonical serialization; an order-only repr
        # difference merely causes a recompute.
        snapshot = (self.name, repr(self.metadata))
        if self._hash_cache is not None and self._hash_snapshot == snapshot:
            return self._hash_cache
        self._hash_cache = md5_text(
            '{"metadata":%s,"name":%s,"root":%s}'
            % (
                canonical_dumps(self.metadata),
                canonical_dumps(self.name),
                self._tree_json,
            )
        )
        self._hash_snapshot = snapshot
        return self._hash_cache

    # ------------------------------------------------------ serialization

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metadata": self.metadata,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiskImage":
        image = cls(name=data["name"], metadata=data.get("metadata", {}))
        image.root = VirtualDirectory.from_dict(data["root"])
        image._tree_json = None
        return image

    def save(self, path: str) -> None:
        """Persist the image as a JSON file on the host."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str) -> "DiskImage":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(loads(handle.read()))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DiskImage)
            and self.name == other.name
            and self.metadata == other.metadata
            and self.root == other.root
        )

    def __repr__(self) -> str:
        return (
            f"DiskImage({self.name!r}, {self.file_count()} files, "
            f"{self.total_size()} bytes)"
        )
