"""Path handling for the virtual filesystem.

All VFS paths are absolute, ``/``-separated, with no ``.``/``..`` segments
after normalization.  Keeping this in one module means the image, packer and
simulator all agree on path identity.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ValidationError


def normalize(path: str) -> str:
    """Normalize a path to canonical absolute form.

    >>> normalize("usr//bin/./gcc")
    '/usr/bin/gcc'
    >>> normalize("/a/b/../c")
    '/a/c'
    """
    if not isinstance(path, str) or not path:
        raise ValidationError("path must be a non-empty string")
    parts: List[str] = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if not parts:
                raise ValidationError(f"path escapes root: {path!r}")
            parts.pop()
        else:
            parts.append(segment)
    return "/" + "/".join(parts)


def split(path: str) -> List[str]:
    """Return the path's segments; the root is the empty list."""
    normalized = normalize(path)
    if normalized == "/":
        return []
    return normalized[1:].split("/")


def join(base: str, *rest: str) -> str:
    """Join path fragments and normalize the result."""
    combined = base
    for fragment in rest:
        combined = combined.rstrip("/") + "/" + fragment
    return normalize(combined)


def basename(path: str) -> str:
    segments = split(path)
    return segments[-1] if segments else ""


def dirname(path: str) -> str:
    segments = split(path)
    if len(segments) <= 1:
        return "/"
    return "/" + "/".join(segments[:-1])
