"""A virtual filesystem and disk-image format.

Real gem5 experiments boot from multi-gigabyte qcow2/raw disk images holding
an OS userland and pre-installed benchmarks.  The reproduction replaces them
with :class:`DiskImage`: a serializable tree of virtual files plus metadata
describing what was installed.  The simulator "mounts" these images, the
packer builds them, and gem5art hashes them like any other artifact.
"""

from repro.vfs.path import normalize, split, join
from repro.vfs.node import VirtualFile, VirtualDirectory
from repro.vfs.image import DiskImage

__all__ = [
    "normalize",
    "split",
    "join",
    "VirtualFile",
    "VirtualDirectory",
    "DiskImage",
]
