"""Simulator build description.

gem5 is compiled from a source revision with a *static configuration* (ISA
and coherence-protocol selection baked in at scons time) into a simulator
binary.  :class:`Gem5Build` models that: it pins the version/revision and
static configuration and can emit a deterministic pseudo-binary for the
artifact layer to hash, matching Fig 3's registration example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.gitinfo import simulated_revision
from repro.common.hashing import md5_text

#: ISAs the builds in the paper target.
ISAS = ("X86", "ARM", "RISCV", "GCN3_X86")

#: Build variants gem5 supports (opt is used throughout the paper).
VARIANTS = ("opt", "fast", "debug")

#: The gem5 releases exercised by the paper's use cases.
KNOWN_VERSIONS = ("20.1.0.4", "21.0")

#: Upstream repository URL, recorded in artifact provenance.
GEM5_REPO_URL = "https://gem5.googlesource.com/public/gem5"

#: Timing-fidelity differences between simulator releases, as a
#: release-notes model: v21.0 corrected an undersized DRAM access cost in
#: v20.1's memory controller, so identical systems report slightly more
#: memory stall time on the newer release.  This is what lets users run
#: the cross-version comparison studies the paper's introduction calls
#: for ("preferably, compare how new versions of these components impact
#: performance").
VERSION_TIMING = {
    "20.1.0.4": {"memory_stall_scale": 1.00},
    "21.0": {"memory_stall_scale": 1.05},
}


def timing_profile(version: str) -> dict:
    """Per-release timing adjustments (identity for unknown versions)."""
    return dict(VERSION_TIMING.get(version, {"memory_stall_scale": 1.0}))


@dataclass(frozen=True)
class Gem5Build:
    """A (version, ISA, variant) static configuration of the simulator."""

    version: str = "20.1.0.4"
    isa: str = "X86"
    variant: str = "opt"

    def __post_init__(self):
        if self.isa not in ISAS:
            raise ValidationError(f"unknown ISA {self.isa!r}; one of {ISAS}")
        if self.variant not in VARIANTS:
            raise ValidationError(
                f"unknown variant {self.variant!r}; one of {VARIANTS}"
            )
        if not self.version:
            raise ValidationError("version must be non-empty")

    @property
    def binary_name(self) -> str:
        """E.g. ``build/X86/gem5.opt``, as in the paper's Fig 3."""
        return f"build/{self.isa}/gem5.{self.variant}"

    @property
    def revision(self) -> str:
        """The source revision this build pins (simulated, stable)."""
        return simulated_revision(GEM5_REPO_URL, f"v{self.version}")

    @property
    def supports_gpu(self) -> bool:
        return self.isa == "GCN3_X86"

    def scons_command(self, jobs: int = 8) -> str:
        """The build command an artifact registration would document."""
        return (
            f"cd gem5; git checkout {self.revision[:20]}; "
            f"scons {self.binary_name} -j{jobs}"
        )

    def build_binary(self) -> bytes:
        """Deterministic pseudo-binary for this static configuration."""
        header = (
            f"GEM5 {self.version} {self.isa} {self.variant} "
            f"rev={self.revision}\n"
        )
        body = md5_text(header) * 32
        return header.encode("ascii") + body.encode("ascii")
