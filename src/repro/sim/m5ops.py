"""The m5 pseudo-instruction interface.

Guest software communicates with gem5 through magic "m5 ops": ``m5 exit``
terminates the simulation (how every boot-exit run ends), ``m5
checkpoint`` snapshots state (the hack-back flow), and
``m5 resetstats`` / ``m5 dumpstats`` bracket a region of interest so that
statistics cover only the measured code.  gem5-resources' run scripts
place these around each benchmark's ROI.

:class:`M5OpLog` records the ops a simulated run fired, with their tick
timestamps, and computes ROI timing from reset/dump pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.common.units import TICKS_PER_SECOND

#: Op names, matching the m5 utility's subcommands.
M5_EXIT = "exit"
M5_CHECKPOINT = "checkpoint"
M5_RESETSTATS = "resetstats"
M5_DUMPSTATS = "dumpstats"
KNOWN_OPS = (M5_EXIT, M5_CHECKPOINT, M5_RESETSTATS, M5_DUMPSTATS)


@dataclass
class M5OpLog:
    """Ordered record of (tick, op) events from one simulation."""

    events: List[Tuple[int, str]] = field(default_factory=list)

    def fire(self, tick: int, op: str) -> None:
        if op not in KNOWN_OPS:
            raise ValidationError(
                f"unknown m5 op {op!r}; known: {KNOWN_OPS}"
            )
        if self.events and tick < self.events[-1][0]:
            raise ValidationError("m5 ops must fire in tick order")
        self.events.append((tick, op))

    def ops(self) -> List[str]:
        return [op for _tick, op in self.events]

    def roi_ticks(self) -> Optional[int]:
        """Ticks between the first resetstats and the next dumpstats,
        or None when no complete ROI was marked."""
        reset_tick = None
        for tick, op in self.events:
            if op == M5_RESETSTATS and reset_tick is None:
                reset_tick = tick
            elif op == M5_DUMPSTATS and reset_tick is not None:
                return tick - reset_tick
        return None

    def roi_seconds(self) -> Optional[float]:
        ticks = self.roi_ticks()
        if ticks is None:
            return None
        return ticks / TICKS_PER_SECOND

    def exited_cleanly(self) -> bool:
        """Whether the run ended with an ``m5 exit`` op."""
        return bool(self.events) and self.events[-1][1] == M5_EXIT

    def to_list(self) -> List[dict]:
        return [
            {"tick": tick, "op": op} for tick, op in self.events
        ]
