"""Runner for the 'gem5 tests' resource.

Table I's last row is a set of simulator self-tests (asmtest, insttest,
riscv-tests, simple/m5ops, square).  This module makes that resource
executable: each test drives a small, deterministic simulation against a
:class:`~repro.sim.buildinfo.Gem5Build` and checks an invariant.  Tests
whose required ISA does not match the build are *skipped* — the same
semantics the real test suite has when a binary lacks a static
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gpu.config import GPUConfig
from repro.gpu.device import GPUDevice
from repro.gpu.kernels import GPUKernel
from repro.resources.catalog import GEM5_TESTS, Gem5Test
from repro.sim.buildinfo import Gem5Build
from repro.sim.config import SystemConfig
from repro.sim.simulator import Gem5Simulator
from repro.sim.workload.phases import Phase, Workload


@dataclass(frozen=True)
class TestOutcome:
    """Result of one gem5 self-test run."""

    #: Tell pytest this is a result record, not a test class to collect.
    __test__ = False

    test_name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status == "pass"


def _tiny_workload(name: str, instructions: int = 100_000) -> Workload:
    return Workload(
        name=name,
        phases=(
            Phase(
                name="test",
                instructions=instructions,
                parallelism=1,
                working_set_bytes=64 * 1024,
                locality=0.95,
            ),
        ),
    )


def _check_se_determinism(build: Gem5Build, label: str) -> TestOutcome:
    """Run a tiny SE-mode workload twice; identical results == pass."""
    simulator = Gem5Simulator(build, SystemConfig(cpu_type="atomic"))
    first = simulator.run_se(_tiny_workload(label))
    second = simulator.run_se(_tiny_workload(label))
    if not first.ok or not second.ok:
        return TestOutcome(label, "fail", "SE run did not complete")
    if first.sim_seconds != second.sim_seconds:
        return TestOutcome(label, "fail", "non-deterministic timing")
    if first.instructions != 100_000:
        return TestOutcome(
            label, "fail",
            f"retired {first.instructions} instructions, expected 100000",
        )
    return TestOutcome(label, "pass")


def _check_m5ops(build: Gem5Build) -> TestOutcome:
    """The 'simple' test: m5 exit must terminate a run cleanly.

    Modelled as: a zero-benchmark FS boot (which ends with the exit op)
    completes with OK status and positive simulated time.
    """
    from repro.resources.catalog import build_resource

    simulator = Gem5Simulator(build, SystemConfig(cpu_type="atomic"))
    image = build_resource("boot-exit").image
    if not image.exists("/home/gem5/exit.sh"):
        return TestOutcome("simple", "fail", "exit script missing")
    result = simulator.run_fs("5.4.49", image, boot_type="init")
    if not result.ok or result.sim_seconds <= 0:
        return TestOutcome("simple", "fail", "boot-exit did not finish")
    return TestOutcome("simple", "pass")


def _check_square(build: Gem5Build) -> TestOutcome:
    """The 'square' test: square a vector of floats on the GPU model.

    Checks that a trivial kernel executes under both register allocators
    with identical occupancy-1 timing (one workgroup cannot differ).
    """
    device = GPUDevice(GPUConfig())
    kernel = GPUKernel(
        name="square",
        num_workgroups=1,
        instructions_per_wavefront=256,
        vregs_per_wavefront=16,
        memory_intensity=0.25,
        dependency_density=0.1,
    )
    simple = device.execute(kernel, "simple")
    dynamic = device.execute(kernel, "dynamic")
    if simple.shader_ticks <= 0:
        return TestOutcome("square", "fail", "kernel did not execute")
    if simple.shader_ticks != dynamic.shader_ticks:
        return TestOutcome(
            "square", "fail",
            "single-workgroup kernel timing differs between allocators",
        )
    return TestOutcome("square", "pass")


def run_gem5_test(build: Gem5Build, test: Gem5Test) -> TestOutcome:
    """Run one entry of the gem5-tests resource against a build."""
    if test.requires_isa is not None and build.isa != test.requires_isa:
        return TestOutcome(
            test.name,
            "skip",
            f"requires a {test.requires_isa} build (got {build.isa})",
        )
    if test.name in ("asmtest", "riscv-tests", "insttest"):
        return _check_se_determinism(build, test.name)
    if test.name == "simple":
        return _check_m5ops(build)
    if test.name == "square":
        return _check_square(build)
    return TestOutcome(test.name, "fail", "unknown test")


def run_test_suite(build: Gem5Build) -> List[TestOutcome]:
    """Run every gem5 self-test appropriate for a build."""
    return [run_gem5_test(build, test) for test in GEM5_TESTS]
