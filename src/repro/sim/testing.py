"""Runner for the 'gem5 tests' resource.

Table I's last row is a set of simulator self-tests (asmtest, insttest,
riscv-tests, simple/m5ops, square).  This module makes that resource
executable: each test drives a small, deterministic simulation against a
:class:`~repro.sim.buildinfo.Gem5Build` and checks an invariant.  Tests
whose required ISA does not match the build are *skipped* — the same
semantics the real test suite has when a binary lacks a static
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gpu.config import GPUConfig
from repro.gpu.device import GPUDevice
from repro.gpu.kernels import GPUKernel
# This module is the one sanctioned exception to sim's layer: it
# *executes* the "gem5 tests" resource, so it needs the catalog, and it
# cannot move up a layer because procpool envelopes address its
# functions by dotted path ("repro.sim.testing:boot_shard_job").
from repro.resources.catalog import GEM5_TESTS, Gem5Test  # repro: noqa[ARCH-LAYER]
from repro.sim.buildinfo import Gem5Build
from repro.sim.config import SystemConfig
from repro.sim.simulator import Gem5Simulator
from repro.sim.workload.phases import Phase, Workload


@dataclass(frozen=True)
class TestOutcome:
    """Result of one gem5 self-test run."""

    #: Tell pytest this is a result record, not a test class to collect.
    __test__ = False

    test_name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status == "pass"


def _tiny_workload(name: str, instructions: int = 100_000) -> Workload:
    return Workload(
        name=name,
        phases=(
            Phase(
                name="test",
                instructions=instructions,
                parallelism=1,
                working_set_bytes=64 * 1024,
                locality=0.95,
            ),
        ),
    )


def _check_se_determinism(build: Gem5Build, label: str) -> TestOutcome:
    """Run a tiny SE-mode workload twice; identical results == pass."""
    simulator = Gem5Simulator(build, SystemConfig(cpu_type="atomic"))
    first = simulator.run_se(_tiny_workload(label))
    second = simulator.run_se(_tiny_workload(label))
    if not first.ok or not second.ok:
        return TestOutcome(label, "fail", "SE run did not complete")
    if first.sim_seconds != second.sim_seconds:
        return TestOutcome(label, "fail", "non-deterministic timing")
    if first.instructions != 100_000:
        return TestOutcome(
            label, "fail",
            f"retired {first.instructions} instructions, expected 100000",
        )
    return TestOutcome(label, "pass")


def _check_m5ops(build: Gem5Build) -> TestOutcome:
    """The 'simple' test: m5 exit must terminate a run cleanly.

    Modelled as: a zero-benchmark FS boot (which ends with the exit op)
    completes with OK status and positive simulated time.
    """
    # Sanctioned exception, same reason as the module-level import.
    from repro.resources.catalog import build_resource  # repro: noqa[ARCH-LAYER]

    simulator = Gem5Simulator(build, SystemConfig(cpu_type="atomic"))
    image = build_resource("boot-exit").image
    if not image.exists("/home/gem5/exit.sh"):
        return TestOutcome("simple", "fail", "exit script missing")
    result = simulator.run_fs("5.4.49", image, boot_type="init")
    if not result.ok or result.sim_seconds <= 0:
        return TestOutcome("simple", "fail", "boot-exit did not finish")
    return TestOutcome("simple", "pass")


def _check_square(build: Gem5Build) -> TestOutcome:
    """The 'square' test: square a vector of floats on the GPU model.

    Checks that a trivial kernel executes under both register allocators
    with identical occupancy-1 timing (one workgroup cannot differ).
    """
    device = GPUDevice(GPUConfig())
    kernel = GPUKernel(
        name="square",
        num_workgroups=1,
        instructions_per_wavefront=256,
        vregs_per_wavefront=16,
        memory_intensity=0.25,
        dependency_density=0.1,
    )
    simple = device.execute(kernel, "simple")
    dynamic = device.execute(kernel, "dynamic")
    if simple.shader_ticks <= 0:
        return TestOutcome("square", "fail", "kernel did not execute")
    if simple.shader_ticks != dynamic.shader_ticks:
        return TestOutcome(
            "square", "fail",
            "single-workgroup kernel timing differs between allocators",
        )
    return TestOutcome("square", "pass")


def run_gem5_test(build: Gem5Build, test: Gem5Test) -> TestOutcome:
    """Run one entry of the gem5-tests resource against a build."""
    if test.requires_isa is not None and build.isa != test.requires_isa:
        return TestOutcome(
            test.name,
            "skip",
            f"requires a {test.requires_isa} build (got {build.isa})",
        )
    if test.name in ("asmtest", "riscv-tests", "insttest"):
        return _check_se_determinism(build, test.name)
    if test.name == "simple":
        return _check_m5ops(build)
    if test.name == "square":
        return _check_square(build)
    return TestOutcome(test.name, "fail", "unknown test")


def run_test_suite(build: Gem5Build) -> List[TestOutcome]:
    """Run every gem5 self-test appropriate for a build."""
    return [run_gem5_test(build, test) for test in GEM5_TESTS]


# --------------------------------------------------------------------------
# Picklable process-pool workloads.
#
# The process substrate (repro.scheduler.procpool) imports job targets by
# dotted path inside freshly spawned workers, so they must be module-level
# functions taking plain-data payloads.  These two are the reference
# workloads used by the procpool benchmark and chaos tests.


def boot_shard_job(payload: dict) -> dict:
    """One shard unit: a deterministic timing-CPU FS boot, repeated.

    ``payload`` keys: ``kernel`` (default "5.4.49"), ``cpu_type``
    (default "timing"), ``repeats`` (work amplification — the boot is
    re-simulated that many times and must produce bit-identical stats,
    so the amplification doubles as a determinism check), ``index``
    (echoed back for shard bookkeeping).
    """
    from repro.common.hashing import sha256_text

    # Sanctioned exception, same reason as the module-level import.
    from repro.resources.catalog import build_resource  # repro: noqa[ARCH-LAYER]

    repeats = int(payload.get("repeats", 1))
    build = Gem5Build()
    simulator = Gem5Simulator(
        build, SystemConfig(cpu_type=payload.get("cpu_type", "timing"))
    )
    image = build_resource("boot-exit").image
    kernel = payload.get("kernel", "5.4.49")
    result = simulator.run_fs(kernel, image, boot_type="init")
    fingerprint = sha256_text(result.stats_txt())
    for _ in range(repeats - 1):
        again = simulator.run_fs(kernel, image, boot_type="init")
        if sha256_text(again.stats_txt()) != fingerprint:
            raise AssertionError(
                "non-deterministic boot: stats changed on repeat"
            )
    return {
        "index": payload.get("index"),
        "sim_seconds": result.sim_seconds,
        "instructions": result.instructions,
        "stats_fingerprint": fingerprint,
        "repeats": repeats,
        "ok": result.ok,
    }


def telemetry_probe_job(payload: dict) -> dict:
    """A trivial job that records one of each telemetry signal.

    Used to test that a worker process's private telemetry session is
    shipped back and merged into the parent's (counter adds, histogram
    absorbs, event re-sequences with a ``worker`` attribute).
    """
    from repro.telemetry import get_event_log, get_metrics

    amount = float(payload.get("amount", 1))
    get_metrics().counter(
        "probe_total", "Telemetry-merge probe counter"
    ).inc(amount)
    get_metrics().histogram(
        "probe_seconds", "Telemetry-merge probe histogram"
    ).observe(amount)
    get_event_log().emit("probe.ran", index=payload.get("index"))
    return {"ok": True, "amount": amount}


def kill_once_job(payload: dict) -> dict:
    """A boot-shard job whose *first* delivery SIGKILLs its own worker.

    ``payload["sentinel"]`` names a filesystem path shared with the
    parent: the first attempt creates it and then kills the worker
    process dead (no cleanup, no exception — exactly what a segfaulting
    gem5 looks like to the scheduler).  The redelivered attempt sees the
    sentinel and completes normally, so a lease/reaper chaos test gets a
    deterministic one-crash-then-success script with no racy
    parent-side kill timing.
    """
    import os
    import signal

    sentinel = payload["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return boot_shard_job(payload)
