"""The workload execution engine.

Drives a :class:`~repro.sim.workload.phases.Workload` through the event
queue on a configured system: each phase fans out per-CPU completion events,
a barrier collects them, and the next phase starts.  All timing comes from
the CPU model (CPI), the memory-system model (AMAT, bandwidth) and the
modifier set (compiler codegen, kernel scheduler quality) — this is where
every causal chain behind Figs 6–8 is actually computed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.units import TICKS_PER_SECOND
from repro.sim.config import SystemConfig
from repro.sim.cpu.models import KVM_HOST_RATE, build_cpu_model
from repro.sim.events import EventQueue
from repro.sim.mem.hierarchy import MemoryTimings, build_memory_system
from repro.sim.stats import StatsDB
from repro.sim.workload.phases import Phase, Workload
from repro.telemetry import get_metrics

#: Cycles for one synchronization event on one core, before contention.
_SYNC_BASE_CYCLES = 40.0
#: Additional contention cost per extra participating core.
_SYNC_CONTENTION = 0.5
#: Cache-line size used for DRAM bandwidth accounting.
_LINE_BYTES = 64


@dataclass(frozen=True)
class ExecutionModifiers:
    """Cross-stack knobs that scale the timing model.

    These carry the guest-stack properties into the engine: the compiler
    that built the binary (instruction count and memory-stall scaling) and
    the kernel managing the run (thread placement quality, syscall cost).
    """

    instruction_scale: float = 1.0
    memory_stall_scale: float = 1.0
    scheduler_efficiency: float = 0.90
    syscall_cost_scale: float = 1.0

    def __post_init__(self):
        if self.instruction_scale <= 0 or self.memory_stall_scale <= 0:
            raise ValidationError("scales must be positive")
        if not 0.0 < self.scheduler_efficiency <= 1.0:
            raise ValidationError(
                "scheduler_efficiency must be in (0, 1]"
            )


@dataclass
class ExecutionOutcome:
    """Aggregate result of executing one workload."""

    ticks: int
    instructions: int
    busy_cycles: float
    total_cycles: float

    @property
    def sim_seconds(self) -> float:
        return self.ticks / TICKS_PER_SECOND

    @property
    def utilization(self) -> float:
        """Mean fraction of CPU cycles doing work (vs stalled/imbalanced)."""
        if self.total_cycles == 0:
            return 0.0
        return min(1.0, self.busy_cycles / self.total_cycles)


class ExecutionEngine:
    """Executes workloads on one configured system via an event queue."""

    def __init__(
        self,
        config: SystemConfig,
        modifiers: ExecutionModifiers = None,
        queue: EventQueue = None,
        stats: StatsDB = None,
    ):
        self.config = config
        self.modifiers = modifiers or ExecutionModifiers()
        self.queue = queue or EventQueue()
        self.stats = stats or StatsDB()
        self.cpu = build_cpu_model(config.cpu_type)
        self.memory = build_memory_system(config)

    # ----------------------------------------------------------- execution

    def execute(self, workload: Workload) -> ExecutionOutcome:
        """Run every phase of the workload to completion."""
        start_tick = self.queue.now
        start_events = self.queue.executed_events
        total_instructions = 0
        busy_cycles = 0.0
        total_cycles = 0.0
        for phase in workload.phases:
            if phase.instructions == 0:
                continue
            duration_ticks, stats = self._phase_timing(phase)
            self._run_phase_events(phase, duration_ticks)
            total_instructions += stats["instructions"]
            busy_cycles += stats["busy_cycles"]
            total_cycles += stats["total_cycles"]
            self._record_phase(workload, phase, duration_ticks, stats)
        ticks = self.queue.now - start_tick
        self._record_workload(workload, ticks, total_instructions)
        self._record_cpi_stack(total_instructions, busy_cycles,
                               total_cycles)
        self._record_telemetry(workload, start_events)
        return ExecutionOutcome(
            ticks=ticks,
            instructions=total_instructions,
            busy_cycles=busy_cycles,
            total_cycles=total_cycles,
        )

    def _record_telemetry(self, workload, start_events: int) -> None:
        """Surface engine activity to the (no-op by default) telemetry
        layer.  Strictly read-only with respect to simulated state: the
        same stats and sim_seconds come out with telemetry on or off."""
        metrics = get_metrics()
        metrics.counter(
            "engine_events_processed_total",
            "Discrete events executed by the event queue",
        ).inc(self.queue.executed_events - start_events)
        metrics.counter(
            "engine_workloads_total", "Workloads executed"
        ).inc(cpu=self.config.cpu_type)
        accesses = self.stats.get("system.l1d.accesses", default=0.0)
        if accesses > 0:
            metrics.gauge(
                "sim_l1d_miss_rate",
                "L1D miss rate of the most recent workload",
            ).set(
                self.stats.ratio("system.l1d.misses",
                                 "system.l1d.accesses")
            )
            metrics.gauge(
                "sim_dram_access_ratio",
                "DRAM accesses per L1D access, most recent workload",
            ).set(
                self.stats.ratio("system.mem_ctrl.accesses",
                                 "system.l1d.accesses")
            )

    def _record_cpi_stack(self, instructions, busy, total) -> None:
        """CPI breakdown: base (issue) vs everything else (memory stalls,
        sync, imbalance) — the first question anyone asks of a run."""
        if instructions <= 0 or not self.cpu.models_timing:
            return
        cpi_total = total / instructions
        cpi_base = busy / instructions
        self.stats.set("system.cpu.cpi", cpi_total)
        self.stats.set("system.cpu.cpi_base", cpi_base)
        self.stats.set(
            "system.cpu.cpi_stall", max(0.0, cpi_total - cpi_base)
        )

    def _run_phase_events(self, phase: Phase, duration_ticks: int) -> None:
        """Fan out one completion event per participating CPU, then
        barrier; the event queue advances ``now`` to the phase end."""
        cpus = self._phase_cpus(phase)
        remaining = {"count": cpus}

        def cpu_done():
            remaining["count"] -= 1

        for _cpu_index in range(cpus):
            self.queue.schedule(duration_ticks, cpu_done)
        self.queue.run()
        if remaining["count"] != 0:
            raise ValidationError("phase barrier failed to drain")

    # -------------------------------------------------------------- timing

    def _phase_cpus(self, phase: Phase) -> int:
        return max(1, min(self.config.num_cpus, phase.parallelism))

    def _phase_timing(self, phase: Phase):
        """Compute the phase's duration in ticks plus accounting detail."""
        mods = self.modifiers
        instructions = phase.instructions * mods.instruction_scale
        cpus = self._phase_cpus(phase)
        per_cpu_instructions = instructions / cpus

        if not self.cpu.models_timing:
            # kvm: guest executes at an assumed host rate; microarchitecture
            # is not modelled (serial execution of the instruction stream).
            seconds = instructions / KVM_HOST_RATE
            ticks = int(seconds * TICKS_PER_SECOND)
            return max(1, ticks), {
                "instructions": int(instructions),
                "busy_cycles": 0.0,
                "total_cycles": 0.0,
                "l1_miss_ratio": 0.0,
            }

        timings = self.memory.phase_timings(
            working_set_bytes=phase.working_set_bytes,
            locality=phase.locality,
            shared_fraction=phase.shared_fraction,
            write_fraction=phase.write_fraction,
            num_cpus=cpus,
        )
        timings = _scale_stalls(timings, mods.memory_stall_scale)
        prefetch_traffic = 1.0
        if self.config.prefetcher:
            timings, prefetch_traffic = _apply_prefetcher(
                timings,
                regularity=phase.access_regularity,
                effectiveness=self.config.prefetcher_effectiveness,
                stall_scale=mods.memory_stall_scale,
            )

        accesses_per_instruction = phase.mem_accesses_per_kinst / 1000.0
        cpi = self.cpu.cycles_per_instruction(
            accesses_per_instruction, timings
        )
        compute_cycles = per_cpu_instructions * cpi

        sync_events = phase.sync_per_kinst * per_cpu_instructions / 1000.0
        sync_cycles = (
            sync_events
            * _SYNC_BASE_CYCLES
            * (1.0 + _SYNC_CONTENTION * (cpus - 1))
            * mods.syscall_cost_scale
        )

        imbalance = 1.0
        if cpus > 1:
            imbalance += (
                (1.0 - mods.scheduler_efficiency)
                * (cpus - 1)
                * phase.imbalance_sensitivity
            )

        cycles = (compute_cycles + sync_cycles) * imbalance
        ticks = int(cycles * self.config.clock_period_ticks)

        # DRAM bandwidth ceiling: a phase cannot finish faster than its
        # DRAM traffic can be moved.  (A latency-queueing model was
        # evaluated and rejected: with this abstraction level's traffic
        # estimates it over-penalizes the multi-core PARSEC points the
        # paper's Fig 7 calibrates against; the ceiling captures the
        # first-order saturation effect, e.g. SPECrate's memory-bound
        # plateau.)
        dram_bytes = (
            instructions
            * accesses_per_instruction
            * timings.dram_access_ratio
            * _LINE_BYTES
            * prefetch_traffic
        )
        bandwidth = self.memory.bandwidth_bytes_per_second()
        min_seconds = dram_bytes / bandwidth if bandwidth > 0 else 0.0
        ticks = max(ticks, int(min_seconds * TICKS_PER_SECOND))

        busy = per_cpu_instructions * self.cpu.base_cpi * cpus
        total = cycles * cpus
        accesses = instructions * accesses_per_instruction
        return max(1, ticks), {
            "instructions": int(instructions),
            "busy_cycles": busy,
            "total_cycles": total,
            "l1_miss_ratio": timings.l1_miss_ratio,
            "mem_accesses": accesses,
            "l1_misses": accesses * timings.l1_miss_ratio,
            "dram_accesses": accesses * timings.dram_access_ratio,
            "dram_bytes": dram_bytes,
        }

    # --------------------------------------------------------------- stats

    def _record_phase(self, workload, phase, ticks, detail) -> None:
        self.stats.vec_inc(
            f"{workload.name}.phase_ticks", phase.name, ticks
        )
        self.stats.vec_inc(
            f"{workload.name}.phase_insts",
            phase.name,
            detail["instructions"],
        )
        # Memory-hierarchy counters (gem5's cache/memctrl stats).
        self.stats.inc(
            "system.l1d.accesses", detail.get("mem_accesses", 0.0)
        )
        self.stats.inc("system.l1d.misses", detail.get("l1_misses", 0.0))
        self.stats.inc(
            "system.mem_ctrl.accesses", detail.get("dram_accesses", 0.0)
        )
        self.stats.inc(
            "system.mem_ctrl.bytes_read", detail.get("dram_bytes", 0.0)
        )
        if self.stats.get("system.l1d.accesses", default=0.0) > 0:
            self.stats.set(
                "system.l1d.miss_rate",
                self.stats.ratio(
                    "system.l1d.misses", "system.l1d.accesses"
                ),
            )

    def _record_workload(self, workload, ticks, instructions) -> None:
        self.stats.inc("sim_ticks", ticks)
        self.stats.set(
            "sim_seconds", self.stats.get("sim_ticks") / TICKS_PER_SECOND
        )
        self.stats.inc("sim_insts", instructions)
        per_cpu = instructions // max(1, self.config.num_cpus)
        for index in range(self.config.num_cpus):
            self.stats.inc(f"system.cpu{index}.committedInsts", per_cpu)


#: Extra (useless) DRAM traffic a stride prefetcher generates per unit of
#: regular traffic it prefetches.
_PREFETCH_OVERFETCH = 0.15


def _apply_prefetcher(
    timings: MemoryTimings,
    regularity: float,
    effectiveness: float,
    stall_scale: float,
):
    """Hide the predictable slice of DRAM stall time, at the cost of
    extra bandwidth (over-fetch).  Returns (new timings, traffic factor).

    A stride prefetcher only helps regular streams: the hidden stall is
    ``effectiveness x regularity`` of the DRAM component; pointer chasing
    (regularity 0) gains nothing but still pays no over-fetch.
    """
    hidden = (
        timings.dram_stall_cycles
        * stall_scale
        * effectiveness
        * regularity
    )
    if hidden <= 0:
        return timings, 1.0
    new_amat = max(1.0, timings.amat_cycles - hidden)
    traffic = 1.0 + _PREFETCH_OVERFETCH * regularity
    return (
        MemoryTimings(
            amat_cycles=new_amat,
            dram_access_ratio=timings.dram_access_ratio,
            l1_miss_ratio=timings.l1_miss_ratio,
            dram_stall_cycles=timings.dram_stall_cycles * (
                1.0 - effectiveness * regularity
            ),
        ),
        traffic,
    )


def _scale_stalls(timings: MemoryTimings, scale: float) -> MemoryTimings:
    """Scale the stall component (AMAT beyond the one-cycle hit)."""
    if scale == 1.0:
        return timings
    stall = max(0.0, timings.amat_cycles - 1.0) * scale
    return MemoryTimings(
        amat_cycles=1.0 + stall,
        dram_access_ratio=timings.dram_access_ratio,
        l1_miss_ratio=timings.l1_miss_ratio,
        dram_stall_cycles=timings.dram_stall_cycles,
    )
