"""The discrete-event core.

A classic calendar queue: events are (tick, priority, sequence, callback)
tuples executed in deterministic order.  Ties break on priority, then on
insertion order, so simulations replay identically — the property every
other determinism guarantee in this library stands on.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.errors import StateError, ValidationError

#: Default event priority; lower runs first at the same tick.
DEFAULT_PRIORITY = 0


class EventQueue:
    """A deterministic discrete-event queue measured in ticks."""

    def __init__(self):
        self._heap: List[Tuple[int, int, int, Callable]] = []
        self._sequence = 0
        self._now = 0
        self._running = False
        self.executed_events = 0

    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self._now

    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise ValidationError("cannot schedule into the past")
        heapq.heappush(
            self._heap,
            (self._now + delay, priority, self._sequence, callback),
        )
        self._sequence += 1

    def schedule_at(
        self,
        tick: int,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Schedule ``callback`` at an absolute tick (>= now)."""
        if tick < self._now:
            raise ValidationError(
                f"cannot schedule at tick {tick} before now ({self._now})"
            )
        heapq.heappush(
            self._heap, (tick, priority, self._sequence, callback)
        )
        self._sequence += 1

    def run(self, max_tick: Optional[int] = None) -> int:
        """Execute events until the queue drains or ``max_tick`` is passed.

        Returns the final simulated tick.  Callbacks may schedule further
        events.  Re-entrant ``run`` calls are a bug and raise.
        """
        if self._running:
            raise StateError("event queue is already running")
        self._running = True
        try:
            while self._heap:
                tick, _priority, _seq, callback = self._heap[0]
                if max_tick is not None and tick > max_tick:
                    self._now = max_tick
                    break
                heapq.heappop(self._heap)
                self._now = tick
                self.executed_events += 1
                callback()
            return self._now
        finally:
            self._running = False

    def empty(self) -> bool:
        return not self._heap

    def __len__(self) -> int:
        return len(self._heap)
