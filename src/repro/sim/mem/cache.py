"""Analytic cache behaviour model.

Workload phases are characterized statistically (working-set size, locality,
sharing), so the cache model is analytic rather than trace-driven: it turns
those parameters plus the cache geometry into miss ratios.  The model is the
classic two-component one — a locality-absorbed fraction (stack/register
reuse that hits regardless of capacity) plus a capacity component that
scales with how much of the working set fits.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.sim.config import CacheConfig

#: Compulsory (cold) miss floor — no cache avoids these.
COLD_MISS_FLOOR = 0.002


def capacity_miss_ratio(working_set_bytes: int, cache_bytes: int) -> float:
    """Miss ratio of the capacity component.

    When the working set fits, only the cold floor remains; beyond that the
    miss ratio approaches ``1 - size/ws`` (the fraction of the uniformly
    reused working set that cannot be resident).
    """
    if cache_bytes <= 0:
        raise ValidationError("cache size must be positive")
    if working_set_bytes <= cache_bytes:
        return COLD_MISS_FLOOR
    miss = 1.0 - (cache_bytes / working_set_bytes)
    return max(COLD_MISS_FLOOR, min(1.0, miss))


class CacheModel:
    """Per-level miss ratios for one phase profile.

    ``locality`` is the fraction of accesses absorbed by near-register reuse
    (hits in L1 irrespective of working-set size); the remainder is exposed
    to the capacity model at each level.
    """

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig,
        working_set_bytes: int,
        locality: float,
    ):
        if not 0.0 <= locality <= 1.0:
            raise ValidationError("locality must be within [0, 1]")
        self.l1 = l1
        self.l2 = l2
        self.working_set_bytes = working_set_bytes
        self.locality = locality

    def l1_miss_ratio(self) -> float:
        """Fraction of accesses missing L1."""
        return (1.0 - self.locality) * capacity_miss_ratio(
            self.working_set_bytes, self.l1.size_bytes
        )

    def l2_local_miss_ratio(self) -> float:
        """Of the L1 misses, the fraction that also miss L2."""
        exposed = capacity_miss_ratio(
            self.working_set_bytes, self.l2.size_bytes
        )
        l1_exposed = capacity_miss_ratio(
            self.working_set_bytes, self.l1.size_bytes
        )
        if l1_exposed <= 0:
            return COLD_MISS_FLOOR
        # L2 can only filter what L1 missed; its residual miss ratio is the
        # ratio of the two capacity terms, floored at the cold rate.
        return max(COLD_MISS_FLOOR, min(1.0, exposed / l1_exposed))

    def dram_access_ratio(self) -> float:
        """Fraction of all accesses that reach DRAM."""
        return self.l1_miss_ratio() * self.l2_local_miss_ratio()
