"""Memory-system timing models: caches, DRAM, classic and Ruby systems."""

from repro.sim.mem.cache import capacity_miss_ratio, CacheModel
from repro.sim.mem.hierarchy import (
    MemorySystemModel,
    build_memory_system,
    MemoryTimings,
)

__all__ = [
    "capacity_miss_ratio",
    "CacheModel",
    "MemorySystemModel",
    "build_memory_system",
    "MemoryTimings",
]
