"""Whole-memory-system timing: classic vs Ruby.

The paper's Fig 8 text describes the trade-off exactly: the classic memory
system is "fast but lacks coherence fidelity" while Ruby "models detailed
memory with cache coherence flexibility" — and the two Ruby protocols used
are ``MI_example`` (a minimal protocol with no shared/exclusive states) and
``MESI_Two_Level``.

This module turns a phase profile into an average-memory-access-time (AMAT)
figure plus a coherence penalty:

- classic: plain L1/L2/DRAM AMAT, no sharing cost (that is precisely its
  lack of coherence fidelity);
- Ruby: adds a directory-hop latency to every miss, plus invalidation
  misses on shared, written data that grow with core count.  ``MI_example``
  pays them far more heavily — with only Modified/Invalid states, even
  read-sharing ping-pongs lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.sim.config import SystemConfig
from repro.sim.mem.cache import CacheModel


@dataclass(frozen=True)
class MemoryTimings:
    """Per-access outputs of the memory model for one phase."""

    #: Average cycles per (L1-reaching) access, including miss handling.
    amat_cycles: float
    #: Fraction of accesses that reach DRAM (for bandwidth accounting).
    dram_access_ratio: float
    #: L1 miss ratio (reported in stats).
    l1_miss_ratio: float
    #: The DRAM-latency component of ``amat_cycles`` — the part that
    #: inflates under bandwidth contention (queueing).
    dram_stall_cycles: float = 0.0


class MemorySystemModel:
    """Base class: classic behaviour; Ruby subclasses add coherence."""

    #: Extra cycles added to every L2/DRAM access by the protocol.
    directory_hop_cycles = 0
    #: Multiplier on invalidation traffic (0 == no coherence modelled).
    invalidation_weight = 0.0

    def __init__(self, config: SystemConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.memory_system

    def dram_latency_cycles(self) -> float:
        nanoseconds = self.config.dram.access_latency_ns
        return nanoseconds * self.config.cpu_clock_ghz

    def coherence_miss_ratio(
        self, shared_fraction: float, write_fraction: float, num_cpus: int
    ) -> float:
        """Extra misses (per access) from cross-core invalidations."""
        if num_cpus <= 1 or self.invalidation_weight == 0.0:
            return 0.0
        contention = (num_cpus - 1) / num_cpus
        return (
            self.invalidation_weight
            * shared_fraction
            * write_fraction
            * contention
        )

    def phase_timings(
        self,
        working_set_bytes: int,
        locality: float,
        shared_fraction: float,
        write_fraction: float,
        num_cpus: int,
    ) -> MemoryTimings:
        """Compute AMAT for one phase profile on this memory system."""
        if not 0.0 <= shared_fraction <= 1.0:
            raise ValidationError("shared_fraction must be in [0,1]")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValidationError("write_fraction must be in [0,1]")
        cache = CacheModel(
            self.config.l1d, self.config.l2, working_set_bytes, locality
        )
        l1_miss = cache.l1_miss_ratio()
        coherence_miss = self.coherence_miss_ratio(
            shared_fraction, write_fraction, num_cpus
        )
        # Invalidation misses bypass L1 reuse: they always pay at least an
        # L2 round trip, usually a remote/DRAM one under MI.
        total_l1_miss = min(1.0, l1_miss + coherence_miss)
        l2_local_miss = cache.l2_local_miss_ratio()
        l2_latency = self.config.l2.latency_cycles + self.directory_hop_cycles
        dram_latency = self.dram_latency_cycles() + self.directory_hop_cycles
        amat = self.config.l1d.latency_cycles + total_l1_miss * (
            l2_latency + l2_local_miss * dram_latency
        )
        dram_ratio = total_l1_miss * l2_local_miss
        return MemoryTimings(
            amat_cycles=amat,
            dram_access_ratio=dram_ratio,
            l1_miss_ratio=total_l1_miss,
            dram_stall_cycles=dram_ratio * dram_latency,
        )

    def bandwidth_bytes_per_second(self) -> float:
        return (
            self.config.dram.bandwidth_gbps
            * 1e9
            * self.config.memory_channels
        )


class ClassicMemorySystem(MemorySystemModel):
    """The fast, coherence-light classic hierarchy."""


class RubyMIExample(MemorySystemModel):
    """Ruby with the teaching-grade MI protocol: every shared access
    behaves like a write miss because there is no Shared state."""

    directory_hop_cycles = 20
    invalidation_weight = 3.0

    def coherence_miss_ratio(self, shared, write, num_cpus):
        # MI ping-pongs even read-shared lines: weight reads at half the
        # write cost rather than zero.
        if num_cpus <= 1:
            return 0.0
        effective_write = 0.5 + 0.5 * write
        contention = (num_cpus - 1) / num_cpus
        return self.invalidation_weight * shared * effective_write * (
            contention
        )


class RubyMESITwoLevel(MemorySystemModel):
    """Ruby MESI_Two_Level: real sharing states; writes invalidate."""

    directory_hop_cycles = 12
    invalidation_weight = 1.0


def build_memory_system(config: SystemConfig) -> MemorySystemModel:
    """Factory keyed on ``config.memory_system``."""
    if config.memory_system == "classic":
        return ClassicMemorySystem(config)
    if config.memory_system == "MI_example":
        return RubyMIExample(config)
    if config.memory_system == "MESI_Two_Level":
        return RubyMESITwoLevel(config)
    raise ValidationError(
        f"unknown memory system {config.memory_system!r}"
    )
