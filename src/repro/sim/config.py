"""Simulated-system configuration.

A :class:`SystemConfig` is the "parameters to configuration" box of the
paper's Fig 1 workflow: CPU model and count, clock, memory system and
protocol, cache geometry, and DRAM technology.  Table II (PARSEC) and the
Fig 8 sweep are expressed as instances of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.common.errors import ValidationError
from repro.common.units import GHz

#: CPU models, in the paper's vocabulary.
CPU_TYPES = ("kvm", "atomic", "timing", "o3")

#: Memory systems swept by the boot tests: the classic hierarchy and two
#: Ruby protocols.
MEMORY_SYSTEMS = ("classic", "MI_example", "MESI_Two_Level")


@dataclass(frozen=True)
class MemoryTech:
    """A DRAM technology point."""

    name: str
    access_latency_ns: float
    bandwidth_gbps: float


#: The technologies gem5 ships; the paper uses DDR3_1600_8x8 throughout.
MEMORY_TECHS = {
    "DDR3_1600_8x8": MemoryTech("DDR3_1600_8x8", 45.0, 12.8),
    "DDR4_2400_16x4": MemoryTech("DDR4_2400_16x4", 38.0, 19.2),
    "HBM_1000_4H_1x64": MemoryTech("HBM_1000_4H_1x64", 30.0, 64.0),
}


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry and timing."""

    size_bytes: int
    assoc: int
    latency_cycles: int

    def __post_init__(self):
        if self.size_bytes <= 0 or self.assoc <= 0:
            raise ValidationError("cache size/assoc must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated-machine description."""

    cpu_type: str = "timing"
    num_cpus: int = 1
    cpu_clock_ghz: float = 3.0
    memory_system: str = "classic"
    memory_tech: str = "DDR3_1600_8x8"
    memory_channels: int = 1
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 16, 12)
    )
    #: Enable the stride prefetcher model (off by default, matching the
    #: baseline systems of the paper's experiments).
    prefetcher: bool = False
    #: Fraction of a perfectly-regular stream's DRAM stall the
    #: prefetcher hides when enabled.
    prefetcher_effectiveness: float = 0.7

    def __post_init__(self):
        if self.cpu_type not in CPU_TYPES:
            raise ValidationError(
                f"unknown cpu type {self.cpu_type!r}; one of {CPU_TYPES}"
            )
        if self.memory_system not in MEMORY_SYSTEMS:
            raise ValidationError(
                f"unknown memory system {self.memory_system!r}; "
                f"one of {MEMORY_SYSTEMS}"
            )
        if self.memory_tech not in MEMORY_TECHS:
            raise ValidationError(
                f"unknown memory tech {self.memory_tech!r}"
            )
        if self.num_cpus < 1:
            raise ValidationError("num_cpus must be >= 1")
        if self.memory_channels < 1:
            raise ValidationError("memory_channels must be >= 1")
        if self.cpu_clock_ghz <= 0:
            raise ValidationError("cpu clock must be positive")
        if not 0.0 <= self.prefetcher_effectiveness <= 1.0:
            raise ValidationError(
                "prefetcher_effectiveness must be within [0, 1]"
            )

    @property
    def clock_period_ticks(self) -> int:
        return GHz(self.cpu_clock_ghz)

    @property
    def uses_ruby(self) -> bool:
        return self.memory_system != "classic"

    @property
    def dram(self) -> MemoryTech:
        return MEMORY_TECHS[self.memory_tech]

    def describe(self) -> str:
        return (
            f"{self.num_cpus}x {self.cpu_type} @ {self.cpu_clock_ghz} GHz, "
            f"{self.memory_system} memory, {self.memory_tech} "
            f"x{self.memory_channels}"
        )

    def key(self) -> Tuple:
        """A hashable identity used by the fault model and run records."""
        return (
            self.cpu_type,
            self.num_cpus,
            self.memory_system,
            self.memory_tech,
            self.memory_channels,
        )
