"""Compatibility shim: :class:`StatsDB` lives in
:mod:`repro.common.statsdb` now.

The stats database is consumed by both the CPU simulator (``sim``) and
the GPU model (``gpu``); keeping it in ``sim`` forced an upward
``gpu -> sim`` import that the layering gate rejects.  The class moved
down to ``common``; this module re-exports it for existing importers.
"""

from repro.common.statsdb import StatsDB

__all__ = ["StatsDB"]
