"""The PARSEC benchmark suite as workload models.

PARSEC [Bienia 2011] has 13 multi-threaded applications.  Use-case 1 of the
paper runs 10 of them: x264, facesim and canneal are excluded because of
runtime issues the authors reproduced outside gem5 (in QEMU) and therefore
attribute to the benchmarks themselves.  We model all 13, marking those
three as broken so the run layer fails them the way the real suite does.

Per-application profiles are drawn from the suite's published
characterization (domains, working-set classes, synchronization styles):
e.g. ``swaptions``/``blackscholes`` are small-footprint and embarrassingly
parallel, ``streamcluster`` is memory- and barrier-intensive, ``dedup`` and
``ferret`` are pipeline-parallel with large footprints.  ``blackscholes``
and ``ferret`` get the highest scheduler-placement sensitivity, matching
the paper's observation that they benefit most from the newer kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import NotFoundError, ValidationError
from repro.sim.workload.phases import Phase, Workload

#: Instruction-count and working-set multipliers per PARSEC input size.
INPUT_SIZES = {
    "simsmall": {"instructions": 0.35, "working_set": 0.5},
    "simmedium": {"instructions": 1.0, "working_set": 1.0},
    "simlarge": {"instructions": 3.5, "working_set": 2.0},
}

_MiB = 1024 * 1024
#: Cap on useful threads inside a parallel region (inputs provide ample
#: work units for any core count the paper sweeps).
_MAX_PARALLELISM = 128


@dataclass(frozen=True)
class ParsecApp:
    """One PARSEC application's static profile (simmedium reference)."""

    name: str
    domain: str
    instructions: int
    parallel_fraction: float
    working_set_bytes: int
    mem_accesses_per_kinst: float
    locality: float
    shared_fraction: float
    write_fraction: float
    sync_per_kinst: float
    imbalance_sensitivity: float
    #: Stride predictability of the access stream (prefetcher model).
    access_regularity: float = 0.5
    broken: bool = False
    broken_reason: str = ""


def _app(**kwargs) -> ParsecApp:
    return ParsecApp(**kwargs)


_APP_LIST: List[ParsecApp] = [
    _app(
        name="blackscholes",
        access_regularity=0.7,
        domain="financial analysis (option pricing)",
        instructions=600_000_000,
        parallel_fraction=0.955,
        working_set_bytes=2 * _MiB,
        mem_accesses_per_kinst=200,
        locality=0.95,
        shared_fraction=0.02,
        write_fraction=0.20,
        sync_per_kinst=0.05,
        imbalance_sensitivity=0.40,
    ),
    _app(
        name="bodytrack",
        access_regularity=0.5,
        domain="computer vision (body tracking)",
        instructions=1_500_000_000,
        parallel_fraction=0.92,
        working_set_bytes=8 * _MiB,
        mem_accesses_per_kinst=280,
        locality=0.92,
        shared_fraction=0.15,
        write_fraction=0.30,
        sync_per_kinst=0.40,
        imbalance_sensitivity=0.20,
    ),
    _app(
        name="canneal",
        access_regularity=0.05,
        domain="engineering (routing cost minimization)",
        instructions=1_900_000_000,
        parallel_fraction=0.90,
        working_set_bytes=256 * _MiB,
        mem_accesses_per_kinst=420,
        locality=0.80,
        shared_fraction=0.50,
        write_fraction=0.35,
        sync_per_kinst=0.10,
        imbalance_sensitivity=0.20,
        broken=True,
        broken_reason=(
            "aborts at runtime on both gem5 and QEMU with the shipped "
            "inputs; fault is in the benchmark, not the simulator"
        ),
    ),
    _app(
        name="dedup",
        access_regularity=0.4,
        domain="enterprise storage (deduplication)",
        instructions=1_800_000_000,
        parallel_fraction=0.90,
        working_set_bytes=96 * _MiB,
        mem_accesses_per_kinst=350,
        locality=0.88,
        shared_fraction=0.25,
        write_fraction=0.40,
        sync_per_kinst=0.50,
        imbalance_sensitivity=0.22,
    ),
    _app(
        name="facesim",
        access_regularity=0.6,
        domain="animation (face simulation)",
        instructions=2_400_000_000,
        parallel_fraction=0.93,
        working_set_bytes=128 * _MiB,
        mem_accesses_per_kinst=330,
        locality=0.89,
        shared_fraction=0.20,
        write_fraction=0.35,
        sync_per_kinst=0.60,
        imbalance_sensitivity=0.20,
        broken=True,
        broken_reason=(
            "crashes during initialization on gem5 and QEMU alike "
            "(benchmark bug)"
        ),
    ),
    _app(
        name="ferret",
        access_regularity=0.4,
        domain="similarity search (content-based)",
        instructions=2_200_000_000,
        parallel_fraction=0.94,
        working_set_bytes=48 * _MiB,
        mem_accesses_per_kinst=320,
        locality=0.90,
        shared_fraction=0.20,
        write_fraction=0.30,
        sync_per_kinst=0.60,
        imbalance_sensitivity=0.38,
    ),
    _app(
        name="fluidanimate",
        access_regularity=0.5,
        domain="animation (fluid dynamics)",
        instructions=1_600_000_000,
        parallel_fraction=0.93,
        working_set_bytes=32 * _MiB,
        mem_accesses_per_kinst=300,
        locality=0.91,
        shared_fraction=0.30,
        write_fraction=0.35,
        sync_per_kinst=0.90,
        imbalance_sensitivity=0.20,
    ),
    _app(
        name="freqmine",
        access_regularity=0.35,
        domain="data mining (frequent itemsets)",
        instructions=2_000_000_000,
        parallel_fraction=0.95,
        working_set_bytes=64 * _MiB,
        mem_accesses_per_kinst=340,
        locality=0.89,
        shared_fraction=0.25,
        write_fraction=0.30,
        sync_per_kinst=0.20,
        imbalance_sensitivity=0.18,
    ),
    _app(
        name="raytrace",
        access_regularity=0.45,
        domain="rendering (real-time raytracing)",
        instructions=1_400_000_000,
        parallel_fraction=0.95,
        working_set_bytes=16 * _MiB,
        mem_accesses_per_kinst=260,
        locality=0.93,
        shared_fraction=0.10,
        write_fraction=0.25,
        sync_per_kinst=0.30,
        imbalance_sensitivity=0.20,
    ),
    _app(
        name="streamcluster",
        access_regularity=0.8,
        domain="data mining (online clustering)",
        instructions=1_200_000_000,
        parallel_fraction=0.94,
        working_set_bytes=24 * _MiB,
        mem_accesses_per_kinst=380,
        locality=0.85,
        shared_fraction=0.35,
        write_fraction=0.30,
        sync_per_kinst=1.20,
        imbalance_sensitivity=0.22,
    ),
    _app(
        name="swaptions",
        access_regularity=0.6,
        domain="financial analysis (swaption pricing)",
        instructions=1_000_000_000,
        parallel_fraction=0.97,
        working_set_bytes=1 * _MiB,
        mem_accesses_per_kinst=180,
        locality=0.96,
        shared_fraction=0.01,
        write_fraction=0.20,
        sync_per_kinst=0.10,
        imbalance_sensitivity=0.15,
    ),
    _app(
        name="vips",
        access_regularity=0.7,
        domain="media processing (image transformation)",
        instructions=1_700_000_000,
        parallel_fraction=0.93,
        working_set_bytes=20 * _MiB,
        mem_accesses_per_kinst=290,
        locality=0.91,
        shared_fraction=0.15,
        write_fraction=0.35,
        sync_per_kinst=0.40,
        imbalance_sensitivity=0.20,
    ),
    _app(
        name="x264",
        access_regularity=0.6,
        domain="media processing (H.264 encoding)",
        instructions=1_300_000_000,
        parallel_fraction=0.90,
        working_set_bytes=24 * _MiB,
        mem_accesses_per_kinst=270,
        locality=0.92,
        shared_fraction=0.20,
        write_fraction=0.35,
        sync_per_kinst=0.70,
        imbalance_sensitivity=0.25,
        broken=True,
        broken_reason=(
            "hangs mid-encode on gem5 and QEMU (threading bug in the "
            "shipped benchmark version)"
        ),
    ),
]

PARSEC_APPS: Dict[str, ParsecApp] = {app.name: app for app in _APP_LIST}

PARSEC_WORKING_APPS = tuple(
    app.name for app in _APP_LIST if not app.broken
)
PARSEC_BROKEN_APPS = tuple(app.name for app in _APP_LIST if app.broken)


def get_parsec_app(name: str) -> ParsecApp:
    if name not in PARSEC_APPS:
        raise NotFoundError(
            f"unknown PARSEC application {name!r}; "
            f"known: {sorted(PARSEC_APPS)}"
        )
    return PARSEC_APPS[name]


def get_parsec_workload(
    name: str, input_size: str = "simmedium"
) -> Workload:
    """Build the phase-level workload for one app at one input size.

    The structure is the standard PARSEC shape: a serial initialization
    region, the parallel region of interest, and a serial wind-down.
    """
    app = get_parsec_app(name)
    if input_size not in INPUT_SIZES:
        raise ValidationError(
            f"unknown input size {input_size!r}; "
            f"known: {sorted(INPUT_SIZES)}"
        )
    scales = INPUT_SIZES[input_size]
    instructions = int(app.instructions * scales["instructions"])
    working_set = int(app.working_set_bytes * scales["working_set"])
    serial = int(instructions * (1.0 - app.parallel_fraction))
    parallel = instructions - serial
    common = dict(
        mem_accesses_per_kinst=app.mem_accesses_per_kinst,
        working_set_bytes=working_set,
        locality=app.locality,
        write_fraction=app.write_fraction,
        imbalance_sensitivity=app.imbalance_sensitivity,
        access_regularity=app.access_regularity,
    )
    return Workload(
        name=f"parsec.{app.name}.{input_size}",
        phases=(
            Phase(
                name="init",
                instructions=serial // 2,
                parallelism=1,
                shared_fraction=0.0,
                sync_per_kinst=0.0,
                **common,
            ),
            Phase(
                name="roi",
                instructions=parallel,
                parallelism=_MAX_PARALLELISM,
                shared_fraction=app.shared_fraction,
                sync_per_kinst=app.sync_per_kinst,
                **common,
            ),
            Phase(
                name="finish",
                instructions=serial - serial // 2,
                parallelism=1,
                shared_fraction=0.0,
                sync_per_kinst=0.0,
                **common,
            ),
        ),
    )
