"""The full-system boot workload.

Use-case 2 boots Linux under two *boot types* (Fig 8): ``init`` — boot the
kernel and run a trivial init that exits immediately — and ``systemd`` —
continue into userspace to runlevel 5 (multi-user).  The boot workload is
synthesized from the kernel model's phase breakdown plus, for ``systemd``,
the distro's init workload.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.guest.kernels import LinuxKernel
from repro.sim.workload.phases import Phase, Workload

#: The two boot types of the Fig 8 sweep.
BOOT_TYPES = ("init", "systemd")

_MiB = 1024 * 1024

#: Kernel boot memory profile: small hot footprint, driver tables beyond L2.
_KERNEL_PROFILE = dict(
    mem_accesses_per_kinst=350.0,
    working_set_bytes=12 * _MiB,
    locality=0.90,
    write_fraction=0.40,
    imbalance_sensitivity=0.10,
)


def boot_workload(
    kernel: LinuxKernel,
    boot_type: str = "systemd",
    init_instructions: int = 250_000_000,
) -> Workload:
    """Build the boot workload for a kernel and boot type.

    ``init_instructions`` is the userspace init cost (taken from the distro
    model when booting a real image); ignored for ``init`` boots.
    """
    if boot_type not in BOOT_TYPES:
        raise ValidationError(
            f"unknown boot type {boot_type!r}; one of {BOOT_TYPES}"
        )
    phases = [
        Phase(
            name=f"kernel.{phase_name}",
            instructions=instructions,
            parallelism=1,
            shared_fraction=0.02,
            sync_per_kinst=0.05,
            **_KERNEL_PROFILE,
        )
        for phase_name, instructions in kernel.boot_phases
    ]
    if boot_type == "systemd":
        phases.append(
            Phase(
                name="userspace.runlevel5",
                instructions=init_instructions,
                parallelism=2,  # systemd parallelizes service startup some
                shared_fraction=0.10,
                sync_per_kinst=0.30,
                mem_accesses_per_kinst=330.0,
                working_set_bytes=24 * _MiB,
                locality=0.90,
                write_fraction=0.35,
                imbalance_sensitivity=0.10,
            )
        )
    return Workload(
        name=f"boot.linux-{kernel.version}.{boot_type}",
        phases=tuple(phases),
    )
