"""Workload behaviour models: phase descriptors, the PARSEC suite, and the
full-system boot workload."""

from repro.sim.workload.phases import Phase, Workload
from repro.sim.workload.parsec import (
    PARSEC_APPS,
    PARSEC_WORKING_APPS,
    PARSEC_BROKEN_APPS,
    ParsecApp,
    get_parsec_workload,
    INPUT_SIZES,
)
from repro.sim.workload.boot import boot_workload, BOOT_TYPES
from repro.sim.workload.npb import NPB_APPS, NPB_CLASSES, get_npb_workload
from repro.sim.workload.gapbs import GAPBS_KERNELS, get_gapbs_workload
from repro.sim.workload.spec import (
    SPEC_BENCHMARKS,
    SPEC_INPUTS,
    get_spec_workload,
)
from repro.sim.workload.registry import (
    DEFAULT_INPUTS,
    get_workload,
    suite_apps,
)

__all__ = [
    "NPB_APPS",
    "NPB_CLASSES",
    "get_npb_workload",
    "GAPBS_KERNELS",
    "get_gapbs_workload",
    "SPEC_BENCHMARKS",
    "SPEC_INPUTS",
    "get_spec_workload",
    "DEFAULT_INPUTS",
    "get_workload",
    "suite_apps",
    "Phase",
    "Workload",
    "PARSEC_APPS",
    "PARSEC_WORKING_APPS",
    "PARSEC_BROKEN_APPS",
    "ParsecApp",
    "get_parsec_workload",
    "INPUT_SIZES",
    "boot_workload",
    "BOOT_TYPES",
]
