"""Phase-level workload description.

Benchmarks are modelled as ordered phases, each with a statistical profile
of the properties the timing models consume.  This is the standard analytic
abstraction: the experiments in the paper measure how *system configuration*
changes execution, so what must be faithful is each workload's parallelism,
memory behaviour and synchronization density — not its arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class Phase:
    """One homogeneous region of a workload."""

    name: str
    #: Dynamic instructions in the reference (GCC 7.4) build.
    instructions: int
    #: Maximum threads that can make progress concurrently (1 == serial).
    parallelism: int = 1
    #: Memory accesses per 1000 instructions.
    mem_accesses_per_kinst: float = 300.0
    #: Bytes touched with uniform reuse during the phase.
    working_set_bytes: int = 4 * 1024 * 1024
    #: Fraction of accesses absorbed by near-register reuse (L1 hits).
    locality: float = 0.92
    #: Fraction of the working set shared between threads.
    shared_fraction: float = 0.05
    #: Fraction of accesses that are writes.
    write_fraction: float = 0.30
    #: Synchronization events (locks/barriers) per 1000 instructions.
    sync_per_kinst: float = 0.0
    #: Sensitivity of this phase to OS scheduler placement quality (0..1):
    #: how much load imbalance the scheduler can add or remove.
    imbalance_sensitivity: float = 0.15
    #: How regular (stride-predictable) the access stream is (0..1):
    #: 1.0 is pure streaming, 0.0 is pointer chasing.  Consumed by the
    #: optional prefetcher model.
    access_regularity: float = 0.5

    def __post_init__(self):
        if self.instructions < 0:
            raise ValidationError("instructions must be >= 0")
        if self.parallelism < 1:
            raise ValidationError("parallelism must be >= 1")
        for bounded, value in (
            ("locality", self.locality),
            ("shared_fraction", self.shared_fraction),
            ("write_fraction", self.write_fraction),
            ("imbalance_sensitivity", self.imbalance_sensitivity),
            ("access_regularity", self.access_regularity),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{bounded} must be within [0, 1]")
        if self.mem_accesses_per_kinst < 0 or self.sync_per_kinst < 0:
            raise ValidationError("per-kinst rates must be >= 0")


@dataclass(frozen=True)
class Workload:
    """An ordered tuple of phases with a name for stats/provenance."""

    name: str
    phases: Tuple[Phase, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.name:
            raise ValidationError("workload needs a name")
        if not self.phases:
            raise ValidationError("workload needs at least one phase")

    def total_instructions(self) -> int:
        return sum(phase.instructions for phase in self.phases)

    def max_parallelism(self) -> int:
        return max(phase.parallelism for phase in self.phases)
