"""The GAP Benchmark Suite (GAPBS) as workload models.

Six graph kernels over a synthetic Kronecker graph of a given *scale*
(2^scale vertices, average degree 16) — the standard GAPBS invocation
``-g <scale>``.  Graph analytics is the canonically cache-hostile
workload class: very low locality, shared read-mostly graph structure,
and per-kernel instruction costs that scale with edges (pr/bc do many
iterations; tc is compute-heavier per edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import NotFoundError, ValidationError
from repro.sim.workload.phases import Phase, Workload

#: Bytes per edge in CSR form (two 4-byte endpoints + payload/overheads).
_BYTES_PER_EDGE = 12
_AVERAGE_DEGREE = 16
_MAX_PARALLELISM = 128

#: Supported graph scales (2^scale vertices).
MIN_SCALE, MAX_SCALE = 10, 26
DEFAULT_SCALE = 16


@dataclass(frozen=True)
class GapbsKernel:
    """One GAPBS kernel's per-edge cost profile."""

    name: str
    description: str
    #: Dynamic instructions per edge traversed (across all iterations).
    instructions_per_edge: float
    locality: float
    write_fraction: float
    sync_per_kinst: float


GAPBS_KERNELS: Dict[str, GapbsKernel] = {
    kernel.name: kernel
    for kernel in (
        GapbsKernel("bc", "betweenness centrality", 60.0, 0.72, 0.30, 0.5),
        GapbsKernel("bfs", "breadth-first search", 12.0, 0.70, 0.25, 0.6),
        GapbsKernel("cc", "connected components", 18.0, 0.72, 0.35, 0.4),
        GapbsKernel("pr", "PageRank (20 iterations)", 45.0, 0.75, 0.30, 0.3),
        GapbsKernel("sssp", "single-source shortest paths", 30.0, 0.70,
                    0.30, 0.7),
        GapbsKernel("tc", "triangle counting", 90.0, 0.78, 0.10, 0.2),
    )
}


def get_gapbs_kernel(name: str) -> GapbsKernel:
    if name not in GAPBS_KERNELS:
        raise NotFoundError(
            f"unknown GAPBS kernel {name!r}; known: "
            f"{sorted(GAPBS_KERNELS)}"
        )
    return GAPBS_KERNELS[name]


def get_gapbs_workload(name: str, scale: int = DEFAULT_SCALE) -> Workload:
    """Build the workload for one kernel over a scale-``scale`` graph."""
    kernel = get_gapbs_kernel(name)
    if not MIN_SCALE <= scale <= MAX_SCALE:
        raise ValidationError(
            f"graph scale {scale} outside supported range "
            f"[{MIN_SCALE}, {MAX_SCALE}]"
        )
    vertices = 1 << scale
    edges = vertices * _AVERAGE_DEGREE
    build_instructions = int(edges * 8)  # graph construction pass
    kernel_instructions = int(edges * kernel.instructions_per_edge)
    working_set = edges * _BYTES_PER_EDGE
    common = dict(
        mem_accesses_per_kinst=480.0,  # pointer chasing
        working_set_bytes=working_set,
        write_fraction=kernel.write_fraction,
        imbalance_sensitivity=0.25,  # frontier imbalance
    )
    return Workload(
        name=f"gapbs.{kernel.name}.g{scale}",
        phases=(
            Phase(
                name="build_graph",
                instructions=build_instructions,
                parallelism=_MAX_PARALLELISM,
                locality=0.85,
                shared_fraction=0.10,
                sync_per_kinst=0.1,
                access_regularity=0.7,  # sequential edge-list scan
                **common,
            ),
            Phase(
                name="kernel",
                instructions=kernel_instructions,
                parallelism=_MAX_PARALLELISM,
                locality=kernel.locality,
                shared_fraction=0.60,  # the graph itself is shared
                sync_per_kinst=kernel.sync_per_kinst,
                access_regularity=0.1,  # pointer chasing
                **common,
            ),
        ),
    )
