"""Cross-suite workload lookup.

The run layer discovers which benchmarks a disk image carries from the
image metadata (``{"suite": ..., "app": ...}`` entries written by the
packer's ``build-benchmark`` step); this registry maps those (suite, app)
pairs to executable workloads, with per-suite input-size vocabularies:

- ``parsec`` — simsmall / simmedium / simlarge,
- ``npb`` — classes S / W / A / B / C,
- ``gapbs`` — graph scale as a decimal string (e.g. ``"16"``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.errors import NotFoundError, ValidationError
from repro.sim.workload.gapbs import (
    DEFAULT_SCALE,
    GAPBS_KERNELS,
    get_gapbs_workload,
)
from repro.sim.workload.npb import NPB_APPS, get_npb_workload
from repro.sim.workload.parsec import PARSEC_APPS, get_parsec_workload
from repro.sim.workload.phases import Workload
from repro.sim.workload.spec import SPEC_BENCHMARKS, get_spec_workload

#: Default input size per suite.
DEFAULT_INPUTS = {
    "parsec": "simmedium",
    "npb": "A",
    "gapbs": str(DEFAULT_SCALE),
    "spec-2006": "ref",
    "spec-2017": "ref",
}


def suite_apps(suite: str) -> Tuple[str, ...]:
    """The applications a suite provides."""
    if suite == "parsec":
        return tuple(sorted(PARSEC_APPS))
    if suite == "npb":
        return tuple(sorted(NPB_APPS))
    if suite == "gapbs":
        return tuple(sorted(GAPBS_KERNELS))
    if suite in SPEC_BENCHMARKS:
        return tuple(sorted(SPEC_BENCHMARKS[suite]))
    raise NotFoundError(
        f"unknown benchmark suite {suite!r}; known: "
        f"{sorted(DEFAULT_INPUTS)}"
    )


def get_workload(
    suite: str, app: str, input_size: Optional[str] = None
) -> Workload:
    """Build the workload for (suite, app) at an input size.

    ``input_size=None`` selects the suite's default.
    """
    if suite not in DEFAULT_INPUTS:
        raise NotFoundError(
            f"unknown benchmark suite {suite!r}; known: "
            f"{sorted(DEFAULT_INPUTS)}"
        )
    size = input_size or DEFAULT_INPUTS[suite]
    if suite == "parsec":
        return get_parsec_workload(app, size)
    if suite == "npb":
        return get_npb_workload(app, size)
    if suite in SPEC_BENCHMARKS:
        return get_spec_workload(suite, app, size)
    # gapbs: the input is the graph scale.
    try:
        scale = int(size)
    except ValueError:
        raise ValidationError(
            f"gapbs input size must be a graph scale integer, got "
            f"{size!r}"
        )
    return get_gapbs_workload(app, scale)


def broken_reason(suite: str, app: str) -> Optional[str]:
    """Non-None when the benchmark is known-broken (fails at run time)."""
    if suite == "parsec":
        parsec_app = PARSEC_APPS.get(app)
        if parsec_app is not None and parsec_app.broken:
            return parsec_app.broken_reason
    return None


def installed_benchmarks(metadata: Dict) -> Dict[str, str]:
    """Map app → suite for the benchmarks built into a disk image."""
    return {
        entry["app"]: entry["suite"]
        for entry in metadata.get("benchmarks", [])
    }
