"""SPEC CPU 2006 / 2017 as workload models.

Table I ships SPEC as *scripts only* (licensing forbids pre-built
images); once a user builds the image from their own media, these
profiles make the benchmarks runnable.  SPEC CPU speed runs are
single-threaded by construction (``parallelism=1``), which is why the
suite exercises a completely different axis of the simulator than PARSEC:
per-core memory behaviour rather than scaling.

Profiles follow the suites' published characterizations — ``mcf`` is the
canonical memory-bound pointer chaser, ``libquantum`` streams,
``exchange2`` is pure integer compute, etc.  Input sets scale work the
SPEC way: ``test`` ≪ ``train`` ≪ ``ref``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import NotFoundError, ValidationError
from repro.sim.workload.phases import Phase, Workload

#: Instruction multipliers per SPEC input set (relative to ref).
SPEC_INPUTS = {"test": 0.02, "train": 0.15, "ref": 1.0}

_MiB = 1024 * 1024


@dataclass(frozen=True)
class SpecBenchmark:
    """One SPEC benchmark's ref-input profile."""

    name: str
    suite: str  # "spec-2006" | "spec-2017"
    domain: str
    instructions: int
    working_set_bytes: int
    mem_accesses_per_kinst: float
    locality: float
    write_fraction: float
    #: Stride predictability of the access stream (prefetcher model).
    access_regularity: float = 0.5


def _spec06(name, domain, instructions, ws, apki, locality, write,
            regularity=0.5):
    return SpecBenchmark(
        name, "spec-2006", domain, instructions, ws, apki, locality,
        write, regularity,
    )


def _spec17(name, domain, instructions, ws, apki, locality, write,
            regularity=0.5):
    return SpecBenchmark(
        name, "spec-2017", domain, instructions, ws, apki, locality,
        write, regularity,
    )


_BENCHMARKS = [
    # ---------------------------------------------------------- CPU2006 int
    _spec06("perlbench", "scripting interpreter",
            1_300_000_000, 64 * _MiB, 330, 0.93, 0.30),
    _spec06("bzip2", "compression",
            1_100_000_000, 96 * _MiB, 300, 0.91, 0.35),
    _spec06("gcc", "compiler",
            900_000_000, 128 * _MiB, 360, 0.88, 0.35),
    _spec06("mcf", "combinatorial optimization (memory bound)",
            700_000_000, 860 * _MiB, 480, 0.74, 0.30, regularity=0.05),
    _spec06("gobmk", "game AI (go)",
            1_200_000_000, 32 * _MiB, 290, 0.93, 0.25),
    _spec06("hmmer", "gene sequence search",
            1_500_000_000, 40 * _MiB, 260, 0.95, 0.25),
    _spec06("sjeng", "game AI (chess)",
            1_400_000_000, 180 * _MiB, 280, 0.92, 0.25),
    _spec06("libquantum", "quantum simulation (streaming)",
            1_800_000_000, 64 * _MiB, 420, 0.82, 0.30, regularity=0.95),
    _spec06("h264ref", "video encoding",
            2_000_000_000, 64 * _MiB, 310, 0.93, 0.30),
    _spec06("omnetpp", "discrete-event network simulation",
            800_000_000, 160 * _MiB, 400, 0.83, 0.35),
    _spec06("astar", "path finding",
            1_000_000_000, 180 * _MiB, 380, 0.86, 0.30),
    _spec06("xalancbmk", "XML transformation",
            1_100_000_000, 380 * _MiB, 390, 0.84, 0.30),
    # --------------------------------------------------------- CPU2017 rate
    _spec17("perlbench_r", "scripting interpreter",
            1_600_000_000, 128 * _MiB, 330, 0.93, 0.30),
    _spec17("gcc_r", "compiler",
            1_200_000_000, 700 * _MiB, 360, 0.87, 0.35),
    _spec17("mcf_r", "combinatorial optimization (memory bound)",
            900_000_000, 1400 * _MiB, 470, 0.73, 0.30, regularity=0.05),
    _spec17("omnetpp_r", "discrete-event network simulation",
            1_000_000_000, 240 * _MiB, 410, 0.82, 0.35),
    _spec17("xalancbmk_r", "XML transformation",
            1_200_000_000, 480 * _MiB, 390, 0.84, 0.30),
    _spec17("x264_r", "video encoding",
            2_200_000_000, 140 * _MiB, 300, 0.93, 0.30),
    _spec17("deepsjeng_r", "game AI (alpha-beta search)",
            1_500_000_000, 700 * _MiB, 290, 0.91, 0.25),
    _spec17("leela_r", "game AI (monte-carlo go)",
            1_700_000_000, 64 * _MiB, 280, 0.94, 0.25),
    _spec17("exchange2_r", "recursive integer compute",
            2_400_000_000, 1 * _MiB, 180, 0.98, 0.20),
    _spec17("xz_r", "compression",
            1_300_000_000, 1100 * _MiB, 350, 0.85, 0.35),
]

SPEC_BENCHMARKS: Dict[str, Dict[str, SpecBenchmark]] = {
    "spec-2006": {},
    "spec-2017": {},
}
for _benchmark in _BENCHMARKS:
    SPEC_BENCHMARKS[_benchmark.suite][_benchmark.name] = _benchmark


def get_spec_benchmark(suite: str, name: str) -> SpecBenchmark:
    if suite not in SPEC_BENCHMARKS:
        raise NotFoundError(
            f"unknown SPEC suite {suite!r}; known: "
            f"{sorted(SPEC_BENCHMARKS)}"
        )
    benchmarks = SPEC_BENCHMARKS[suite]
    if name not in benchmarks:
        raise NotFoundError(
            f"unknown {suite} benchmark {name!r}; known: "
            f"{sorted(benchmarks)}"
        )
    return benchmarks[name]


def get_spec_workload(
    suite: str, name: str, input_set: str = "ref"
) -> Workload:
    """Build the (single-threaded) workload for one SPEC benchmark."""
    benchmark = get_spec_benchmark(suite, name)
    if input_set not in SPEC_INPUTS:
        raise ValidationError(
            f"unknown SPEC input set {input_set!r}; one of "
            f"{sorted(SPEC_INPUTS)}"
        )
    scale = SPEC_INPUTS[input_set]
    instructions = int(benchmark.instructions * scale)
    working_set = max(
        1 * _MiB, int(benchmark.working_set_bytes * scale ** 0.5)
    )
    return Workload(
        name=f"{suite}.{name}.{input_set}",
        phases=(
            Phase(
                name="main",
                instructions=instructions,
                parallelism=1,  # SPEC speed runs are single-threaded
                mem_accesses_per_kinst=benchmark.mem_accesses_per_kinst,
                working_set_bytes=working_set,
                locality=benchmark.locality,
                shared_fraction=0.0,
                write_fraction=benchmark.write_fraction,
                sync_per_kinst=0.0,
                access_regularity=benchmark.access_regularity,
            ),
        ),
    )
