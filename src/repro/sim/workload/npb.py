"""The NAS Parallel Benchmarks (NPB) as workload models.

gem5-resources ships an NPB disk image (Table I); these profiles make it
runnable.  The eight kernels/pseudo-apps follow their published
characterizations: ``ep`` is embarrassingly parallel compute, ``cg`` and
``mg`` are irregular/memory-bound, ``ft`` is all-to-all memory heavy,
``is`` is a memory-bound integer sort, and ``bt``/``sp``/``lu`` are
structured solvers with substantial communication.

Input *classes* follow NPB convention: S and W are toy sizes, A/B/C grow
roughly 4x in work per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import NotFoundError, ValidationError
from repro.sim.workload.phases import Phase, Workload

#: Work multipliers per NPB class, relative to class A.
NPB_CLASSES = {
    "S": 0.02,
    "W": 0.10,
    "A": 1.0,
    "B": 4.0,
    "C": 16.0,
}

_MiB = 1024 * 1024
_MAX_PARALLELISM = 128


@dataclass(frozen=True)
class NpbApp:
    """One NPB benchmark's class-A reference profile."""

    name: str
    description: str
    instructions: int
    parallel_fraction: float
    working_set_bytes: int
    mem_accesses_per_kinst: float
    locality: float
    shared_fraction: float
    write_fraction: float
    sync_per_kinst: float


NPB_APPS: Dict[str, NpbApp] = {
    app.name: app
    for app in (
        NpbApp(
            "bt", "block tri-diagonal solver",
            2_400_000_000, 0.96, 96 * _MiB, 330, 0.90, 0.20, 0.35, 0.5,
        ),
        NpbApp(
            "cg", "conjugate gradient, irregular memory",
            1_200_000_000, 0.94, 64 * _MiB, 420, 0.82, 0.30, 0.25, 0.8,
        ),
        NpbApp(
            "ep", "embarrassingly parallel random numbers",
            1_000_000_000, 0.99, 1 * _MiB, 160, 0.97, 0.00, 0.15, 0.05,
        ),
        NpbApp(
            "ft", "3-D FFT, all-to-all communication",
            1_800_000_000, 0.95, 160 * _MiB, 380, 0.85, 0.40, 0.40, 0.6,
        ),
        NpbApp(
            "is", "integer sort, memory bound",
            400_000_000, 0.93, 80 * _MiB, 450, 0.80, 0.35, 0.45, 0.7,
        ),
        NpbApp(
            "lu", "lower-upper Gauss-Seidel solver",
            2_200_000_000, 0.95, 64 * _MiB, 340, 0.89, 0.25, 0.35, 1.0,
        ),
        NpbApp(
            "mg", "multi-grid, long/short distance memory",
            900_000_000, 0.94, 128 * _MiB, 400, 0.84, 0.30, 0.35, 0.6,
        ),
        NpbApp(
            "sp", "scalar penta-diagonal solver",
            2_600_000_000, 0.96, 96 * _MiB, 350, 0.89, 0.22, 0.35, 0.6,
        ),
    )
}


def get_npb_app(name: str) -> NpbApp:
    if name not in NPB_APPS:
        raise NotFoundError(
            f"unknown NPB benchmark {name!r}; known: {sorted(NPB_APPS)}"
        )
    return NPB_APPS[name]


def get_npb_workload(name: str, npb_class: str = "A") -> Workload:
    """Build the workload for one NPB benchmark at one input class."""
    app = get_npb_app(name)
    if npb_class not in NPB_CLASSES:
        raise ValidationError(
            f"unknown NPB class {npb_class!r}; one of "
            f"{sorted(NPB_CLASSES)}"
        )
    scale = NPB_CLASSES[npb_class]
    instructions = int(app.instructions * scale)
    # Working sets grow sub-linearly with the class (cube-root-ish grids).
    working_set = max(
        256 * 1024, int(app.working_set_bytes * scale ** (2.0 / 3.0))
    )
    serial = int(instructions * (1.0 - app.parallel_fraction))
    common = dict(
        mem_accesses_per_kinst=app.mem_accesses_per_kinst,
        working_set_bytes=working_set,
        locality=app.locality,
        write_fraction=app.write_fraction,
        imbalance_sensitivity=0.15,
    )
    return Workload(
        name=f"npb.{app.name}.{npb_class}",
        phases=(
            Phase(
                name="init",
                instructions=serial,
                parallelism=1,
                shared_fraction=0.0,
                sync_per_kinst=0.0,
                **common,
            ),
            Phase(
                name="iterations",
                instructions=instructions - serial,
                parallelism=_MAX_PARALLELISM,
                shared_fraction=app.shared_fraction,
                sync_per_kinst=app.sync_per_kinst,
                **common,
            ),
        ),
    )
