"""CPU timing models."""

from repro.sim.cpu.models import (
    CpuModel,
    KvmCPU,
    AtomicSimpleCPU,
    TimingSimpleCPU,
    O3CPU,
    build_cpu_model,
)

__all__ = [
    "CpuModel",
    "KvmCPU",
    "AtomicSimpleCPU",
    "TimingSimpleCPU",
    "O3CPU",
    "build_cpu_model",
]
