"""The four CPU models of the paper's Fig 8 caption:

- **kvmCPU** — "simulates code using hosts' hardware": no timing model at
  all; the guest executes at an assumed host rate and microarchitectural
  statistics are meaningless.
- **AtomicSimpleCPU** — "uses atomic memory accesses and no timing
  simulation": one instruction per cycle, memory latency invisible.
- **TimingSimpleCPU** — "uses timing simulation only for memory accesses":
  in-order, one instruction per cycle, but every memory access pays full
  AMAT (no overlap).
- **O3CPU** — "an out-of-order CPU, uses timing for both CPU and memory":
  superscalar base CPI with substantial memory-latency overlap.

Each model converts a phase's per-instruction profile into cycles per
instruction; the execution engine multiplies by instruction counts and the
clock to get ticks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.sim.mem.hierarchy import MemoryTimings

#: Assumed host execution rate for the KVM CPU (instructions/second).
#: KVM executes guest code natively on a superscalar host core, so the
#: effective rate is several instructions per host cycle.
KVM_HOST_RATE = 8.0e9


@dataclass(frozen=True)
class CpuModel:
    """A CPU timing model as (base CPI, memory exposure) coefficients.

    ``memory_exposure`` is the fraction of AMAT that actually stalls the
    pipeline: 1.0 for a blocking in-order CPU, < 1 for an out-of-order core
    that overlaps misses, 0 for models that do not time memory at all.
    """

    name: str
    base_cpi: float
    memory_exposure: float
    #: Whether microarchitectural stats are meaningful for this model.
    models_timing: bool = True

    def cycles_per_instruction(
        self,
        accesses_per_instruction: float,
        timings: MemoryTimings,
    ) -> float:
        """Effective CPI for a phase with the given memory behaviour."""
        if accesses_per_instruction < 0:
            raise ValidationError("accesses/instruction must be >= 0")
        # The L1 hit latency is part of base CPI (pipelined); only the
        # miss-side AMAT beyond the hit cost stalls.
        stall_cycles_per_access = max(
            0.0, timings.amat_cycles - 1.0
        ) * self.memory_exposure
        return self.base_cpi + (
            accesses_per_instruction * stall_cycles_per_access
        )


KvmCPU = CpuModel(
    name="kvm", base_cpi=0.0, memory_exposure=0.0, models_timing=False
)
AtomicSimpleCPU = CpuModel(
    name="atomic", base_cpi=1.0, memory_exposure=0.0
)
TimingSimpleCPU = CpuModel(
    name="timing", base_cpi=1.0, memory_exposure=1.0
)
O3CPU = CpuModel(name="o3", base_cpi=0.30, memory_exposure=0.35)

_MODELS = {
    "kvm": KvmCPU,
    "atomic": AtomicSimpleCPU,
    "timing": TimingSimpleCPU,
    "o3": O3CPU,
}


def build_cpu_model(cpu_type: str) -> CpuModel:
    if cpu_type not in _MODELS:
        raise ValidationError(
            f"unknown cpu type {cpu_type!r}; one of {sorted(_MODELS)}"
        )
    return _MODELS[cpu_type]
