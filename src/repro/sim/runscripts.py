"""gem5 run scripts as objects.

The "system configuration (python script)" box of the paper's Fig 1: each
gem5-resources workload ships a run script that takes positional
parameters (disk image, kernel, CPU type, core count, ...).  gem5art then
documents the exact command line that reproduces a run.

:class:`RunScript` models one such script: an ordered positional-parameter
contract with types, choices and defaults; parsing produces the keyword
set :class:`~repro.sim.simulator.Gem5Simulator` consumes, and
:meth:`command_line` renders the reproduction command that run documents
record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.sim.config import CPU_TYPES, MEMORY_SYSTEMS


@dataclass(frozen=True)
class ScriptParam:
    """One positional parameter of a run script."""

    name: str
    convert: Callable[[str], Any] = str
    choices: Optional[Tuple[Any, ...]] = None
    default: Any = None
    required: bool = True

    def parse(self, token: Optional[str]) -> Any:
        if token is None:
            if self.required:
                raise ValidationError(
                    f"missing required parameter {self.name!r}"
                )
            return self.default
        try:
            value = self.convert(token)
        except (TypeError, ValueError):
            raise ValidationError(
                f"parameter {self.name!r}: cannot convert {token!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ValidationError(
                f"parameter {self.name!r}: {value!r} not one of "
                f"{list(self.choices)}"
            )
        return value


@dataclass(frozen=True)
class RunScript:
    """A named script with an ordered parameter contract."""

    name: str
    path: str
    params: Tuple[ScriptParam, ...]
    description: str = ""

    def parse(self, argv: Sequence[str]) -> Dict[str, Any]:
        """Parse positional arguments into a parameter dict."""
        argv = list(argv)
        required = [p for p in self.params if p.required]
        if len(argv) < len(required):
            raise ValidationError(
                f"{self.name}: expected at least {len(required)} "
                f"arguments ({[p.name for p in required]}), got "
                f"{len(argv)}"
            )
        if len(argv) > len(self.params):
            raise ValidationError(
                f"{self.name}: too many arguments "
                f"({len(argv)} > {len(self.params)})"
            )
        values: Dict[str, Any] = {}
        for index, param in enumerate(self.params):
            token = argv[index] if index < len(argv) else None
            values[param.name] = param.parse(token)
        return values

    def command_line(self, binary: str, argv: Sequence[str]) -> str:
        """The documented reproduction command for one invocation."""
        self.parse(argv)  # validate before documenting
        return " ".join([binary, self.path] + [str(a) for a in argv])

    def usage(self) -> str:
        parts = []
        for param in self.params:
            label = param.name
            if param.choices:
                label += "{" + "|".join(str(c) for c in param.choices) + "}"
            parts.append(f"<{label}>" if param.required else f"[{label}]")
        return f"{self.path} " + " ".join(parts)


_CPU_PARAM = ScriptParam("cpu_type", choices=tuple(CPU_TYPES))
_MEM_PARAM = ScriptParam(
    "memory_system", choices=tuple(MEMORY_SYSTEMS), required=False,
    default="classic",
)
_CORES_PARAM = ScriptParam("num_cpus", convert=int, choices=(1, 2, 4, 8))


#: The boot-exit resource's run script (use-case 2).
BOOT_EXIT_SCRIPT = RunScript(
    name="boot-exit",
    path="configs/run_exit.py",
    description="boot Linux and exit via the m5 op",
    params=(
        ScriptParam("kernel"),
        ScriptParam("disk_image"),
        _CPU_PARAM,
        _CORES_PARAM,
        ScriptParam("boot_type", choices=("init", "systemd")),
        _MEM_PARAM,
    ),
)

#: The PARSEC resource's run script (use-case 1).
PARSEC_SCRIPT = RunScript(
    name="parsec",
    path="configs/run_parsec.py",
    description="boot Linux and run one PARSEC application",
    params=(
        ScriptParam("kernel"),
        ScriptParam("disk_image"),
        _CPU_PARAM,
        ScriptParam("benchmark"),
        ScriptParam(
            "input_size",
            choices=("simsmall", "simmedium", "simlarge"),
        ),
        _CORES_PARAM,
        _MEM_PARAM,
    ),
)

#: The NPB resource's run script.
NPB_SCRIPT = RunScript(
    name="npb",
    path="configs/run_npb.py",
    description="boot Linux and run one NAS Parallel Benchmark",
    params=(
        ScriptParam("kernel"),
        ScriptParam("disk_image"),
        _CPU_PARAM,
        ScriptParam("benchmark"),
        ScriptParam("input_size", choices=("S", "W", "A", "B", "C")),
        _CORES_PARAM,
        _MEM_PARAM,
    ),
)

#: The GAPBS resource's run script.
GAPBS_SCRIPT = RunScript(
    name="gapbs",
    path="configs/run_gapbs.py",
    description="boot Linux and run one GAP benchmark kernel",
    params=(
        ScriptParam("kernel"),
        ScriptParam("disk_image"),
        _CPU_PARAM,
        ScriptParam("benchmark"),
        ScriptParam("input_size", convert=int),
        _CORES_PARAM,
        _MEM_PARAM,
    ),
)

RUN_SCRIPTS = {
    script.name: script
    for script in (
        BOOT_EXIT_SCRIPT,
        PARSEC_SCRIPT,
        NPB_SCRIPT,
        GAPBS_SCRIPT,
    )
}


def get_run_script(name: str) -> RunScript:
    if name not in RUN_SCRIPTS:
        raise ValidationError(
            f"unknown run script {name!r}; known: {sorted(RUN_SCRIPTS)}"
        )
    return RUN_SCRIPTS[name]
