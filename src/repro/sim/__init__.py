"""A full-system computer-architecture simulator — the gem5 substitute.

gem5art treats gem5 as a black box with a well-defined contract: a simulator
binary (compiled from a source revision with a static configuration) takes a
run script, a kernel, a disk image and parameters, and produces statistics
or a characteristic failure.  This package implements that contract with a
discrete-event simulator detailed enough to drive every experiment in the
paper:

- four CPU models (``kvm``, ``atomic``, ``timing``, ``o3``) with distinct
  timing behaviour,
- two memory systems (``classic`` and Ruby with the ``MI_example`` and
  ``MESI_Two_Level`` protocols) with a cache/coherence timing model,
- a full-system boot sequencer driven by the guest kernel/distro models,
- workload execution for multi-threaded benchmark suites (PARSEC),
- gem5-v20.1-accurate *support limits and failure modes* via an explicit
  fault model (see :mod:`repro.sim.faults`),
- gem5-style statistics output.
"""

from repro.sim.events import EventQueue
from repro.sim.stats import StatsDB
from repro.sim.config import (
    SystemConfig,
    CacheConfig,
    MemoryTech,
    MEMORY_TECHS,
    CPU_TYPES,
    MEMORY_SYSTEMS,
)
from repro.sim.buildinfo import Gem5Build
from repro.sim.checkpoint import Checkpoint
from repro.sim.simulator import (
    Gem5Simulator,
    SimulationResult,
    SimulationStatus,
)

__all__ = [
    "EventQueue",
    "StatsDB",
    "SystemConfig",
    "CacheConfig",
    "MemoryTech",
    "MEMORY_TECHS",
    "CPU_TYPES",
    "MEMORY_SYSTEMS",
    "Gem5Build",
    "Checkpoint",
    "Gem5Simulator",
    "SimulationResult",
    "SimulationStatus",
]
