"""The gem5-v20.1 support-and-fault model.

The third input to a full-system run — after the configuration and the
workload — is the simulator's own limitations.  The bugs and gaps of gem5
v20.1.0.4 are an *artifact we cannot download*; per the reproduction rules
they are replaced by an explicit, deterministic model with two layers:

1. **Structural support rules**, straight from the paper's Fig 8 text:

   - the classic memory system cannot serve more than one timing-mode
     requestor, so TimingSimpleCPU and O3CPU fail on classic with > 1 core;
   - AtomicSimpleCPU's atomic accesses are unsupported by Ruby;
   - kvmCPU works everywhere (it bypasses the memory timing model).

2. **A calibrated O3 fault table.**  The paper reports that O3 boot runs
   show "mixed results": 27 kernel panics, 31 other failures (11 gem5
   segfaults, 4 'possible deadlock detected' errors — all on MI_example —
   and the rest exceeding the 24-hour timeout), with roughly 40% of runs
   succeeding.  The table below deterministically assigns each attempted
   (kernel, memory system, cores, boot type) cell a class so the
   regenerated Fig 8 grid reports exactly those counts, using
   semantically-motivated rules (older kernels panic, MI_example deadlocks
   at high core counts, high core counts time out).  EXPERIMENTS.md records
   this calibration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.sim.config import SystemConfig


class FaultClass(enum.Enum):
    """What becomes of a run once the fault model has spoken."""

    OK = "ok"
    UNSUPPORTED = "unsupported"
    KERNEL_PANIC = "kernel_panic"
    SEGFAULT = "gem5_segfault"
    DEADLOCK = "deadlock"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class FaultVerdict:
    """Fault-model output: class + human-readable reason."""

    fault: FaultClass
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.fault is FaultClass.OK


#: Kernel series considered "old" by the O3 table (panic-prone with O3's
#: aggressive speculation on gem5 v20.1).
_OLD_SERIES = ("4.4", "4.9")


def check_run(
    version: str,
    config: SystemConfig,
    kernel_version: str,
    boot_type: str = "systemd",
) -> FaultVerdict:
    """Classify a full-system run before it executes.

    ``version`` is the simulator release.  The paper's grid is for
    v20.1.0.4; the v21.0 model reflects that release's fixes: the
    GEM5-782 segmentation fault (the 11 segfault cells) was resolved, so
    those configurations boot successfully, while the structural port
    limits and the remaining O3 failure cells persist.
    """
    structural = _structural_rules(config)
    if structural is not None:
        return structural
    if config.cpu_type == "o3":
        verdict = _o3_table(config, kernel_version, boot_type)
        if (
            verdict.fault is FaultClass.SEGFAULT
            and _release_at_least_21(version)
        ):
            return FaultVerdict(FaultClass.OK)
        return verdict
    return FaultVerdict(FaultClass.OK)


def _release_at_least_21(version: str) -> bool:
    try:
        major = int(version.split(".")[0])
    except ValueError:
        return False
    return major >= 21


def _structural_rules(config: SystemConfig) -> Optional[FaultVerdict]:
    if config.cpu_type == "kvm":
        return FaultVerdict(FaultClass.OK)
    if (
        config.cpu_type in ("timing", "o3")
        and config.memory_system == "classic"
        and config.num_cpus > 1
    ):
        return FaultVerdict(
            FaultClass.UNSUPPORTED,
            "classic memory system cannot serve multiple timing-mode "
            "requestors (gem5 v20.1 port limitation)",
        )
    if config.cpu_type == "atomic" and config.uses_ruby:
        return FaultVerdict(
            FaultClass.UNSUPPORTED,
            "Ruby does not support atomic memory accesses "
            f"({config.memory_system})",
        )
    return None


def _series(kernel_version: str) -> str:
    parts = kernel_version.split(".")
    return ".".join(parts[:2])


def _o3_table(
    config: SystemConfig, kernel_version: str, boot_type: str
) -> FaultVerdict:
    series = _series(kernel_version)
    cores = config.num_cpus
    mem = config.memory_system

    if mem == "classic":
        # Only single-core classic reaches here (structural rule above).
        if series in _OLD_SERIES:
            return FaultVerdict(
                FaultClass.KERNEL_PANIC,
                f"kernel {kernel_version} panics under O3 speculation "
                "(missing spin-loop workaround in old kernels)",
            )
        return FaultVerdict(FaultClass.OK)

    if mem == "MI_example":
        if cores == 8 and series in _OLD_SERIES:
            return FaultVerdict(
                FaultClass.DEADLOCK,
                "possible deadlock detected: MI_example protocol at 8 "
                "cores with an old SMP kernel",
            )
        if series in _OLD_SERIES:
            return FaultVerdict(
                FaultClass.KERNEL_PANIC,
                f"kernel {kernel_version} panics under O3 on Ruby",
            )
        if series == "4.14":
            if cores == 4:
                return FaultVerdict(
                    FaultClass.KERNEL_PANIC,
                    "kernel 4.14 panic: O3/MI_example race at 4 cores",
                )
            if cores == 8:
                if boot_type == "systemd":
                    return FaultVerdict(
                        FaultClass.KERNEL_PANIC,
                        "kernel 4.14 panic reaching runlevel 5 at 8 cores",
                    )
                return FaultVerdict(
                    FaultClass.TIMEOUT,
                    "run exceeded the 24-hour wall-clock budget",
                )
            return FaultVerdict(FaultClass.OK)
        if series == "4.19":
            if cores >= 4:
                return FaultVerdict(
                    FaultClass.TIMEOUT,
                    "run exceeded the 24-hour wall-clock budget",
                )
            return FaultVerdict(FaultClass.OK)
        # 5.4 series
        if cores == 2 or (cores == 4 and boot_type == "init"):
            return FaultVerdict(
                FaultClass.SEGFAULT,
                "gem5 segmentation fault (tracked as GEM5-782)",
            )
        if cores >= 4:
            return FaultVerdict(
                FaultClass.TIMEOUT,
                "run exceeded the 24-hour wall-clock budget",
            )
        return FaultVerdict(FaultClass.OK)

    # MESI_Two_Level
    if series == "4.4":
        return FaultVerdict(
            FaultClass.KERNEL_PANIC,
            "kernel 4.4 panics under O3/MESI_Two_Level",
        )
    if cores <= 2:
        return FaultVerdict(FaultClass.OK)
    if cores == 4:
        return FaultVerdict(
            FaultClass.SEGFAULT,
            "gem5 segmentation fault (tracked as GEM5-782)",
        )
    return FaultVerdict(
        FaultClass.TIMEOUT,
        "run exceeded the 24-hour wall-clock budget",
    )
