"""The simulator front end: gem5's command-line contract as an object.

:class:`Gem5Simulator` is what a gem5art run ultimately invokes — the
equivalent of ``gem5.opt run_script.py <params>``.  It ties together the
build (version + static configuration), the system configuration, the fault
model, the boot sequencer and the workload engine, and returns a
:class:`SimulationResult` carrying the status, statistics and provenance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import NotFoundError, ValidationError
from repro.common.hashing import sha256_text
from repro.common.jsonutil import canonical_dumps
from repro.guest.compilers import get_compiler
from repro.guest.kernels import LinuxKernel, get_kernel
from repro.sim.buildinfo import Gem5Build
from repro.sim.checkpoint import Checkpoint
from repro.sim.config import SystemConfig
from repro.sim.engine import ExecutionEngine, ExecutionModifiers
from repro.sim.events import EventQueue
from repro.sim.faults import FaultClass, check_run
from repro.sim.m5ops import (
    M5_CHECKPOINT,
    M5_DUMPSTATS,
    M5_EXIT,
    M5_RESETSTATS,
    M5OpLog,
)
from repro.sim.stats import StatsDB
from repro.sim.workload.boot import boot_workload
from repro.sim.workload.registry import (
    DEFAULT_INPUTS,
    broken_reason,
    get_workload,
    installed_benchmarks,
)
from repro.sim.workload.phases import Workload
from repro.telemetry import get_metrics, get_tracer
from repro.vfs.image import DiskImage


class SimulationStatus(enum.Enum):
    """Terminal status of one simulation, in Fig 8's vocabulary."""

    OK = "ok"
    UNSUPPORTED = "unsupported"
    KERNEL_PANIC = "kernel_panic"
    GEM5_SEGFAULT = "gem5_segfault"
    DEADLOCK = "deadlock"
    TIMEOUT = "timeout"
    WORKLOAD_ABORT = "workload_abort"


_FAULT_TO_STATUS = {
    FaultClass.OK: SimulationStatus.OK,
    FaultClass.UNSUPPORTED: SimulationStatus.UNSUPPORTED,
    FaultClass.KERNEL_PANIC: SimulationStatus.KERNEL_PANIC,
    FaultClass.SEGFAULT: SimulationStatus.GEM5_SEGFAULT,
    FaultClass.DEADLOCK: SimulationStatus.DEADLOCK,
    FaultClass.TIMEOUT: SimulationStatus.TIMEOUT,
}

#: Fraction of the boot completed before each failure class manifests
#: (used to report partial statistics the way a real crashed run would).
_FAILURE_PROGRESS = {
    SimulationStatus.KERNEL_PANIC: 0.60,
    SimulationStatus.GEM5_SEGFAULT: 0.45,
    SimulationStatus.DEADLOCK: 0.80,
    SimulationStatus.TIMEOUT: 0.35,
}


@dataclass
class SimulationResult:
    """Everything one gem5 invocation produces."""

    status: SimulationStatus
    reason: str = ""
    stats: Dict[str, float] = field(default_factory=dict)
    sim_seconds: float = 0.0
    boot_seconds: float = 0.0
    workload_seconds: float = 0.0
    instructions: int = 0
    config_summary: str = ""
    workload_name: str = ""
    m5ops: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status is SimulationStatus.OK

    def stats_txt(self) -> str:
        """Re-render the statistics in gem5 stats.txt form."""
        db = StatsDB()
        for name, value in self.stats.items():
            db.set(name, value)
        return db.dump()

    def measured_region_fingerprint(self) -> str:
        """Content hash of the measured-region statistics.

        Covers exactly the statistics attributable to the workload —
        the workload-name-prefixed entries plus the workload/ROI
        timings.  Boot-attributed statistics are excluded on purpose:
        a full-boot run accumulates them and a checkpoint-restored run
        does not, while the *measured region* must be bit-identical
        between the two (the determinism contract checkpoint restore
        rides on).
        """
        prefix = f"{self.workload_name}."
        region = {
            name: value
            for name, value in self.stats.items()
            if name.startswith(prefix)
        }
        region["workload_seconds"] = self.workload_seconds
        if "roi_seconds" in self.stats:
            region["roi_seconds"] = self.stats["roi_seconds"]
        return sha256_text(canonical_dumps(region))


class Gem5Simulator:
    """One built simulator binary plus one system configuration."""

    def __init__(self, build: Gem5Build, config: SystemConfig):
        self.build = build
        self.config = config

    # ------------------------------------------------------------ full-system

    def run_fs(
        self,
        kernel,
        disk_image: DiskImage,
        benchmark: Optional[str] = None,
        input_size: Optional[str] = None,
        boot_type: str = "systemd",
        restore_from: Optional[Checkpoint] = None,
    ) -> SimulationResult:
        """Run a full-system simulation.

        ``kernel`` may be a :class:`LinuxKernel` or a version string.  The
        boot sequence and, optionally, one benchmark from the disk image
        are executed.  The fault model is consulted first, reproducing the
        simulator release's support matrix and failure modes.

        Pass ``restore_from`` (a :class:`Checkpoint` taken by
        :meth:`take_boot_checkpoint`) to skip the boot: the checkpoint's
        recorded boot time is reported, the workload runs on this
        configuration's CPU model — the hack-back workflow.
        """
        kernel = self._resolve_kernel(kernel)
        verdict = check_run(
            self.build.version, self.config, kernel.version, boot_type
        )
        get_metrics().counter(
            "sim_fault_verdicts_total",
            "Fault-model classifications before simulation",
        ).inc(fault=verdict.fault.value)
        if not verdict.ok:
            return self._failed_result(kernel, boot_type, verdict)

        engine = self._make_engine(kernel, disk_image)
        if restore_from is not None:
            restore_from.check_compatible(
                kernel_version=kernel.version,
                disk_image_hash=disk_image.content_hash(),
                num_cpus=self.config.num_cpus,
                memory_system=self.config.memory_system,
            )
            boot_outcome = _RestoredBoot(
                sim_seconds=restore_from.boot_seconds,
                instructions=restore_from.boot_instructions,
            )
            workload_name = (
                f"restore.{restore_from.checkpoint_id[:8]}"
            )
        else:
            boot = boot_workload(
                kernel,
                boot_type=boot_type,
                init_instructions=disk_image.metadata.get(
                    "init_instructions", 250_000_000
                ),
            )
            with get_tracer().span(
                "phase.boot",
                attributes={
                    "kernel": kernel.version,
                    "boot_type": boot_type,
                },
            ) as span:
                boot_outcome = engine.execute(boot)
                span.set_attribute(
                    "sim_seconds", boot_outcome.sim_seconds
                )
                span.set_attribute(
                    "instructions", boot_outcome.instructions
                )
            workload_name = boot.name

        workload_outcome = None
        workload = None
        if benchmark is not None:
            workload = self._benchmark_workload(
                disk_image, benchmark, input_size
            )
            if isinstance(workload, SimulationResult):
                return workload  # benchmark itself is broken
            workload_name = workload.name
            with get_tracer().span(
                "phase.benchmark",
                attributes={"benchmark": workload.name},
            ) as span:
                workload_outcome = engine.execute(workload)
                span.set_attribute(
                    "sim_seconds", workload_outcome.sim_seconds
                )
                span.set_attribute(
                    "instructions", workload_outcome.instructions
                )

        op_log = self._fire_m5ops(
            engine, disk_image, workload, workload_outcome, restore_from
        )
        return self._ok_result(
            engine, boot_outcome, workload_outcome, workload_name, op_log
        )

    def take_boot_checkpoint(
        self,
        kernel,
        disk_image: DiskImage,
        boot_type: str = "systemd",
    ):
        """Boot the system and capture a checkpoint (``m5 checkpoint``).

        Returns ``(checkpoint, result)``; fails the same way a plain boot
        of this configuration would.  The usual pattern boots under a
        cheap CPU (kvm/atomic) and restores under a detailed one.
        """
        kernel = self._resolve_kernel(kernel)
        result = self.run_fs(kernel, disk_image, boot_type=boot_type)
        if not result.ok:
            return None, result
        checkpoint = Checkpoint(
            kernel_version=kernel.version,
            boot_type=boot_type,
            disk_image_hash=disk_image.content_hash(),
            num_cpus=self.config.num_cpus,
            memory_system=self.config.memory_system,
            boot_seconds=result.boot_seconds,
            boot_instructions=result.instructions,
        )
        return checkpoint, result

    # --------------------------------------------------------- syscall mode

    def run_se(self, workload: Workload) -> SimulationResult:
        """Syscall-emulation mode: run a workload with no OS boot."""
        engine = ExecutionEngine(self.config)
        outcome = engine.execute(workload)
        engine.stats.set("cpu_utilization", outcome.utilization)
        return SimulationResult(
            status=SimulationStatus.OK,
            stats=engine.stats.to_dict(),
            sim_seconds=outcome.sim_seconds,
            workload_seconds=outcome.sim_seconds,
            instructions=outcome.instructions,
            config_summary=self.config.describe(),
            workload_name=workload.name,
        )

    def run_se_rate(
        self, workload: Workload, copies: int = None
    ) -> SimulationResult:
        """SPEC-rate-style throughput run: N independent copies of a
        single-threaded workload, one per core.

        Copies do not share work — each core executes the whole workload
        — so the interesting output is *throughput* (copies per second of
        simulated time, reported as the ``rate`` statistic).  Memory-bound
        workloads stop scaling when the copies saturate DRAM bandwidth;
        cache-resident ones scale linearly.
        """
        if copies is None:
            copies = self.config.num_cpus
        if copies < 1:
            raise ValidationError("need at least one copy")
        if copies > self.config.num_cpus:
            raise ValidationError(
                f"{copies} copies need {copies} cores; system has "
                f"{self.config.num_cpus}"
            )
        from dataclasses import replace

        rate_workload = Workload(
            name=f"{workload.name}.rate{copies}",
            phases=tuple(
                replace(
                    phase,
                    instructions=phase.instructions * copies,
                    parallelism=copies,
                    # Copies are independent processes: no sharing.
                    shared_fraction=0.0,
                    sync_per_kinst=0.0,
                )
                for phase in workload.phases
            ),
        )
        result = self.run_se(rate_workload)
        if result.sim_seconds > 0:
            rate = copies / result.sim_seconds
            result.stats["rate"] = rate
            result.stats["copies"] = float(copies)
        return result

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _resolve_kernel(kernel) -> LinuxKernel:
        if isinstance(kernel, LinuxKernel):
            return kernel
        return get_kernel(str(kernel))

    def _make_engine(self, kernel: LinuxKernel, disk_image: DiskImage):
        from repro.sim.buildinfo import timing_profile

        compiler_key = disk_image.metadata.get("compiler", "gcc-7.4")
        compiler = get_compiler(compiler_key)
        release = timing_profile(self.build.version)
        modifiers = ExecutionModifiers(
            instruction_scale=compiler.instruction_scale,
            memory_stall_scale=(
                compiler.memory_cpi_scale
                * release["memory_stall_scale"]
            ),
            scheduler_efficiency=kernel.scheduler_efficiency,
            syscall_cost_scale=kernel.syscall_cost_scale,
        )
        return ExecutionEngine(
            self.config, modifiers=modifiers, queue=EventQueue()
        )

    def _benchmark_workload(
        self, disk_image: DiskImage, benchmark: str, input_size: str
    ):
        built = installed_benchmarks(disk_image.metadata)
        if benchmark not in built:
            raise NotFoundError(
                f"benchmark {benchmark!r} is not installed on disk image "
                f"{disk_image.name!r} (built: {sorted(built)})"
            )
        suite = built[benchmark]
        size = input_size or DEFAULT_INPUTS.get(suite, "default")
        reason = broken_reason(suite, benchmark)
        if reason is not None:
            return SimulationResult(
                status=SimulationStatus.WORKLOAD_ABORT,
                reason=f"{benchmark}: {reason}",
                config_summary=self.config.describe(),
                workload_name=f"{suite}.{benchmark}.{size}",
            )
        return get_workload(suite, benchmark, size)

    def _failed_result(self, kernel, boot_type, verdict) -> SimulationResult:
        status = _FAULT_TO_STATUS[verdict.fault]
        result = SimulationResult(
            status=status,
            reason=verdict.reason,
            config_summary=self.config.describe(),
            workload_name=f"boot.linux-{kernel.version}.{boot_type}",
        )
        progress = _FAILURE_PROGRESS.get(status)
        if progress is not None:
            # Crashed runs still emit partial statistics: simulate the
            # fraction of the boot that completed before the failure.
            engine = ExecutionEngine(self.config)
            boot = boot_workload(kernel, boot_type=boot_type)
            partial = Workload(
                name=boot.name + ".partial",
                phases=tuple(
                    _scale_phase(phase, progress) for phase in boot.phases
                ),
            )
            outcome = engine.execute(partial)
            result.stats = engine.stats.to_dict()
            result.sim_seconds = outcome.sim_seconds
            result.boot_seconds = outcome.sim_seconds
            result.instructions = outcome.instructions
        return result

    #: Phase names that constitute a workload's region of interest —
    #: where the gem5-resources run scripts place resetstats/dumpstats.
    _ROI_PHASES = ("roi", "iterations", "kernel", "main")

    def _fire_m5ops(
        self, engine, disk_image, workload, workload_outcome, restore_from
    ) -> M5OpLog:
        """Reconstruct the m5 pseudo-op sequence the guest fired."""
        log = M5OpLog()
        end_tick = engine.queue.now
        if restore_from is not None:
            log.fire(0, M5_CHECKPOINT)  # the restore point itself
        if workload is not None and workload_outcome is not None:
            ticks_by_phase = engine.stats.vec_get(
                f"{workload.name}.phase_ticks"
            )
            start = end_tick - workload_outcome.ticks
            cursor = start
            for phase in workload.phases:
                duration = int(ticks_by_phase.get(phase.name, 0))
                if phase.name in self._ROI_PHASES:
                    log.fire(cursor, M5_RESETSTATS)
                    log.fire(cursor + duration, M5_DUMPSTATS)
                cursor += duration
            log.fire(end_tick, M5_EXIT)
        elif disk_image.exists("/home/gem5/exit.sh"):
            # boot-exit images terminate the simulation after boot.
            log.fire(end_tick, M5_EXIT)
        return log

    def _ok_result(
        self,
        engine,
        boot_outcome,
        workload_outcome,
        workload_name,
        op_log: Optional[M5OpLog] = None,
    ) -> SimulationResult:
        boot_seconds = boot_outcome.sim_seconds
        workload_seconds = (
            workload_outcome.sim_seconds if workload_outcome else 0.0
        )
        instructions = boot_outcome.instructions + (
            workload_outcome.instructions if workload_outcome else 0
        )
        utilization = (
            workload_outcome.utilization
            if workload_outcome
            else boot_outcome.utilization
        )
        engine.stats.set("cpu_utilization", utilization)
        engine.stats.set("boot_seconds", boot_seconds)
        engine.stats.set("workload_seconds", workload_seconds)
        m5ops = []
        if op_log is not None:
            m5ops = op_log.to_list()
            roi = op_log.roi_seconds()
            if roi is not None:
                engine.stats.set("roi_seconds", roi)
        return SimulationResult(
            status=SimulationStatus.OK,
            stats=engine.stats.to_dict(),
            sim_seconds=boot_seconds + workload_seconds,
            boot_seconds=boot_seconds,
            workload_seconds=workload_seconds,
            instructions=instructions,
            config_summary=self.config.describe(),
            workload_name=workload_name,
            m5ops=m5ops,
        )


class _RestoredBoot:
    """Boot accounting for a checkpoint-restored run (no re-simulation)."""

    def __init__(self, sim_seconds: float, instructions: int):
        self.sim_seconds = sim_seconds
        self.instructions = instructions
        self.utilization = 0.0


def _scale_phase(phase, fraction: float):
    from dataclasses import replace

    if not 0.0 < fraction <= 1.0:
        raise ValidationError("fraction must be in (0, 1]")
    return replace(
        phase, instructions=int(phase.instructions * fraction)
    )
