"""Simulation checkpoints.

The ``hack-back`` resource (Table I) exists for one workflow: boot Linux
once — usually under a fast CPU model — take a checkpoint via the ``m5
checkpoint`` op, then restore it under a detailed CPU to run the region of
interest without paying for the boot again.  :class:`Checkpoint` captures
the state identity needed to make restoration safe:

- the kernel, boot type and disk image the boot used (restoring a
  checkpoint onto different guest state would be silently wrong);
- the platform shape (core count and memory system — gem5 checkpoints are
  not portable across these);
- the boot outcome (simulated time and instructions, reported by restored
  runs without re-simulation).

CPU *type* is deliberately not part of the identity: switching from a
kvm/atomic boot to a timing/O3 measurement CPU is the whole point.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.common.errors import ValidationError
from repro.common.hashing import sha256_text


@dataclass(frozen=True)
class Checkpoint:
    """A completed-boot snapshot with its compatibility identity."""

    kernel_version: str
    boot_type: str
    disk_image_hash: str
    num_cpus: int
    memory_system: str
    boot_seconds: float
    boot_instructions: int

    @cached_property
    def checkpoint_id(self) -> str:
        """Stable content identity (registerable as an artifact).

        SHA-256, like every other identity in the system (RunSpec
        fingerprints, run-cache keys, FileStore addresses); the md5
        helpers remain only for legacy resource metadata.  Cached — the
        fields are frozen, and restored runs consult the id per repeat.
        """
        return sha256_text(
            "|".join(
                [
                    self.kernel_version,
                    self.boot_type,
                    self.disk_image_hash,
                    str(self.num_cpus),
                    self.memory_system,
                ]
            )
        )

    def check_compatible(
        self,
        kernel_version: str,
        disk_image_hash: str,
        num_cpus: int,
        memory_system: str,
    ) -> None:
        """Raise when restoring onto mismatched guest or platform state."""
        mismatches = []
        if kernel_version != self.kernel_version:
            mismatches.append(
                f"kernel {kernel_version} != {self.kernel_version}"
            )
        if disk_image_hash != self.disk_image_hash:
            mismatches.append("disk image differs from checkpointed image")
        if num_cpus != self.num_cpus:
            mismatches.append(
                f"num_cpus {num_cpus} != {self.num_cpus}"
            )
        if memory_system != self.memory_system:
            mismatches.append(
                f"memory system {memory_system} != {self.memory_system}"
            )
        if mismatches:
            raise ValidationError(
                "checkpoint incompatible with this run: "
                + "; ".join(mismatches)
            )

    def to_dict(self) -> dict:
        return {
            "checkpoint_id": self.checkpoint_id,
            "kernel_version": self.kernel_version,
            "boot_type": self.boot_type,
            "disk_image_hash": self.disk_image_hash,
            "num_cpus": self.num_cpus,
            "memory_system": self.memory_system,
            "boot_seconds": self.boot_seconds,
            "boot_instructions": self.boot_instructions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        return cls(
            kernel_version=data["kernel_version"],
            boot_type=data["boot_type"],
            disk_image_hash=data["disk_image_hash"],
            num_cpus=data["num_cpus"],
            memory_system=data["memory_system"],
            boot_seconds=data["boot_seconds"],
            boot_instructions=data["boot_instructions"],
        )
