"""The experiment workflow graph (the paper's Fig 1).

Every artifact records its inputs, so a registered experiment implies a
dependency DAG: simulator source → simulator binary; kernel source →
vmlinux; benchmark repo → disk image; everything → the run.  This module
materializes that graph for inspection and documentation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.common.errors import ValidationError
from repro.art.db import ArtifactDB


def workflow_graph(db: ArtifactDB) -> Dict[str, object]:
    """Build the artifact dependency graph from the database.

    Returns ``{"nodes": [...], "edges": [(input_id, artifact_id), ...],
    "order": [...], "warnings": [...]}`` where ``order`` is a topological
    ordering.  Raises when input references dangle or form a cycle (both
    would indicate database corruption).  Duplicate entries in a
    document's ``inputs`` list are collapsed to one edge — they would
    otherwise double-count in-degree — and reported in ``warnings`` so
    sloppy stage wiring is visible without being fatal.
    """
    nodes = {}
    edges: List[Tuple[str, str]] = []
    warnings: List[Dict[str, object]] = []
    for doc in db.artifacts.all_documents():
        nodes[doc["_id"]] = {
            "id": doc["_id"],
            "name": doc["name"],
            "type": doc["type"],
        }
        seen = set()
        duplicates = []
        for input_id in doc.get("inputs", []):
            if input_id in seen:
                duplicates.append(input_id)
                continue
            seen.add(input_id)
            edges.append((input_id, doc["_id"]))
        if duplicates:
            warnings.append(
                {
                    "artifact": doc["_id"],
                    "duplicate_inputs": duplicates,
                }
            )
    for source, target in edges:
        if source not in nodes:
            raise ValidationError(
                f"artifact {target} references missing input {source}"
            )
    order = topological_order(list(nodes), edges)
    return {
        "nodes": list(nodes.values()),
        "edges": edges,
        "order": order,
        "warnings": warnings,
    }


def topological_order(
    node_ids: List[str], edges: List[Tuple[str, str]]
) -> List[str]:
    """Deterministic (lexicographic-among-ready) topological order.

    A binary heap keeps the ready set sorted, so the order matches the
    old sort-per-step implementation at O(E + V log V) instead of
    O(V^2 log V) — the difference between instant and minutes on the
    1M-artifact catalogs the storage engine targets.
    """
    incoming: Dict[str, int] = {node: 0 for node in node_ids}
    adjacency: Dict[str, List[str]] = {node: [] for node in node_ids}
    for source, target in edges:
        incoming[target] += 1
        adjacency[source].append(target)
    ready = [node for node, count in incoming.items() if count == 0]
    heapq.heapify(ready)
    order: List[str] = []
    while ready:
        node = heapq.heappop(ready)
        order.append(node)
        for neighbour in adjacency[node]:
            incoming[neighbour] -= 1
            if incoming[neighbour] == 0:
                heapq.heappush(ready, neighbour)
    if len(order) != len(node_ids):
        raise ValidationError("artifact graph contains a cycle")
    return order


#: Backwards-compatible private alias (pre-pipeline callers).
_topological_order = topological_order


def dot_escape(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT id or label.

    Graphviz quoted strings treat ``\\`` and ``"`` specially; an
    artifact named ``benchmark "v2"`` must not produce unparseable DOT.
    """
    return str(text).replace("\\", "\\\\").replace('"', '\\"')


def workflow_to_dot(db: ArtifactDB, name: str = "gem5art") -> str:
    """Render the artifact graph in Graphviz DOT syntax, one node per
    artifact (labelled name + type) and one edge per input dependency —
    the Fig 1 diagram, generated from a real experiment."""
    graph = workflow_graph(db)
    lines = [f'digraph "{dot_escape(name)}" {{', "  rankdir=LR;"]
    for node in graph["nodes"]:
        label = (
            f"{dot_escape(node['name'])}\\n({dot_escape(node['type'])})"
        )
        lines.append(f'  "{dot_escape(node["id"])}" [label="{label}"];')
    for source, target in graph["edges"]:
        lines.append(
            f'  "{dot_escape(source)}" -> "{dot_escape(target)}";'
        )
    lines.append("}")
    return "\n".join(lines)


def render_workflow(db: ArtifactDB) -> str:
    """Human-readable rendering of the workflow graph in build order."""
    graph = workflow_graph(db)
    by_id = {node["id"]: node for node in graph["nodes"]}
    inputs_of: Dict[str, List[str]] = {}
    for source, target in graph["edges"]:
        inputs_of.setdefault(target, []).append(source)
    lines = []
    for node_id in graph["order"]:
        node = by_id[node_id]
        deps = inputs_of.get(node_id, [])
        if deps:
            dep_names = ", ".join(sorted(by_id[d]["name"] for d in deps))
            lines.append(
                f"{node['name']} ({node['type']}) <- {dep_names}"
            )
        else:
            lines.append(f"{node['name']} ({node['type']})")
    return "\n".join(lines)
