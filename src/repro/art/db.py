"""The artifact database facade.

Wraps :class:`repro.db.Database` with the schema gem5art expects: an
``artifacts`` collection with a unique index on the content hash (the
paper: "Duplicate artifacts are not permitted in the database"), a ``runs``
collection for run documents, and blob storage for artifact payloads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import NotFoundError
from repro.db import Database, connect

ARTIFACTS = "artifacts"
RUNS = "runs"
RUN_CACHE = "run_cache"
CHECKPOINTS = "checkpoints"


class ArtifactDB:
    """Schema-aware wrapper over the document database."""

    def __init__(self, database: Optional[Database] = None):
        self.database = database or connect("memory://")
        self.artifacts = self.database.collection(ARTIFACTS)
        self.runs = self.database.collection(RUNS)
        self.run_cache = self.database.collection(RUN_CACHE)
        self.checkpoints = self.database.collection(CHECKPOINTS)
        self.artifacts.create_unique_index("hash")
        # One archived result per fingerprint: the memoization layer's
        # equivalent of the artifact collection's no-duplicates rule.
        self.run_cache.create_unique_index("fingerprint")
        # One boot checkpoint per prefix fingerprint: N variants sharing
        # a boot prefix must converge on one snapshot.
        self.checkpoints.create_unique_index("prefix")

    # ---------------------------------------------------------- artifacts

    def put_artifact(self, document: Dict[str, Any]) -> str:
        return self.artifacts.insert_one(document)

    def get_artifact(self, artifact_id: str) -> Dict[str, Any]:
        doc = self.artifacts.find_one({"_id": artifact_id})
        if doc is None:
            raise NotFoundError(f"no artifact with id {artifact_id}")
        return doc

    def find_by_hash(self, content_hash: str) -> Optional[Dict[str, Any]]:
        return self.artifacts.find_one({"hash": content_hash})

    def search_by_name(self, name: str) -> List[Dict[str, Any]]:
        return self.artifacts.find({"name": name})

    def search_by_type(self, typ: str) -> List[Dict[str, Any]]:
        return self.artifacts.find({"type": typ})

    def __contains__(self, content_hash: str) -> bool:
        return self.find_by_hash(content_hash) is not None

    # --------------------------------------------------------------- files

    def upload_file(self, data: bytes, filename: str = None) -> str:
        return self.database.files.put_bytes(data, filename=filename)

    def download_file(self, file_id: str) -> bytes:
        return self.database.files.get_bytes(file_id)

    def has_file(self, file_id: str) -> bool:
        return file_id in self.database.files

    def delete_file(self, file_id: str) -> bool:
        """Drop a blob — corruption recovery only (see FileStore.delete)."""
        return self.database.files.delete(file_id)

    # ---------------------------------------------------------------- runs

    def put_run(self, document: Dict[str, Any]) -> str:
        return self.runs.insert_one(document)

    def update_run(self, run_id: str, update: Dict[str, Any]) -> bool:
        return self.runs.update_one({"_id": run_id}, update)

    def get_run(self, run_id: str) -> Dict[str, Any]:
        doc = self.runs.find_one({"_id": run_id})
        if doc is None:
            raise NotFoundError(f"no run with id {run_id}")
        return doc

    def query_runs(self, query=None, **kwargs) -> List[Dict[str, Any]]:
        return self.runs.find(query, **kwargs)

    def runs_by_fingerprint(
        self, fingerprint: str
    ) -> List[Dict[str, Any]]:
        """Every run document sharing one spec fingerprint (instances of
        the same experiment point)."""
        return self.runs.find({"fingerprint": fingerprint})

    # ----------------------------------------------------------- run cache

    def put_cache_entry(self, document: Dict[str, Any]) -> str:
        return self.run_cache.insert_one(document)

    def get_cache_entry(
        self, fingerprint: str
    ) -> Optional[Dict[str, Any]]:
        return self.run_cache.find_one({"fingerprint": fingerprint})

    def update_cache_entry(
        self, fingerprint: str, update: Dict[str, Any]
    ) -> bool:
        return self.run_cache.update_one(
            {"fingerprint": fingerprint}, update
        )

    def delete_cache_entry(self, fingerprint: str) -> bool:
        return self.run_cache.delete_one({"fingerprint": fingerprint})

    def cache_entries(self, query=None) -> List[Dict[str, Any]]:
        return self.run_cache.find(query)

    # --------------------------------------------------------- checkpoints

    def put_checkpoint_entry(self, document: Dict[str, Any]) -> str:
        return self.checkpoints.insert_one(document)

    def get_checkpoint_entry(
        self, prefix: str
    ) -> Optional[Dict[str, Any]]:
        return self.checkpoints.find_one({"prefix": prefix})

    def update_checkpoint_entry(
        self, prefix: str, update: Dict[str, Any]
    ) -> bool:
        return self.checkpoints.update_one({"prefix": prefix}, update)

    def delete_checkpoint_entry(self, prefix: str) -> bool:
        return self.checkpoints.delete_one({"prefix": prefix})

    def checkpoint_entries(self, query=None) -> List[Dict[str, Any]]:
        return self.checkpoints.find(query)

    # --------------------------------------------------------------- misc

    def save(self) -> None:
        self.database.save()

    def describe(self) -> Dict[str, int]:
        return self.database.describe()
