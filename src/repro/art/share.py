"""Shareable experiment archives.

The paper's conclusion imagines "hosting simulation results from the
broader computer architecture community in a centralized repository" with
"a consistent schema for representing both inputs and output".  This
module provides that schema as a portable on-disk archive:

- ``manifest.json`` — counts plus an integrity digest,
- ``artifacts.jsonl`` / ``runs.jsonl`` / ``experiments.jsonl`` — documents,
- ``files/<sha256>`` — content-addressed payloads.

``export_archive`` writes one, ``import_archive`` merges one into any
database (idempotently — re-imports are no-ops thanks to hash dedup), and
``verify_archive`` checks integrity without a database, which is what a
reviewer doing an artifact evaluation would run first.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.common.errors import ValidationError
from repro.common.hashing import md5_text, sha256_bytes
from repro.common.jsonutil import loads, stable_dumps
from repro.art.db import ArtifactDB

_DOCUMENT_FILES = (
    "artifacts.jsonl",
    "runs.jsonl",
    "experiments.jsonl",
)

MANIFEST = "manifest.json"
FILES_DIR = "files"


def export_archive(db: ArtifactDB, directory: str) -> Dict[str, int]:
    """Write the database's experiment record to ``directory``.

    Returns counts of exported documents and files.
    """
    os.makedirs(directory, exist_ok=True)
    os.makedirs(os.path.join(directory, FILES_DIR), exist_ok=True)
    collections = {
        "artifacts.jsonl": db.artifacts.all_documents(),
        "runs.jsonl": db.runs.all_documents(),
        "experiments.jsonl": db.database.collection(
            "experiments"
        ).all_documents(),
    }
    digest_source: List[str] = []
    for filename, documents in collections.items():
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as handle:
            for document in documents:
                line = stable_dumps(document)
                handle.write(line + "\n")
                digest_source.append(line)
    file_ids = db.database.files.list_ids()
    for file_id in file_ids:
        data = db.download_file(file_id)
        with open(
            os.path.join(directory, FILES_DIR, file_id), "wb"
        ) as handle:
            handle.write(data)
        digest_source.append(file_id)
    manifest = {
        "schema": "repro-gem5art-archive-v1",
        "artifacts": len(collections["artifacts.jsonl"]),
        "runs": len(collections["runs.jsonl"]),
        "experiments": len(collections["experiments.jsonl"]),
        "files": len(file_ids),
        "digest": md5_text("\n".join(sorted(digest_source))),
    }
    with open(
        os.path.join(directory, MANIFEST), "w", encoding="utf-8"
    ) as handle:
        handle.write(stable_dumps(manifest))
    return {
        key: manifest[key]
        for key in ("artifacts", "runs", "experiments", "files")
    }


def verify_archive(directory: str) -> Dict[str, int]:
    """Check an archive's integrity; raises on any corruption.

    Verifies the manifest digest over documents and file ids, and that
    every blob's content matches its content-addressed name.
    """
    manifest = _read_manifest(directory)
    digest_source: List[str] = []
    counts = {}
    for filename in _DOCUMENT_FILES:
        documents = _read_documents(directory, filename)
        counts[filename.split(".")[0]] = len(documents)
        digest_source.extend(stable_dumps(doc) for doc in documents)
    files_dir = os.path.join(directory, FILES_DIR)
    file_ids = sorted(os.listdir(files_dir)) if os.path.isdir(
        files_dir
    ) else []
    for file_id in file_ids:
        with open(os.path.join(files_dir, file_id), "rb") as handle:
            data = handle.read()
        if sha256_bytes(data) != file_id:
            raise ValidationError(
                f"archive blob {file_id} does not match its digest"
            )
        digest_source.append(file_id)
    counts["files"] = len(file_ids)
    digest = md5_text("\n".join(sorted(digest_source)))
    if digest != manifest["digest"]:
        raise ValidationError("archive digest mismatch (tampered?)")
    for key in ("artifacts", "runs", "experiments", "files"):
        if counts[key] != manifest[key]:
            raise ValidationError(
                f"archive {key} count {counts[key]} != manifest "
                f"{manifest[key]}"
            )
    return counts


def import_archive(directory: str, db: ArtifactDB) -> Dict[str, int]:
    """Merge a verified archive into a database.

    Documents already present (same ``_id``) are skipped, so importing an
    archive twice — or importing overlapping archives that share
    artifacts — is safe.
    """
    verify_archive(directory)
    imported = {"artifacts": 0, "runs": 0, "experiments": 0, "files": 0}
    for filename, collection in (
        ("artifacts.jsonl", db.artifacts),
        ("runs.jsonl", db.runs),
        ("experiments.jsonl", db.database.collection("experiments")),
    ):
        for document in _read_documents(directory, filename):
            if collection.find_one({"_id": document["_id"]}) is None:
                collection.insert_one(document)
                imported[filename.split(".")[0]] += 1
    files_dir = os.path.join(directory, FILES_DIR)
    if os.path.isdir(files_dir):
        for file_id in sorted(os.listdir(files_dir)):
            if not db.has_file(file_id):
                with open(
                    os.path.join(files_dir, file_id), "rb"
                ) as handle:
                    db.upload_file(handle.read())
                imported["files"] += 1
    return imported


def _read_manifest(directory: str) -> Dict:
    path = os.path.join(directory, MANIFEST)
    if not os.path.isfile(path):
        raise ValidationError(f"{directory} is not an archive (no manifest)")
    with open(path, "r", encoding="utf-8") as handle:
        manifest = loads(handle.read())
    if manifest.get("schema") != "repro-gem5art-archive-v1":
        raise ValidationError(
            f"unknown archive schema {manifest.get('schema')!r}"
        )
    return manifest


def _read_documents(directory: str, filename: str) -> List[Dict]:
    path = os.path.join(directory, filename)
    if not os.path.isfile(path):
        return []
    documents = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                documents.append(loads(line))
    return documents
