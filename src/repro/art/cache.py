"""Result memoization keyed on run fingerprints.

gem5art's agility claim (§III-B) is that a run already present in the
database never needs to execute again: identical input hashes imply an
identical result.  :class:`RunCache` is that claim as a layer.  It maps a
:class:`~repro.art.spec.RunSpec` fingerprint to the archived outcome of
the run that first executed it — results summary, stats blob id, final
status — and lets later runs *adopt* the archived result instead of
simulating.

Integrity is free because the file store is content-addressed: a stats
blob id **is** the SHA-256 of its bytes, so adoption re-downloads the
blob and the store itself raises
:class:`~repro.common.errors.CorruptBlobError` on any mismatch.  A
corrupt entry is evicted (rotten blob included, so the re-archival can
re-populate the content address), a ``runcache.corrupt`` event is
emitted, and the caller falls back to re-execution — the cache can
serve stale-free results or nothing, never silently wrong bytes.

Only runs that reached ``DONE`` are cached.  A simulation-level failure
(a kernel panic in a boot test) is a valid, memoizable outcome; a
host-level failure (``FAILED`` / ``TIMED_OUT``) is retryable
infrastructure noise and is never served from cache.

Invalidation cascades through content: ``invalidate(token)`` accepts a
fingerprint *or* an artifact content hash, and an artifact hash evicts
every cached run that consumed that artifact — rebuilding one disk image
re-runs exactly its dependent points and nothing else.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro import chaos, telemetry
from repro.common.errors import (
    CorruptBlobError,
    FaultInjectedError,
    NotFoundError,
    ValidationError,
)
from repro.common.timeutil import iso_now
from repro.art.db import ArtifactDB

#: Run statuses whose results are memoizable (terminal *and* meaningful:
#: the simulation ran to its recorded outcome on a healthy host).
CACHEABLE_STATUSES = ("done",)


def _hits_counter():
    return telemetry.get_metrics().counter(
        "runcache_hits_total",
        "Runs served from the result cache instead of simulating",
    )


def _misses_counter():
    return telemetry.get_metrics().counter(
        "runcache_misses_total",
        "Cache consultations that found no adoptable result",
    )


def _corrupt_counter():
    return telemetry.get_metrics().counter(
        "runcache_corrupt_total",
        "Cache entries evicted because their stats blob failed "
        "hash verification",
    )


class RunCache:
    """Fingerprint → archived-result index over an :class:`ArtifactDB`."""

    def __init__(self, db: ArtifactDB):
        self.db = db

    # -------------------------------------------------------------- lookup

    def lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The raw cache entry for a fingerprint, or None."""
        return self.db.get_cache_entry(fingerprint)

    def consult(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Look up and *verify* an entry; None means execute the run.

        The verification downloads the archived stats blob, which the
        content-addressed store checks against its digest.  Failure modes
        degrade, never escalate: a missing blob or an injected cache-read
        fault counts as a miss, a corrupt blob evicts the entry and
        counts as a miss — the simulation always remains available as
        the slow path.
        """
        try:
            chaos.fire("runcache.get", fingerprint=fingerprint)
            entry = self.lookup(fingerprint)
        except FaultInjectedError as error:
            telemetry.get_event_log().emit(
                "runcache.error",
                fingerprint=fingerprint,
                error=str(error),
            )
            self._miss(fingerprint, reason="read-fault")
            return None
        if entry is None:
            self._miss(fingerprint, reason="absent")
            return None
        try:
            self._verify(entry)
        except CorruptBlobError as error:
            _corrupt_counter().inc()
            telemetry.get_event_log().emit(
                "runcache.corrupt",
                fingerprint=fingerprint,
                run_id=entry.get("run_id"),
                error=str(error),
            )
            self.db.delete_cache_entry(fingerprint)
            # Purge the rotten blob as well: put_bytes() is dedup-by-
            # digest, so only an empty address lets the fallback
            # re-execution re-archive pristine bytes and heal the cache.
            stats_file_id = (entry.get("results") or {}).get(
                "stats_file_id"
            )
            if stats_file_id is not None:
                self.db.delete_file(stats_file_id)
            self._miss(fingerprint, reason="corrupt")
            return None
        except (NotFoundError, FaultInjectedError) as error:
            telemetry.get_event_log().emit(
                "runcache.error",
                fingerprint=fingerprint,
                error=str(error),
            )
            self._miss(fingerprint, reason="blob-missing")
            return None
        self._hit(entry)
        return entry

    def _verify(self, entry: Dict[str, Any]) -> None:
        results = entry.get("results") or {}
        stats_file_id = results.get("stats_file_id")
        if stats_file_id is not None:
            # get_bytes() hashes what it reads and raises
            # CorruptBlobError itself on mismatch.
            self.db.download_file(stats_file_id)

    def _hit(self, entry: Dict[str, Any]) -> None:
        _hits_counter().inc(kind=entry.get("kind", "unknown"))
        self.db.update_cache_entry(
            entry["fingerprint"], {"$inc": {"hits": 1}}
        )
        telemetry.get_event_log().emit(
            "runcache.hit",
            fingerprint=entry["fingerprint"],
            run_id=entry.get("run_id"),
        )

    def _miss(self, fingerprint: str, reason: str) -> None:
        _misses_counter().inc(reason=reason)
        telemetry.get_event_log().emit(
            "runcache.miss", fingerprint=fingerprint, reason=reason
        )

    # --------------------------------------------------------------- store

    def store(
        self,
        fingerprint: str,
        run_doc: Dict[str, Any],
    ) -> bool:
        """Archive a finished run's outcome under its fingerprint.

        Idempotent and first-writer-wins: once a fingerprint has a
        result, later identical runs adopt it rather than overwrite it.
        Returns True when a new entry was written.
        """
        if run_doc.get("status") not in CACHEABLE_STATUSES:
            return False
        if self.db.get_cache_entry(fingerprint) is not None:
            return False
        spec_doc = run_doc.get("spec") or {}
        entry = {
            "_id": f"cache-{fingerprint}",
            "fingerprint": fingerprint,
            "kind": run_doc.get("kind"),
            "artifact_hashes": dict(spec_doc.get("artifacts") or {}),
            "run_id": run_doc.get("_id"),
            "status": run_doc.get("status"),
            "results": dict(run_doc.get("results") or {}),
            "hits": 0,
            "stored_at_wall": iso_now(),
        }
        self.db.put_cache_entry(entry)
        telemetry.get_event_log().emit(
            "runcache.store",
            fingerprint=fingerprint,
            run_id=run_doc.get("_id"),
        )
        return True

    # --------------------------------------------------------- invalidation

    def invalidate(self, token: str) -> int:
        """Evict by fingerprint or by artifact content hash (cascading).

        A fingerprint evicts exactly its entry.  An artifact hash evicts
        every cached run whose spec consumed that artifact — the
        dependency cascade that makes "I rebuilt the disk image" re-run
        only the image's dependents.  A token that matches nothing
        exactly is retried as a git-style prefix (``cache ls`` shows
        abbreviated fingerprints); an ambiguous prefix raises
        :class:`~repro.common.errors.ValidationError` rather than guess.
        Returns the number of entries evicted.
        """
        entry = self.db.get_cache_entry(token)
        if entry is not None:
            self.db.delete_cache_entry(token)
            telemetry.get_event_log().emit(
                "runcache.invalidate", fingerprint=token, by="fingerprint"
            )
            return 1
        evicted = 0
        for candidate in self.db.cache_entries():
            hashes = (candidate.get("artifact_hashes") or {}).values()
            if token in hashes:
                self.db.delete_cache_entry(candidate["fingerprint"])
                telemetry.get_event_log().emit(
                    "runcache.invalidate",
                    fingerprint=candidate["fingerprint"],
                    by="artifact",
                    artifact_hash=token,
                )
                evicted += 1
        if evicted:
            return evicted
        full = self._expand_prefix(token)
        if full is not None:
            return self.invalidate(full)
        return 0

    def _expand_prefix(self, prefix: str) -> Optional[str]:
        """Resolve an abbreviated fingerprint / artifact hash, or None.

        Only consulted after exact matching fails, so a full token can
        never be shadowed by a longer one it happens to prefix.
        """
        if not prefix:
            return None
        matches = set()
        for entry in self.db.cache_entries():
            if entry["fingerprint"].startswith(prefix):
                matches.add(entry["fingerprint"])
            for value in (entry.get("artifact_hashes") or {}).values():
                if isinstance(value, str) and value.startswith(prefix):
                    matches.add(value)
        if len(matches) > 1:
            raise ValidationError(
                f"ambiguous prefix {prefix!r} matches "
                f"{len(matches)} cache tokens; use more characters"
            )
        return matches.pop() if matches else None

    # --------------------------------------------------------------- query

    def entries(self) -> List[Dict[str, Any]]:
        """Every cache entry, in insertion order."""
        return self.db.cache_entries()

    def stats(self) -> Dict[str, Any]:
        """Summary counts for ``repro cache stats``."""
        entries = self.entries()
        by_kind: Dict[str, int] = {}
        adoptions = 0
        for entry in entries:
            kind = entry.get("kind") or "unknown"
            by_kind[kind] = by_kind.get(kind, 0) + 1
            adoptions += int(entry.get("hits") or 0)
        return {
            "entries": len(entries),
            "adoptions": adoptions,
            "by_kind": by_kind,
        }
