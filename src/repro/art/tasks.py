"""Task execution — the paper's Fig 5 launch-script tail.

Run objects are handed to an external task manager: a Celery-like
:class:`~repro.scheduler.SchedulerApp`, a multiprocessing-like
:class:`~repro.scheduler.SimplePool`, or no scheduler at all (synchronous
:func:`run_job`).  All three return the same summaries, so launch scripts
can switch managers freely — exactly the flexibility Section IV-D claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.art.cache import RunCache
from repro.art.run import Gem5Run
from repro.common.errors import ValidationError
from repro.scheduler import (
    AdmissionController,
    AdmissionRejected,
    ProcessPool,
    RetryPolicy,
    SchedulerApp,
    SimplePool,
    TaskState,
)
from repro.telemetry import get_metrics, get_tracer
from repro.scheduler.batch import (
    BatchSystem,
    JobDescription,
    JobState,
    Machine,
)


def run_job(run: Gem5Run, use_cache: bool = True) -> Dict[str, object]:
    """Execute one run synchronously (the no-scheduler option)."""
    return run.run(use_cache=use_cache)


def run_jobs_pool(
    runs: Sequence[Gem5Run],
    processes: int = 4,
    use_cache: bool = True,
) -> List[Dict[str, object]]:
    """Execute runs through the multiprocessing-style pool, preserving
    input order in the returned summaries.

    The submitting thread's span context is captured here and re-parented
    on each pool thread (pool threads cannot see the submitter's
    thread-local span stack)."""
    tracer = get_tracer()
    parent = tracer.current_context_dict()

    def execute(run: Gem5Run) -> Dict[str, object]:
        with tracer.activate(parent):
            return run.run(use_cache=use_cache)

    with SimplePool(processes=processes) as pool:
        handles = [pool.apply_async(execute, (run,)) for run in runs]
        return [handle.get() for handle in handles]


def run_jobs_scheduler(
    runs: Sequence[Gem5Run],
    worker_count: int = 4,
    timeout_per_job: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    use_cache: bool = True,
    substrate: str = "threads",
    tenant: str = "default",
    priority: str = "default",
    queue_limit: Optional[int] = None,
    admission: Optional[AdmissionController] = None,
) -> List[Dict[str, object]]:
    """Execute runs through the Celery-like scheduler app.

    Each job's gem5art timeout is enforced by the scheduler; jobs that
    exceed it are reported with a ``timed_out`` summary rather than
    raising, since a timeout is a recorded outcome for the database.

    ``retry_policy`` opts jobs into the scheduler's retry/backoff
    machinery (e.g. re-running simulations that died on flaky
    infrastructure); the default stays fail-fast, recording the first
    failure.

    With ``use_cache`` (the default), runs carrying equal spec
    fingerprints are **single-flighted**: the first submission becomes
    the leader and actually executes; concurrent identical submissions
    coalesce onto the leader's task instead of enqueuing duplicate
    simulations, and once the leader finishes each follower adopts the
    (now cached) result into its own run document.  ``use_cache=False``
    disables both the cache consult and the coalescing — every run
    simulates.

    ``substrate`` picks where leader executions happen: ``"threads"``
    runs them on the scheduler's own worker threads (GIL-bound but
    zero-overhead), ``"processes"`` ships each leader's simulation to a
    :class:`~repro.scheduler.ProcessPool` worker process for real CPU
    parallelism.  Dedup, coalescing, caching and every database write
    stay in the parent either way — only simulations cross the process
    boundary.

    ``tenant``/``priority`` are the admission coordinates every job is
    submitted under (a campaign typically submits as one tenant at one
    priority); ``queue_limit``/``admission`` opt the underlying app into
    bounded-queue overload protection.  Admission happens in the parent
    broker on *both* substrates.  A job refused by admission is not an
    exception here: its summary reports ``admission_rejected`` with the
    structured ``retry_after``, because a rejected point — like a timed
    out one — is a recorded outcome for the database.
    """
    if substrate not in ("threads", "processes"):
        raise ValidationError(
            f"unknown substrate {substrate!r} "
            "(expected 'threads' or 'processes')"
        )
    pool = (
        ProcessPool(workers=worker_count)
        if substrate == "processes"
        else None
    )
    app = SchedulerApp(
        name="gem5art",
        worker_count=worker_count,
        queue_limit=queue_limit,
        admission=admission,
    )

    @app.task(name="gem5art.run_gem5_job", retry_policy=retry_policy)
    def run_gem5_job(index: int):
        if pool is not None:
            return runs[index].run_in_pool(pool, use_cache=use_cache)
        return runs[index].run(use_cache=use_cache)

    try:
        handles = []
        leaders: Dict[str, str] = {}
        followers: List[bool] = []
        rejections: Dict[int, AdmissionRejected] = {}
        for index in range(len(runs)):
            dedup_key = (
                runs[index].fingerprint
                if use_cache and runs[index].fingerprint
                else None
            )
            try:
                handle = run_gem5_job.apply_async(
                    args=(index,),
                    timeout=timeout_per_job or runs[index].timeout,
                    dedup_key=dedup_key,
                    tenant=tenant,
                    priority=priority,
                )
            except AdmissionRejected as rejection:
                rejections[index] = rejection
                handles.append(None)
                followers.append(False)
                continue
            coalesced = (
                dedup_key is not None
                and leaders.get(dedup_key) is not None
                and leaders[dedup_key] == handle.task_id
            )
            if dedup_key is not None and not coalesced:
                leaders[dedup_key] = handle.task_id
            if coalesced:
                get_metrics().counter(
                    "runcache_coalesced_total",
                    "Runs coalesced onto an identical in-flight "
                    "execution",
                ).inc()
            handles.append(handle)
            followers.append(coalesced)
        summaries: List[Dict[str, object]] = []
        for index, handle in enumerate(handles):
            if handle is None:
                rejection = rejections[index]
                summaries.append(
                    {
                        "success": False,
                        "admission_rejected": True,
                        "reason": rejection.reason,
                        "retry_after": rejection.retry_after,
                        "parked": rejection.parked,
                        "error": str(rejection),
                        "run_id": runs[index].run_id,
                    }
                )
                continue
            state = app.backend.wait(handle.task_id)
            if state is TaskState.SUCCESS:
                summary = handle.get()
                if followers[index]:
                    # The follower's own document never executed; adopt
                    # the leader's (now cached) result so the database
                    # records this point too.
                    adopted = RunCache(runs[index].db).consult(
                        runs[index].fingerprint
                    )
                    if adopted is not None:
                        summary = runs[index].adopt_cached(adopted)
                summaries.append(summary)
            else:
                record = app.backend.record(handle.task_id)
                summaries.append(
                    {
                        "success": False,
                        "timed_out": state is TaskState.TIMEOUT,
                        "scheduler_state": state.value,
                        "error": record["error"],
                        "run_id": runs[index].run_id,
                    }
                )
        return summaries
    finally:
        app.shutdown()
        if pool is not None:
            pool.shutdown()


def run_jobs_batch(
    runs: Sequence[Gem5Run],
    machines: Sequence[Machine] = None,
    requirements: Dict[str, object] = None,
) -> List[Dict[str, object]]:
    """Execute runs through the Condor-style batch system.

    ``machines`` defaults to a single 4-slot local node.  All jobs share
    ``requirements`` (e.g. ``{"memory_mb": 16384}``); jobs no machine can
    satisfy come back as held, not errors.
    """
    pool = BatchSystem()
    for machine in machines or (Machine("localhost", slots=4),):
        pool.add_machine(machine)
    jobs = [
        pool.submit(
            JobDescription(
                executable=run.run, requirements=dict(requirements or {})
            )
        )
        for run in runs
    ]
    summaries: List[Dict[str, object]] = []
    for run, job in zip(runs, jobs):
        state = job.wait(timeout=max(60.0, run.timeout))
        if state is JobState.COMPLETED:
            summaries.append(job.result)
        else:
            summaries.append(
                {
                    "success": False,
                    "batch_state": state.value,
                    "error": job.error,
                    "run_id": run.run_id,
                }
            )
    return summaries
