"""Task execution — the paper's Fig 5 launch-script tail.

Run objects are handed to an external task manager: a Celery-like
:class:`~repro.scheduler.SchedulerApp`, a multiprocessing-like
:class:`~repro.scheduler.SimplePool`, or no scheduler at all (synchronous
:func:`run_job`).  All three return the same summaries, so launch scripts
can switch managers freely — exactly the flexibility Section IV-D claims.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Dict, List, Optional, Sequence

from repro.art.cache import RunCache
from repro.art.checkpoints import CheckpointStore
from repro.art.run import Gem5Run
from repro.common.errors import ValidationError
from repro.scheduler import (
    AdmissionController,
    AdmissionRejected,
    ProcessPool,
    RetryPolicy,
    SchedulerApp,
    SimplePool,
    TaskState,
)
from repro.telemetry import get_metrics, get_tracer
from repro.scheduler.batch import (
    BatchSystem,
    JobDescription,
    JobState,
    Machine,
)


def run_job(
    run: Gem5Run,
    use_cache: bool = True,
    checkpoint_store: Optional[CheckpointStore] = None,
) -> Dict[str, object]:
    """Execute one run synchronously (the no-scheduler option)."""
    if checkpoint_store is not None:
        return run.run(
            use_cache=use_cache, checkpoint_store=checkpoint_store
        )
    return run.run(use_cache=use_cache)


def run_jobs_pool(
    runs: Sequence[Gem5Run],
    processes: int = 4,
    use_cache: bool = True,
    checkpoint_store: Optional[CheckpointStore] = None,
) -> List[Dict[str, object]]:
    """Execute runs through the multiprocessing-style pool, preserving
    input order in the returned summaries.

    The submitting thread's span context is captured here and re-parented
    on each pool thread (pool threads cannot see the submitter's
    thread-local span stack)."""
    tracer = get_tracer()
    parent = tracer.current_context_dict()

    def execute(run: Gem5Run) -> Dict[str, object]:
        with tracer.activate(parent):
            return run_job(
                run,
                use_cache=use_cache,
                checkpoint_store=checkpoint_store,
            )

    with SimplePool(processes=processes) as pool:
        handles = [pool.apply_async(execute, (run,)) for run in runs]
        return [handle.get() for handle in handles]


def group_runs_by_prefix(
    runs: Sequence[Gem5Run],
) -> Dict[str, List[int]]:
    """Group run indices by boot-prefix fingerprint.

    The planner's first step: every key is one boot to pay for, every
    value the variant cohort that shares it.  Runs without a prefix
    (GPU runs, spec-less documents) are omitted — they have no boot
    stage.
    """
    plan: Dict[str, List[int]] = {}
    for index, run in enumerate(runs):
        prefix = run.prefix
        if prefix is None:
            continue
        plan.setdefault(prefix, []).append(index)
    return plan


def run_boot_stage(
    runs: Sequence[Gem5Run],
    store: CheckpointStore,
    worker_count: int = 4,
    pool: Optional[ProcessPool] = None,
    boot_cpu: str = "kvm",
) -> Dict[str, object]:
    """Stage 1 of the planner: one boot checkpoint per unique prefix.

    Groups the sweep by prefix fingerprint and drives one
    ``take_boot_checkpoint`` job per group — inline on the calling
    thread for the thread substrate, or as a boot envelope on the
    process pool.  Boot leadership is single-flighted through the
    store, so racing stages (or racing experiments sharing one store)
    still produce exactly one boot per prefix.  Returns
    ``{prefix: checkpoint-or-None}``; a None cohort degrades to full
    boots downstream.
    """
    plan = group_runs_by_prefix(runs)

    def boot_one(prefix: str) -> object:
        representative = runs[plan[prefix][0]]
        if pool is not None:
            thunk = _pool_boot(representative, pool, boot_cpu)
        else:
            def thunk():
                return representative.take_boot_checkpoint(
                    boot_cpu=boot_cpu
                )
        return store.get_or_boot(prefix, thunk)

    checkpoints: Dict[str, object] = {}
    with get_tracer().span(
        "stage.boot",
        attributes={"prefixes": len(plan), "runs": len(runs)},
    ):
        if len(plan) <= 1:
            for prefix in plan:
                checkpoints[prefix] = boot_one(prefix)
        else:
            # Boots for distinct prefixes are independent; drive them
            # concurrently (on the process substrate each thread only
            # blocks on a pool handle, so worker processes fill up).
            with SimplePool(
                processes=min(worker_count, len(plan))
            ) as boot_pool:
                handles = {
                    prefix: boot_pool.apply_async(boot_one, (prefix,))
                    for prefix in plan
                }
                for prefix, handle in handles.items():
                    checkpoints[prefix] = handle.get()
    return checkpoints


def _pool_boot(run: Gem5Run, pool: ProcessPool, boot_cpu: str):
    """A boot thunk that ships the boot job to a worker process."""
    from repro.art.procjobs import envelope_for_boot
    from repro.sim.checkpoint import Checkpoint

    def boot():
        handle = pool.submit(envelope_for_boot(run, boot_cpu=boot_cpu))
        outcome = handle.result()
        if outcome.get("checkpoint") is None:
            return None
        return Checkpoint.from_dict(outcome["checkpoint"])

    return boot


def run_jobs_scheduler(
    runs: Sequence[Gem5Run],
    worker_count: int = 4,
    timeout_per_job: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    use_cache: bool = True,
    substrate: str = "threads",
    tenant: str = "default",
    priority: str = "default",
    queue_limit: Optional[int] = None,
    admission: Optional[AdmissionController] = None,
    use_checkpoints: bool = False,
    checkpoint_store: Optional[CheckpointStore] = None,
    repeats: int = 1,
    dispatch_batch: int = 1,
) -> List[Dict[str, object]]:
    """Execute runs through the Celery-like scheduler app.

    Each job's gem5art timeout is enforced by the scheduler; jobs that
    exceed it are reported with a ``timed_out`` summary rather than
    raising, since a timeout is a recorded outcome for the database.

    ``retry_policy`` opts jobs into the scheduler's retry/backoff
    machinery (e.g. re-running simulations that died on flaky
    infrastructure); the default stays fail-fast, recording the first
    failure.

    With ``use_cache`` (the default), runs carrying equal spec
    fingerprints are **single-flighted**: the first submission becomes
    the leader and actually executes; concurrent identical submissions
    coalesce onto the leader's task instead of enqueuing duplicate
    simulations, and once the leader finishes each follower adopts the
    (now cached) result into its own run document.  ``use_cache=False``
    disables both the cache consult and the coalescing — every run
    simulates.

    ``substrate`` picks where leader executions happen: ``"threads"``
    runs them on the scheduler's own worker threads (GIL-bound but
    zero-overhead), ``"processes"`` ships each leader's simulation to a
    :class:`~repro.scheduler.ProcessPool` worker process for real CPU
    parallelism.  Dedup, coalescing, caching and every database write
    stay in the parent either way — only simulations cross the process
    boundary.

    ``tenant``/``priority`` are the admission coordinates every job is
    submitted under (a campaign typically submits as one tenant at one
    priority); ``queue_limit``/``admission`` opt the underlying app into
    bounded-queue overload protection.  Admission happens in the parent
    broker on *both* substrates.  A job refused by admission is not an
    exception here: its summary reports ``admission_rejected`` with the
    structured ``retry_after``, because a rejected point — like a timed
    out one — is a recorded outcome for the database.

    With ``use_checkpoints`` the sweep runs as a **staged pipeline**:
    the runs are grouped by boot-prefix fingerprint, a boot stage takes
    one checkpoint per unique prefix (single-flighted through
    ``checkpoint_store``, created on demand from the first run's
    database when not supplied), and only then does the variant stage
    fan out — each variant job carrying ``restore_from`` so it skips
    the boot its cohort already paid for.  A prefix whose boot fails
    degrades that cohort back to full boots; nothing is lost but time.

    ``repeats`` amplifies each process-substrate job (one envelope, N
    simulations); ``dispatch_batch`` sets how many queued jobs the
    process pool ships to a worker per transport round-trip.
    """
    if substrate not in ("threads", "processes"):
        raise ValidationError(
            f"unknown substrate {substrate!r} "
            "(expected 'threads' or 'processes')"
        )
    pool = (
        ProcessPool(workers=worker_count, dispatch_batch=dispatch_batch)
        if substrate == "processes"
        else None
    )
    app = SchedulerApp(
        name="gem5art",
        worker_count=worker_count,
        queue_limit=queue_limit,
        admission=admission,
    )
    store: Optional[CheckpointStore] = None
    if use_checkpoints and runs:
        store = checkpoint_store or CheckpointStore(runs[0].db)

    @app.task(name="gem5art.run_gem5_job", retry_policy=retry_policy)
    def run_gem5_job(index: int):
        # Only pass the staged-pipeline kwargs when they are in play, so
        # duck-typed run objects with the classic signature keep working.
        if pool is not None:
            if store is not None or repeats != 1:
                return runs[index].run_in_pool(
                    pool,
                    use_cache=use_cache,
                    repeats=repeats,
                    checkpoint_store=store,
                )
            return runs[index].run_in_pool(pool, use_cache=use_cache)
        if store is not None:
            return runs[index].run(
                use_cache=use_cache, checkpoint_store=store
            )
        return runs[index].run(use_cache=use_cache)

    stages = ExitStack()
    try:
        if store is not None:
            run_boot_stage(
                runs, store, worker_count=worker_count, pool=pool
            )
            stages.enter_context(
                get_tracer().span(
                    "stage.variants", attributes={"runs": len(runs)}
                )
            )
        handles = []
        leaders: Dict[str, str] = {}
        followers: List[bool] = []
        rejections: Dict[int, AdmissionRejected] = {}
        for index in range(len(runs)):
            dedup_key = (
                runs[index].fingerprint
                if use_cache and runs[index].fingerprint
                else None
            )
            try:
                handle = run_gem5_job.apply_async(
                    args=(index,),
                    timeout=timeout_per_job or runs[index].timeout,
                    dedup_key=dedup_key,
                    tenant=tenant,
                    priority=priority,
                )
            except AdmissionRejected as rejection:
                rejections[index] = rejection
                handles.append(None)
                followers.append(False)
                continue
            coalesced = (
                dedup_key is not None
                and leaders.get(dedup_key) is not None
                and leaders[dedup_key] == handle.task_id
            )
            if dedup_key is not None and not coalesced:
                leaders[dedup_key] = handle.task_id
            if coalesced:
                get_metrics().counter(
                    "runcache_coalesced_total",
                    "Runs coalesced onto an identical in-flight "
                    "execution",
                ).inc()
            handles.append(handle)
            followers.append(coalesced)
        summaries: List[Dict[str, object]] = []
        for index, handle in enumerate(handles):
            if handle is None:
                rejection = rejections[index]
                summaries.append(
                    {
                        "success": False,
                        "admission_rejected": True,
                        "reason": rejection.reason,
                        "retry_after": rejection.retry_after,
                        "parked": rejection.parked,
                        "error": str(rejection),
                        "run_id": runs[index].run_id,
                    }
                )
                continue
            state = app.backend.wait(handle.task_id)
            if state is TaskState.SUCCESS:
                summary = handle.get()
                if followers[index]:
                    # The follower's own document never executed; adopt
                    # the leader's (now cached) result so the database
                    # records this point too.
                    adopted = RunCache(runs[index].db).consult(
                        runs[index].fingerprint
                    )
                    if adopted is not None:
                        summary = runs[index].adopt_cached(adopted)
                summaries.append(summary)
            else:
                record = app.backend.record(handle.task_id)
                summaries.append(
                    {
                        "success": False,
                        "timed_out": state is TaskState.TIMEOUT,
                        "scheduler_state": state.value,
                        "error": record["error"],
                        "run_id": runs[index].run_id,
                    }
                )
        return summaries
    finally:
        stages.close()
        app.shutdown()
        if pool is not None:
            pool.shutdown()


def run_jobs_batch(
    runs: Sequence[Gem5Run],
    machines: Sequence[Machine] = None,
    requirements: Dict[str, object] = None,
) -> List[Dict[str, object]]:
    """Execute runs through the Condor-style batch system.

    ``machines`` defaults to a single 4-slot local node.  All jobs share
    ``requirements`` (e.g. ``{"memory_mb": 16384}``); jobs no machine can
    satisfy come back as held, not errors.
    """
    pool = BatchSystem()
    for machine in machines or (Machine("localhost", slots=4),):
        pool.add_machine(machine)
    jobs = [
        pool.submit(
            JobDescription(
                executable=run.run, requirements=dict(requirements or {})
            )
        )
        for run in runs
    ]
    summaries: List[Dict[str, object]] = []
    for run, job in zip(runs, jobs):
        state = job.wait(timeout=max(60.0, run.timeout))
        if state is JobState.COMPLETED:
            summaries.append(job.result)
        else:
            summaries.append(
                {
                    "success": False,
                    "batch_state": state.value,
                    "error": job.error,
                    "run_id": run.run_id,
                }
            )
    return summaries
