"""GEM5ART — the paper's primary contribution.

The gem5 Artifact, Reproducibility and Testing framework: three interrelated
packages (Section IV of the paper) that make full-system experiments
reproducible by construction:

- :mod:`repro.art.artifact` — register every input and output of an
  experiment as a content-hashed, UUID-identified, de-duplicated document
  in the database (the paper's Fig 3);
- :mod:`repro.art.run` — run objects: special artifacts that reference all
  the input artifacts plus the parameters of one simulation (the paper's
  Fig 4 ``createFSRun``), execute it, and archive the results;
- :mod:`repro.art.tasks` — hand run objects to a job scheduler (Celery-like
  app or multiprocessing-like pool) and collect states (Fig 5's
  ``apply_async`` loop);
- :mod:`repro.art.workflow` — the Fig 1 component graph, derived from
  artifact input edges.

Method aliases match the paper's camelCase spelling (``registerArtifact``,
``createFSRun``) so launch scripts read like the figures.
"""

from repro.art.db import ArtifactDB
from repro.art.artifact import (
    Artifact,
    register_gem5_binary,
    register_kernel_binary,
    register_disk_image,
    register_repo,
)
from repro.art.run import Gem5Run, RunStatus
from repro.art.spec import RunSpec
from repro.art.cache import RunCache
from repro.art.checkpoints import CheckpointStore
from repro.art.tasks import (
    group_runs_by_prefix,
    run_boot_stage,
    run_job,
    run_jobs_pool,
    run_jobs_scheduler,
    run_jobs_batch,
)
from repro.art.workflow import workflow_graph
from repro.art.launch import Experiment
from repro.art.share import export_archive, import_archive, verify_archive
from repro.art.provenance import (
    runs_using_artifact,
    artifact_consumers,
    provenance_chain,
    impact_of,
)

__all__ = [
    "ArtifactDB",
    "Artifact",
    "register_gem5_binary",
    "register_kernel_binary",
    "register_disk_image",
    "register_repo",
    "Gem5Run",
    "RunStatus",
    "RunSpec",
    "RunCache",
    "CheckpointStore",
    "group_runs_by_prefix",
    "run_boot_stage",
    "run_job",
    "run_jobs_pool",
    "run_jobs_scheduler",
    "run_jobs_batch",
    "workflow_graph",
    "Experiment",
    "export_archive",
    "import_archive",
    "verify_archive",
    "runs_using_artifact",
    "artifact_consumers",
    "provenance_chain",
    "impact_of",
]
