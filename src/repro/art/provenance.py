"""Provenance queries over the artifact database.

The point of recording every input is being able to ask, later: *which
runs used this disk image?* (e.g. after discovering the image carried a
broken benchmark), *what was this binary built from?*, and *what else
depends on this artifact?*.  These helpers answer those questions
directly from the document store.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import NotFoundError
from repro.art.db import ArtifactDB


def runs_using_artifact(
    db: ArtifactDB, artifact_id: str
) -> List[Dict]:
    """Every run document that referenced the artifact (in any role)."""
    db.get_artifact(artifact_id)  # raises for unknown artifacts
    hits = []
    for doc in db.runs.all_documents():
        if artifact_id in doc.get("artifacts", {}).values():
            hits.append(doc)
    return hits


def artifact_consumers(
    db: ArtifactDB, artifact_id: str
) -> List[Dict]:
    """Artifacts that list this artifact among their inputs."""
    db.get_artifact(artifact_id)
    return db.artifacts.find({"inputs": artifact_id})


def provenance_chain(db: ArtifactDB, artifact_id: str) -> List[Dict]:
    """The artifact's transitive inputs, dependency-first.

    This is "everything you need to rebuild it": for a disk image, its
    source repositories; for a gem5 binary, the gem5 repo; and so on up
    the Fig 1 graph.
    """
    seen = set()
    ordered: List[Dict] = []

    def visit(current_id: str) -> None:
        if current_id in seen:
            return
        seen.add(current_id)
        doc = db.get_artifact(current_id)
        for input_id in doc.get("inputs", []):
            visit(input_id)
        ordered.append(doc)

    visit(artifact_id)
    return ordered


def impact_of(db: ArtifactDB, artifact_id: str) -> Dict[str, int]:
    """Blast-radius summary: how many artifacts and runs are downstream
    of this one (directly or transitively)."""
    affected_artifacts = set()
    frontier = [artifact_id]
    while frontier:
        current = frontier.pop()
        for consumer in artifact_consumers(db, current):
            if consumer["_id"] not in affected_artifacts:
                affected_artifacts.add(consumer["_id"])
                frontier.append(consumer["_id"])
    affected_runs = set()
    for target in {artifact_id} | affected_artifacts:
        for run in runs_using_artifact(db, target):
            affected_runs.add(run["_id"])
    return {
        "artifacts": len(affected_artifacts),
        "runs": len(affected_runs),
    }
