"""Boot-checkpoint storage keyed on RunSpec prefix fingerprints.

The paper's Fig-8 boot sweep re-simulates Linux boot for every variant,
even though most variants differ only in *measured-region* axes (CPU
model, memory technology, benchmark).  :class:`CheckpointStore` makes the
boot a shared, content-addressed stage: a
:class:`~repro.sim.checkpoint.Checkpoint` is archived under the
:meth:`~repro.art.spec.RunSpec.prefix_fingerprint` of the runs that can
legally restore it, so N variants sharing a boot prefix pay for exactly
one boot.

Single-flight **boot leadership** reuses the broker's in-flight registry
(:class:`~repro.scheduler.broker.SingleFlight`): of N concurrent
``get_or_boot`` calls for one prefix, exactly one becomes the leader and
boots; the rest wait on the leader's completion event and adopt the
stored checkpoint.

Failure modes degrade, never escalate — exactly like the run cache.  The
chaos point ``checkpoint.get`` can inject read faults; a missing entry,
a missing blob, or a corrupt blob (the FileStore is content-addressed,
so corruption is self-detecting) all count as a miss and fall back to a
full boot.  A corrupt entry is evicted blob-and-all so the re-boot can
heal the store.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro import chaos, telemetry
from repro.common.errors import (
    CorruptBlobError,
    FaultInjectedError,
    NotFoundError,
)
from repro.common.ids import new_uuid
from repro.common.jsonutil import canonical_dumps, loads
from repro.common.timeutil import iso_now
from repro.art.db import ArtifactDB
from repro.scheduler.broker import SingleFlight
from repro.sim.checkpoint import Checkpoint


def _hits_counter():
    return telemetry.get_metrics().counter(
        "checkpoint_hits_total",
        "Boots avoided by restoring an archived checkpoint",
    )


def _misses_counter():
    return telemetry.get_metrics().counter(
        "checkpoint_misses_total",
        "Checkpoint consultations that fell back to a full boot",
    )


def _boots_counter():
    return telemetry.get_metrics().counter(
        "checkpoint_boots_total",
        "Full boots executed to populate the checkpoint store",
    )


class CheckpointStore:
    """Prefix fingerprint → archived boot checkpoint, over an ArtifactDB.

    The checkpoint *document* lives in the ``checkpoints`` collection
    (unique on ``prefix``); the checkpoint *payload* — its canonical
    JSON — lives in the content-addressed FileStore, so integrity
    verification is a re-download away.
    """

    def __init__(self, db: ArtifactDB):
        self.db = db
        self._flight = SingleFlight()
        self._boot_done_lock = threading.Lock()
        self._boot_done: Dict[str, threading.Event] = {}

    # -------------------------------------------------------------- lookup

    def lookup(self, prefix: str) -> Optional[Dict[str, Any]]:
        """The raw store entry for a prefix fingerprint, or None."""
        return self.db.get_checkpoint_entry(prefix)

    def get(self, prefix: Optional[str]) -> Optional[Checkpoint]:
        """Fetch and *verify* a checkpoint; None means boot in full.

        Fires the ``checkpoint.get`` chaos point; an injected read
        fault, a missing entry/blob, or a corrupt blob all degrade to a
        miss (the full boot always remains the slow path).  Corruption
        evicts the entry and its blob so the next boot re-populates a
        pristine content address.
        """
        if prefix is None:
            return None
        try:
            chaos.fire("checkpoint.get", prefix=prefix)
            entry = self.lookup(prefix)
        except FaultInjectedError as error:
            telemetry.get_event_log().emit(
                "checkpoint.error", prefix=prefix, error=str(error)
            )
            self._miss(prefix, reason="read-fault")
            return None
        if entry is None:
            self._miss(prefix, reason="absent")
            return None
        try:
            payload = self.db.download_file(entry["file_id"])
            checkpoint = Checkpoint.from_dict(loads(payload.decode("utf-8")))
        except CorruptBlobError as error:
            telemetry.get_event_log().emit(
                "checkpoint.corrupt",
                prefix=prefix,
                checkpoint_id=entry.get("checkpoint_id"),
                error=str(error),
            )
            self.db.delete_checkpoint_entry(prefix)
            # Purge the rotten blob: the store is dedup-by-digest, so
            # only an empty address lets the fallback boot re-archive
            # pristine bytes under the same content hash.
            self.db.delete_file(entry["file_id"])
            self._miss(prefix, reason="corrupt")
            return None
        except (NotFoundError, FaultInjectedError) as error:
            telemetry.get_event_log().emit(
                "checkpoint.error", prefix=prefix, error=str(error)
            )
            self._miss(prefix, reason="blob-missing")
            return None
        self._hit(prefix, entry)
        return checkpoint

    def _hit(self, prefix: str, entry: Dict[str, Any]) -> None:
        _hits_counter().inc(boot_type=entry.get("boot_type", "unknown"))
        self.db.update_checkpoint_entry(prefix, {"$inc": {"restores": 1}})
        telemetry.get_event_log().emit(
            "checkpoint.hit",
            prefix=prefix,
            checkpoint_id=entry.get("checkpoint_id"),
        )

    def _miss(self, prefix: str, reason: str) -> None:
        _misses_counter().inc(reason=reason)
        telemetry.get_event_log().emit(
            "checkpoint.miss", prefix=prefix, reason=reason
        )

    # --------------------------------------------------------------- store

    def store(self, prefix: str, checkpoint: Checkpoint) -> bool:
        """Archive a boot checkpoint under its prefix fingerprint.

        Idempotent and first-writer-wins, like the run cache: once a
        prefix has a checkpoint, concurrent boots that lost the race do
        not overwrite it.  Returns True when a new entry was written.
        """
        if self.db.get_checkpoint_entry(prefix) is not None:
            return False
        payload = canonical_dumps(checkpoint.to_dict()).encode("utf-8")
        file_id = self.db.upload_file(
            payload, filename=f"checkpoint-{checkpoint.checkpoint_id}.json"
        )
        entry = {
            "_id": f"ckpt-{prefix}",
            "prefix": prefix,
            "checkpoint_id": checkpoint.checkpoint_id,
            "file_id": file_id,
            "kernel_version": checkpoint.kernel_version,
            "boot_type": checkpoint.boot_type,
            "num_cpus": checkpoint.num_cpus,
            "memory_system": checkpoint.memory_system,
            "boot_seconds": checkpoint.boot_seconds,
            "restores": 0,
            "stored_at_wall": iso_now(),
        }
        self.db.put_checkpoint_entry(entry)
        telemetry.get_event_log().emit(
            "checkpoint.store",
            prefix=prefix,
            checkpoint_id=checkpoint.checkpoint_id,
        )
        return True

    # ----------------------------------------------------- boot leadership

    def get_or_boot(
        self,
        prefix: str,
        boot: Callable[[], Optional[Checkpoint]],
        wait_timeout: Optional[float] = None,
    ) -> Optional[Checkpoint]:
        """Adopt the prefix's checkpoint, booting (once) if absent.

        Of N concurrent callers for one prefix, exactly one acquires
        boot leadership via the broker's in-flight registry and runs
        ``boot``; the others wait for the leader and adopt what it
        stored.  ``boot`` returning None (an unbootable platform) is a
        valid outcome: everyone degrades to their own full run, but the
        boot was still attempted exactly once for the cohort.
        """
        found = self.get(prefix)
        if found is not None:
            return found
        # The completion event must exist before the leadership race is
        # decided, or a follower could acquire after the leader released
        # and wait on nothing.
        with self._boot_done_lock:
            done = self._boot_done.setdefault(prefix, threading.Event())
        token = new_uuid()
        leader = self._flight.acquire(prefix, token)
        if leader is None:
            try:
                _boots_counter().inc()
                telemetry.get_event_log().emit(
                    "checkpoint.boot", prefix=prefix, leader=token
                )
                checkpoint = boot()
                if checkpoint is not None:
                    self.store(prefix, checkpoint)
                return checkpoint
            finally:
                self._flight.release(prefix, token)
                with self._boot_done_lock:
                    self._boot_done.pop(prefix, None)
                done.set()
        done.wait(timeout=wait_timeout)
        return self.get(prefix)

    def boot_leader(self, prefix: str) -> Optional[str]:
        """The in-flight boot leader's token for a prefix, if any."""
        return self._flight.leader(prefix)

    # ------------------------------------------------------------- hygiene

    def gc(self, live_prefixes) -> int:
        """Evict checkpoints whose prefix no longer has live run specs.

        ``live_prefixes`` is the set of prefix fingerprints still
        reachable from run documents; everything else is an orphaned
        boot (rebuilt disk image, retired kernel) and is dropped,
        blob included.  Returns the number of entries evicted.
        """
        live = set(live_prefixes)
        evicted = 0
        for entry in self.db.checkpoint_entries():
            if entry["prefix"] in live:
                continue
            self.db.delete_checkpoint_entry(entry["prefix"])
            self.db.delete_file(entry["file_id"])
            telemetry.get_event_log().emit(
                "checkpoint.gc",
                prefix=entry["prefix"],
                checkpoint_id=entry.get("checkpoint_id"),
            )
            evicted += 1
        return evicted

    # --------------------------------------------------------------- query

    def entries(self) -> List[Dict[str, Any]]:
        """Every checkpoint entry, in insertion order."""
        return self.db.checkpoint_entries()

    def stats(self) -> Dict[str, Any]:
        """Summary counts for ``repro ckpt stats``."""
        entries = self.entries()
        by_boot_type: Dict[str, int] = {}
        restores = 0
        boot_seconds = 0.0
        for entry in entries:
            boot_type = entry.get("boot_type") or "unknown"
            by_boot_type[boot_type] = by_boot_type.get(boot_type, 0) + 1
            restores += int(entry.get("restores") or 0)
            boot_seconds += float(entry.get("boot_seconds") or 0.0)
        return {
            "entries": len(entries),
            "restores": restores,
            "boot_seconds_archived": boot_seconds,
            "by_boot_type": by_boot_type,
        }
