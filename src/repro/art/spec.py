"""RunSpec — the content-addressed intermediate representation of a run.

The paper's central identity claim is that a run is *uniquely determined
by the hashes of its inputs*: the artifacts it consumes, the parameters
handed to the run script, and the simulator build that executes it.
:class:`RunSpec` makes that claim structural.  It is a frozen,
order-independent description of one simulation point:

- ``kind`` — ``"fs"`` or ``"gpu"``;
- ``artifacts`` — role name → *content hash* (not UUID: two databases
  that registered the same bytes under different instance ids still
  agree on the hash, so they agree on the fingerprint);
- ``params`` — the run-script parameters, canonicalized;
- ``build`` — the simulator's static configuration (version/ISA/variant).

``fingerprint()`` serializes the spec to canonical JSON (sorted keys,
normalized numbers — see :func:`repro.common.jsonutil.canonical_dumps`)
and hashes it with SHA-256 through :mod:`repro.common.hashing`.  Equal
specs produce equal fingerprints regardless of dict insertion order,
sweep-axis declaration order, or int-vs-float parameter spelling; the
fingerprint is therefore the *identity key* of a run, while the run's
UUID remains merely its instance id.  The result-memoization layer
(:mod:`repro.art.cache`) and the scheduler's single-flight dedup key on
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.common.errors import ValidationError
from repro.common.hashing import sha256_text
from repro.common.jsonutil import canonical_dumps, loads

#: Bumped whenever the canonical serialization changes shape, so old
#: fingerprints can never silently alias new ones.
SPEC_SCHEMA_VERSION = 1

#: Bumped independently of :data:`SPEC_SCHEMA_VERSION` whenever the
#: *prefix* serialization changes shape — prefix fingerprints key boot
#: checkpoints, and an old checkpoint must never alias a new prefix.
PREFIX_SCHEMA_VERSION = 1

#: Run kinds a spec may describe.
KNOWN_KINDS = ("fs", "gpu")

#: Artifact roles that determine the booted guest state.  The gem5
#: binary/repo and run script are excluded: they shape the *measured*
#: region, not the kernel+disk state a checkpoint snapshots.
PREFIX_ARTIFACT_ROLES = ("linux_binary", "disk_image")

#: Parameters that determine the booted platform shape.  This is exactly
#: the :class:`repro.sim.checkpoint.Checkpoint` compatibility identity
#: (core count, memory system) plus the boot path taken to get there.
#: CPU type is deliberately excluded — booting under kvm and restoring
#: under O3 is the whole point of checkpointing.
PREFIX_PARAM_KEYS = ("num_cpus", "memory_system", "boot_type")


@dataclass(frozen=True)
class RunSpec:
    """A frozen, order-independent description of one run."""

    kind: str
    artifacts: Mapping[str, str] = field(default_factory=dict)
    params: Mapping[str, object] = field(default_factory=dict)
    build: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in KNOWN_KINDS:
            raise ValidationError(
                f"unknown run kind {self.kind!r}; one of {KNOWN_KINDS}"
            )
        if not self.artifacts:
            raise ValidationError("a run spec needs at least one artifact")
        for role, content_hash in self.artifacts.items():
            if not role or not content_hash:
                raise ValidationError(
                    f"artifact role {role!r} has an empty content hash"
                )
        # Freeze the mappings so a spec can never drift after hashing.
        object.__setattr__(self, "artifacts", dict(self.artifacts))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "build", dict(self.build))

    # ------------------------------------------------------- construction

    @classmethod
    def from_artifacts(
        cls,
        kind: str,
        artifacts: Mapping[str, "object"],
        params: Mapping[str, object],
        build: Optional[Mapping[str, str]] = None,
    ) -> "RunSpec":
        """Build a spec from role → :class:`~repro.art.artifact.Artifact`.

        When ``build`` is omitted and a ``gem5`` artifact is present, the
        simulator build info is lifted from that artifact's metadata — the
        same metadata the run layer uses to reconstruct the binary.
        """
        hashes = {role: art.hash for role, art in artifacts.items()}
        if build is None:
            build = {}
            gem5 = artifacts.get("gem5")
            if gem5 is not None:
                meta = getattr(gem5, "metadata", {}) or {}
                build = {
                    key: str(meta[key])
                    for key in ("version", "isa", "variant")
                    if key in meta
                }
        return cls(kind=kind, artifacts=hashes, params=params, build=build)

    # ------------------------------------------------------------ identity

    def canonical_document(self) -> Dict[str, object]:
        """The dict that gets serialized and hashed (also the archival
        form stored in run documents)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "artifacts": dict(self.artifacts),
            "params": dict(self.params),
            "build": dict(self.build),
        }

    def canonical_json(self) -> str:
        """Canonical-JSON serialization (sorted keys, normalized numbers)."""
        return canonical_dumps(self.canonical_document())

    def fingerprint(self) -> str:
        """SHA-256 content address of this spec.

        This is the run's identity key: two runs with equal fingerprints
        are the same experiment point and may share one execution and one
        archived result.
        """
        return sha256_text(self.canonical_json())

    def prefix_document(self) -> Optional[Dict[str, object]]:
        """The boot-determining subset of this spec, or ``None``.

        Covers the guest-state artifacts (kernel, disk image), the
        platform-shape parameters, and the simulator build — everything
        that decides *what a boot produces* — while excluding the
        downstream-variant axes (cpu type, memory tech/channels,
        benchmark, input size).  Two specs with equal prefix documents
        can legally share one boot checkpoint.

        Only full-system runs boot a guest; other kinds have no prefix.
        """
        if self.kind != "fs":
            return None
        artifacts = {
            role: self.artifacts[role]
            for role in PREFIX_ARTIFACT_ROLES
            if role in self.artifacts
        }
        if not artifacts:
            return None
        return {
            "schema": PREFIX_SCHEMA_VERSION,
            "kind": self.kind,
            "artifacts": artifacts,
            "params": {
                key: self.params[key]
                for key in PREFIX_PARAM_KEYS
                if key in self.params
            },
            "build": dict(self.build),
        }

    def prefix_fingerprint(self) -> Optional[str]:
        """SHA-256 content address of the boot-determining prefix.

        The key under which boot checkpoints are stored and shared: all
        variant runs whose specs agree on this value may restore from
        one boot.  ``None`` when the spec has no boot prefix (non-fs
        kinds, or no guest-state artifacts).
        """
        document = self.prefix_document()
        if document is None:
            return None
        return sha256_text(canonical_dumps(document))

    def uses_artifact_hash(self, content_hash: str) -> bool:
        """Does any input artifact of this spec have ``content_hash``?"""
        return content_hash in self.artifacts.values()

    # ------------------------------------------------------------- storage

    def to_document(self) -> Dict[str, object]:
        return self.canonical_document()

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "RunSpec":
        return cls(
            kind=document["kind"],
            artifacts=dict(document.get("artifacts") or {}),
            params=dict(document.get("params") or {}),
            build=dict(document.get("build") or {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_document(loads(text))
