"""Artifact registration — the paper's Fig 3.

An artifact is "an object and/or component used in a gem5 run, or produced
via a gem5 execution".  Registration records six user-supplied attributes
(command, typ, name, cwd, path, inputs, documentation) and three generated
ones (hash, id, git), uploads any associated payload to the database, and
de-duplicates: registering identical content twice returns the same
artifact, while registering the same hash with conflicting attributes is an
error.

Payload sources, in priority order:

- ``content=`` bytes — for simulated components built in memory (a kernel
  binary from :func:`repro.guest.kernels.build_kernel_binary`, a serialized
  :class:`~repro.vfs.DiskImage`, a pseudo gem5 binary);
- ``path=`` pointing at a real host file or directory (hashed with MD5, as
  gem5art does);
- a (simulated or real) git repository at ``path`` — hashed by revision.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import DuplicateError, ValidationError
from repro.common.gitinfo import read_git_info
from repro.common.hashing import md5_bytes, md5_file, md5_tree
from repro.common.ids import new_uuid
from repro.common.jsonutil import dumps
from repro.art.db import ArtifactDB
from repro.guest.kernels import LinuxKernel, build_kernel_binary
from repro.sim.buildinfo import GEM5_REPO_URL, Gem5Build
from repro.vfs.image import DiskImage


@dataclass
class Artifact:
    """One registered artifact (a document plus convenience accessors)."""

    name: str
    typ: str
    path: str
    hash: str
    id: str
    command: str = ""
    cwd: str = "."
    documentation: str = ""
    inputs: List[str] = field(default_factory=list)
    git: Dict[str, str] = field(default_factory=dict)
    file_id: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    _db: Optional[ArtifactDB] = None

    # ------------------------------------------------------- registration

    @classmethod
    def register_artifact(
        cls,
        db: ArtifactDB,
        name: str,
        typ: str,
        path: str,
        command: str = "",
        cwd: str = ".",
        documentation: str = "",
        inputs: Sequence["Artifact"] = (),
        content: Optional[bytes] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "Artifact":
        """Register (or fetch, if identical) an artifact.

        Raises :class:`DuplicateError` when an artifact with the same
        content hash exists under different attributes — the safety net
        the paper describes for resources altered between runs.
        """
        if not name or not typ:
            raise ValidationError("artifacts need a name and a type")
        content_hash, git_info, payload = cls._identify(path, content)
        input_ids = [artifact.id for artifact in inputs]
        existing = db.find_by_hash(content_hash)
        if existing is not None:
            return cls._reconcile(db, existing, name, typ, input_ids)
        file_id = None
        if payload is not None:
            file_id = db.upload_file(payload, filename=os.path.basename(path))
        document = {
            "_id": new_uuid(),
            "name": name,
            "type": typ,
            "path": path,
            "command": command,
            "cwd": cwd,
            "documentation": documentation,
            "inputs": input_ids,
            "hash": content_hash,
            "git": dict(git_info) if git_info else {},
            "file_id": file_id,
            "metadata": dict(metadata or {}),
        }
        db.put_artifact(document)
        return cls._from_document(db, document)

    #: camelCase alias matching the paper's Fig 3.
    registerArtifact = register_artifact

    @staticmethod
    def _identify(
        path: str, content: Optional[bytes]
    ) -> Tuple[str, Optional[Dict[str, str]], Optional[bytes]]:
        if content is not None:
            return md5_bytes(content), None, content
        if os.path.isdir(path):
            info = read_git_info(path)
            if info is not None:
                return info.revision, info.to_dict(), None
            return md5_tree(path), None, None
        if os.path.isfile(path):
            with open(path, "rb") as handle:
                payload = handle.read()
            return md5_file(path), None, payload
        raise ValidationError(
            f"artifact path {path!r} does not exist and no content was "
            "provided"
        )

    @classmethod
    def _reconcile(cls, db, existing, name, typ, input_ids) -> "Artifact":
        same = (
            existing["name"] == name
            and existing["type"] == typ
            and existing["inputs"] == input_ids
        )
        if not same:
            raise DuplicateError(
                f"an artifact with hash {existing['hash']} already exists "
                f"as {existing['name']!r} ({existing['type']}); refusing "
                "to register it under different attributes"
            )
        return cls._from_document(db, existing)

    @classmethod
    def _from_document(cls, db: ArtifactDB, document: Dict) -> "Artifact":
        return cls(
            name=document["name"],
            typ=document["type"],
            path=document["path"],
            hash=document["hash"],
            id=document["_id"],
            command=document.get("command", ""),
            cwd=document.get("cwd", "."),
            documentation=document.get("documentation", ""),
            inputs=list(document.get("inputs", [])),
            git=dict(document.get("git", {})),
            file_id=document.get("file_id"),
            metadata=dict(document.get("metadata", {})),
            _db=db,
        )

    @classmethod
    def load(cls, db: ArtifactDB, artifact_id: str) -> "Artifact":
        return cls._from_document(db, db.get_artifact(artifact_id))

    # ------------------------------------------------------------ payload

    def payload(self) -> bytes:
        if self.file_id is None or self._db is None:
            raise ValidationError(
                f"artifact {self.name!r} has no stored payload"
            )
        return self._db.download_file(self.file_id)


# ---------------------------------------------------------------- helpers
#
# Typed registration helpers for the simulated components this
# reproduction builds in memory.  Each embeds enough metadata for the run
# layer to reconstruct the executable object.


def register_gem5_binary(
    db: ArtifactDB,
    build: Gem5Build,
    name: str = "gem5",
    inputs: Sequence[Artifact] = (),
    documentation: str = "",
) -> Artifact:
    """Register a simulator build (the paper's canonical example)."""
    return Artifact.register_artifact(
        db,
        name=name,
        typ="gem5 binary",
        path=build.binary_name,
        command=build.scons_command(),
        cwd="gem5/",
        documentation=documentation
        or f"gem5 {build.version} compiled for {build.isa}",
        inputs=inputs,
        content=build.build_binary(),
        metadata={
            "version": build.version,
            "isa": build.isa,
            "variant": build.variant,
        },
    )


def register_kernel_binary(
    db: ArtifactDB,
    kernel: LinuxKernel,
    config: str = "default",
    inputs: Sequence[Artifact] = (),
) -> Artifact:
    """Register a compiled ``vmlinux`` for a kernel model."""
    return Artifact.register_artifact(
        db,
        name=f"vmlinux-{kernel.version}",
        typ="kernel",
        path=f"linux-stable/vmlinux-{kernel.version}",
        command=f"make -j8 vmlinux KCONFIG={config}",
        cwd="linux-stable/",
        documentation=f"Linux {kernel.version} ({config} config)",
        inputs=inputs,
        content=build_kernel_binary(kernel, config),
        metadata={"kernel_version": kernel.version, "config": config},
    )


def register_disk_image(
    db: ArtifactDB,
    image: DiskImage,
    inputs: Sequence[Artifact] = (),
    documentation: str = "",
) -> Artifact:
    """Register a built disk image; the payload is the serialized image."""
    return Artifact.register_artifact(
        db,
        name=image.name,
        typ="disk image",
        path=f"disks/{image.name}.img",
        command="packer build template.json",
        cwd="disk-image/",
        documentation=documentation or f"disk image {image.name}",
        inputs=inputs,
        content=dumps(image.to_dict()).encode("utf-8"),
        metadata={"image_metadata": image.metadata},
    )


def load_disk_image(artifact: Artifact) -> DiskImage:
    """Reconstruct the DiskImage stored in a disk-image artifact."""
    from repro.common.jsonutil import loads

    if artifact.typ != "disk image":
        raise ValidationError(
            f"artifact {artifact.name!r} is a {artifact.typ!r}, not a "
            "disk image"
        )
    return DiskImage.from_dict(loads(artifact.payload().decode("utf-8")))


def register_repo(
    db: ArtifactDB,
    name: str,
    url: str = GEM5_REPO_URL,
    version: str = "HEAD",
    path: str = None,
) -> Artifact:
    """Register a source repository artifact by URL + version.

    For simulated repositories no checkout exists on disk; the revision is
    derived deterministically from (url, version), mirroring how gem5art
    records ``git_url`` + ``hash`` for real checkouts.
    """
    from repro.common.gitinfo import simulated_revision

    revision = simulated_revision(url, version)
    existing = db.find_by_hash(revision)
    if existing is not None:
        return Artifact._reconcile(db, existing, name, "git repo", [])
    document = {
        "_id": new_uuid(),
        "name": name,
        "type": "git repo",
        "path": path or f"{name}/",
        "command": f"git clone {url}",
        "cwd": ".",
        "documentation": f"{name} repository at {version}",
        "inputs": [],
        "hash": revision,
        "git": {"git_url": url, "hash": revision},
        "file_id": None,
        "metadata": {"version": version},
    }
    db.put_artifact(document)
    return Artifact._from_document(db, document)
