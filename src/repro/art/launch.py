"""Launch scripts as objects — the paper's Fig 5, generalized.

A gem5art launch script registers artifacts, then creates run objects for
"each combination P in [cpus, benchmarks, ...]" and launches them
asynchronously.  :class:`Experiment` captures that pattern declaratively:

- one or more *stacks* (named artifact sets — e.g. one per Ubuntu release),
- parameter *axes* to sweep,
- a backend choice (pool / scheduler / inline),

and it records the experiment itself as a document so the database tells
the whole story: which artifacts, which cross product, which outcomes.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import (
    NotFoundError,
    StateError,
    ValidationError,
)
from repro.common.ids import new_uuid
from repro.common.timeutil import iso_now
from repro import telemetry
from repro.art.artifact import Artifact
from repro.art.db import ArtifactDB
from repro.art.checkpoints import CheckpointStore
from repro.art.run import Gem5Run, RunStatus
from repro.art.tasks import (
    run_boot_stage,
    run_job,
    run_jobs_pool,
    run_jobs_scheduler,
)

#: Artifact roles a full-system stack must provide.
FS_STACK_ROLES = (
    "gem5",
    "gem5_git",
    "run_script_git",
    "linux_binary",
    "disk_image",
)

EXPERIMENTS = "experiments"

#: Run statuses a resume re-queues by default: never-started runs and
#: runs interrupted mid-flight (status still "running" with no live
#: process behind it).
RESUMABLE_STATUSES = (RunStatus.CREATED.value, RunStatus.RUNNING.value)

#: Additionally re-queued when ``retry_failures=True``.
FAILED_STATUSES = (RunStatus.FAILED.value, RunStatus.TIMED_OUT.value)


class Experiment:
    """A declarative cross-product experiment over gem5art runs."""

    def __init__(
        self,
        db: ArtifactDB,
        name: str,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        if not name:
            raise ValidationError("experiment needs a name")
        self.db = db
        self.name = name
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self.experiment_id = new_uuid()
        self._stacks: Dict[str, Dict[str, Artifact]] = {}
        self._axes: Dict[str, List[Any]] = {}
        self._fixed: Dict[str, Any] = {}
        self._runs: Optional[List[Gem5Run]] = None
        self._stack_of_run: Dict[str, str] = {}
        self._loaded = False

    # -------------------------------------------------------------- stacks

    def add_stack(self, name: str, **artifacts: Artifact) -> None:
        """Register a named artifact set (e.g. one per OS release)."""
        if self._loaded:
            raise StateError(
                "experiments loaded from the database are frozen; "
                "declare stacks on a fresh Experiment"
            )
        missing = [
            role for role in FS_STACK_ROLES if role not in artifacts
        ]
        if missing:
            raise ValidationError(
                f"stack {name!r} is missing artifact roles: {missing}"
            )
        unknown = set(artifacts) - set(FS_STACK_ROLES)
        if unknown:
            raise ValidationError(
                f"stack {name!r} has unknown roles: {sorted(unknown)}"
            )
        if name in self._stacks:
            raise ValidationError(f"stack {name!r} already added")
        self._stacks[name] = dict(artifacts)

    # ---------------------------------------------------------------- axes

    def sweep(self, **axes: Sequence[Any]) -> None:
        """Declare parameter axes; each keyword becomes one cross-product
        dimension (e.g. ``num_cpus=[1, 2, 8]``)."""
        for key, values in axes.items():
            values = list(values)
            if not values:
                raise ValidationError(f"axis {key!r} is empty")
            self._axes[key] = values

    def fix(self, **params: Any) -> None:
        """Set parameters common to every run."""
        self._fixed.update(params)

    # ---------------------------------------------------------------- runs

    def size(self) -> int:
        """Number of runs the current declaration implies."""
        if not self._stacks:
            return 0
        total = len(self._stacks)
        for values in self._axes.values():
            total *= len(values)
        return total

    def create_runs(self) -> List[Gem5Run]:
        """Materialize one run object per cross-product point."""
        if self._loaded:
            raise StateError(
                "runs of a loaded experiment already exist in the database"
            )
        if not self._stacks:
            raise StateError("add at least one stack before create_runs")
        if self._runs is not None:
            raise StateError("runs were already created")
        axis_names = list(self._axes)
        runs: List[Gem5Run] = []
        for stack_name, artifacts in self._stacks.items():
            for combo in itertools.product(
                *(self._axes[name] for name in axis_names)
            ):
                params = dict(self._fixed)
                params.update(dict(zip(axis_names, combo)))
                run = Gem5Run.create_fs_run(
                    self.db,
                    gem5_artifact=artifacts["gem5"],
                    gem5_git_artifact=artifacts["gem5_git"],
                    run_script_git_artifact=artifacts["run_script_git"],
                    linux_binary_artifact=artifacts["linux_binary"],
                    disk_image_artifact=artifacts["disk_image"],
                    **params,
                )
                runs.append(run)
                self._stack_of_run[run.run_id] = stack_name
        self._runs = runs
        self._record()
        return runs

    def _record(self) -> None:
        self.db.database.collection(EXPERIMENTS).insert_one(
            {
                "_id": self.experiment_id,
                "name": self.name,
                "stacks": {
                    name: {
                        role: artifact.id
                        for role, artifact in artifacts.items()
                    }
                    for name, artifacts in self._stacks.items()
                },
                "axes": self._axes,
                "fixed": self._fixed,
                "run_ids": [run.run_id for run in self._runs],
                "stack_of_run": dict(self._stack_of_run),
                # Caller-supplied provenance (e.g. which pipeline stage
                # launched this campaign); empty for direct launches.
                "metadata": dict(self.metadata),
                "status": "created",
                "created_at_wall": iso_now(),
            }
        )

    def _journal(self, status: str, **extra: Any) -> None:
        """Record the experiment's own lifecycle in its document, so an
        interrupted campaign is visible in the database — not only in the
        memory of the crashed process."""
        update = {"status": status, "status_at_wall": iso_now()}
        update.update(extra)
        self.db.database.collection(EXPERIMENTS).update_one(
            {"_id": self.experiment_id}, {"$set": update}
        )

    # -------------------------------------------------------------- launch

    def launch(
        self,
        backend: str = "pool",
        workers: int = 4,
        resume: bool = False,
        use_cache: bool = True,
        substrate: str = "threads",
        tenant: str = "default",
        priority: str = "default",
        use_checkpoints: bool = False,
    ) -> List[Dict[str, Any]]:
        """Execute every run via the chosen backend and return summaries.

        Backends mirror the paper's three options: ``pool``
        (multiprocessing-style), ``scheduler`` (Celery-style), ``inline``
        (no job manager at all).

        ``resume=True`` makes the launch idempotent: runs already marked
        done in the database are skipped, so an interrupted experiment
        can be re-launched and only the missing points execute.  The
        returned summaries always cover *every* run, in creation order.

        ``use_cache`` (default) consults the fingerprint result cache
        before each simulation and single-flights identical concurrent
        runs; ``use_cache=False`` (the CLI's ``--no-cache``) forces every
        point to simulate.

        ``substrate`` (scheduler backend only) picks where simulations
        execute: ``"threads"`` in-process, ``"processes"`` sharded
        across OS worker processes for real CPU parallelism
        (the CLI's ``--substrate processes``).

        ``tenant``/``priority`` (scheduler backend only) are the
        admission-control coordinates the campaign submits under: an
        interactive debug sweep can jump the queue ahead of a bulk
        cross product, and a shared service can meter each tenant.

        ``use_checkpoints`` turns the launch into a staged pipeline:
        the pending runs are grouped by boot-prefix fingerprint, one
        boot checkpoint is taken per unique prefix (single-flighted),
        and each point then restores from its cohort's checkpoint
        instead of re-booting (the CLI's ``--checkpoints``).
        """
        if self._runs is None:
            self.create_runs()
        pending = self._runs
        if resume:
            pending_ids = set(self.pending_runs())
            pending = [
                run for run in self._runs if run.run_id in pending_ids
            ]
        return self._execute_pending(
            pending,
            backend,
            workers,
            phase="launch",
            use_cache=use_cache,
            substrate=substrate,
            tenant=tenant,
            priority=priority,
            use_checkpoints=use_checkpoints,
        )

    def resume(
        self,
        backend: str = "pool",
        workers: int = 4,
        retry_failures: bool = False,
        use_cache: bool = True,
        substrate: str = "threads",
        tenant: str = "default",
        priority: str = "default",
        use_checkpoints: bool = False,
    ) -> List[Dict[str, Any]]:
        """Re-launch only the runs an interrupted campaign still owes.

        Idempotent by run_id: runs already ``done`` in the database are
        skipped; ``created`` runs (never started) and ``running`` runs
        (interrupted mid-flight — their process is gone) are re-queued;
        ``failed``/``timed_out`` runs are re-queued only with
        ``retry_failures=True``.  Resuming a finished experiment executes
        nothing and just returns the summaries.
        """
        if self._runs is None:
            raise StateError(
                "no runs to resume; launch the experiment first or load "
                "it from the database with Experiment.load"
            )
        pending_ids = set(self.pending_runs(retry_failures=retry_failures))
        pending = [
            run for run in self._runs if run.run_id in pending_ids
        ]
        return self._execute_pending(
            pending,
            backend,
            workers,
            phase="resume",
            use_cache=use_cache,
            substrate=substrate,
            tenant=tenant,
            priority=priority,
            use_checkpoints=use_checkpoints,
        )

    def pending_runs(self, retry_failures: bool = False) -> List[str]:
        """Run ids a resume would execute, in creation order, judged by
        the *database's* current run statuses (not in-memory state)."""
        if self._runs is None:
            return []
        resumable = set(RESUMABLE_STATUSES)
        if retry_failures:
            resumable.update(FAILED_STATUSES)
        return [
            run.run_id
            for run in self._runs
            if self.db.get_run(run.run_id)["status"] in resumable
        ]

    def _execute_pending(
        self,
        pending: List[Gem5Run],
        backend: str,
        workers: int,
        phase: str,
        use_cache: bool = True,
        substrate: str = "threads",
        tenant: str = "default",
        priority: str = "default",
        use_checkpoints: bool = False,
    ) -> List[Dict[str, Any]]:
        if backend not in ("pool", "scheduler", "inline"):
            raise ValidationError(
                f"unknown backend {backend!r}; "
                "one of ('pool', 'scheduler', 'inline')"
            )
        if substrate != "threads" and backend != "scheduler":
            raise ValidationError(
                f"substrate {substrate!r} requires the scheduler backend"
            )
        span = telemetry.get_tracer().span(
            "experiment",
            attributes={
                "name": self.name,
                "experiment_id": self.experiment_id,
                "backend": backend,
                "phase": phase,
                "runs": len(pending),
                "use_cache": use_cache,
                "substrate": substrate,
                "use_checkpoints": use_checkpoints,
            },
        )
        telemetry.get_event_log().emit(
            f"experiment.{phase}",
            experiment_id=self.experiment_id,
            name=self.name,
            backend=backend,
            pending=len(pending),
            run_ids=[run.run_id for run in pending],
        )
        self._journal(
            "resuming" if phase == "resume" else "launching",
            backend=backend,
            workers=workers,
            pending=len(pending),
        )
        store: Optional[CheckpointStore] = None
        if use_checkpoints and pending:
            store = CheckpointStore(self.db)
        interrupted = True
        try:
            with span:
                if backend == "scheduler":
                    run_jobs_scheduler(
                        pending,
                        worker_count=workers,
                        use_cache=use_cache,
                        substrate=substrate,
                        tenant=tenant,
                        priority=priority,
                        use_checkpoints=use_checkpoints,
                        checkpoint_store=store,
                    )
                else:
                    # pool/inline backends stage the boot phase here;
                    # the scheduler backend stages it internally.
                    if store is not None:
                        run_boot_stage(
                            pending, store, worker_count=workers
                        )
                    if backend == "pool":
                        run_jobs_pool(
                            pending,
                            processes=workers,
                            use_cache=use_cache,
                            checkpoint_store=store,
                        )
                    else:
                        for run in pending:
                            run_job(
                                run,
                                use_cache=use_cache,
                                checkpoint_store=store,
                            )
            interrupted = False
        finally:
            # The journal survives a crash here: a campaign killed
            # mid-flight leaves status="interrupted" behind, which is what
            # ``repro resume`` looks for.
            self._journal("interrupted" if interrupted else "finished")
            telemetry.get_event_log().emit(
                "experiment.finished",
                experiment_id=self.experiment_id,
                name=self.name,
                interrupted=interrupted,
            )
            self._archive_telemetry(span)
        return [
            self.db.get_run(run.run_id).get("results")
            for run in self._runs
        ]

    # ----------------------------------------------------------- loading

    @classmethod
    def load(cls, db: ArtifactDB, name_or_id: str) -> "Experiment":
        """Rehydrate an experiment (and its runs) from the database.

        Accepts the experiment's name or id.  The result is frozen —
        stacks and runs already exist — but fully resumable and
        reportable.
        """
        experiments = db.database.collection(EXPERIMENTS)
        doc = experiments.find_one({"name": name_or_id})
        if doc is None:
            doc = experiments.find_one({"_id": name_or_id})
        if doc is None:
            raise NotFoundError(
                f"no experiment named (or with id) {name_or_id!r}"
            )
        experiment = cls(db, doc["name"], metadata=doc.get("metadata"))
        experiment.experiment_id = doc["_id"]
        experiment._loaded = True
        experiment._axes = {
            key: list(values) for key, values in doc["axes"].items()
        }
        experiment._fixed = dict(doc["fixed"])
        experiment._stacks = {
            name: dict(roles) for name, roles in doc["stacks"].items()
        }
        experiment._runs = [
            Gem5Run.load(db, run_id) for run_id in doc["run_ids"]
        ]
        experiment._stack_of_run = dict(doc.get("stack_of_run") or {})
        return experiment

    def _archive_telemetry(self, span) -> None:
        """Archive the whole experiment's trace (spans + metrics +
        events) keyed by the experiment id — ``repro trace`` reads it
        back from the database alone."""
        session = telemetry.current_session()
        if session is None or not span.span_id:
            return
        telemetry.archive_telemetry(
            self.db,
            self.experiment_id,
            session.snapshot(
                spans=session.tracer.subtree(span.span_id)
            ),
            kind="experiment",
        )

    # -------------------------------------------------------------- report

    def stack_of(self, run_id: str) -> str:
        if run_id not in self._stack_of_run:
            raise ValidationError(
                f"run {run_id} does not belong to this experiment"
            )
        return self._stack_of_run[run_id]

    def report(self) -> Dict[str, Any]:
        """Outcome summary: totals and per-status counts per stack."""
        if self._runs is None:
            raise StateError("launch the experiment before reporting")
        by_stack: Dict[str, Dict[str, int]] = {
            name: {} for name in self._stacks
        }
        for run in self._runs:
            doc = self.db.get_run(run.run_id)
            results = doc.get("results") or {}
            status = results.get("simulation_status", doc["status"])
            stack = self._stack_of_run[run.run_id]
            by_stack[stack][status] = by_stack[stack].get(status, 0) + 1
        return {
            "experiment": self.name,
            "runs": len(self._runs),
            "by_stack": by_stack,
        }
