"""Run objects — the paper's Fig 4.

A "gem5art run" is a special artifact that stores all the information about
one simulation (a single data point): references to the input artifacts
(gem5 binary, its repository, the run script, the kernel, the disk image),
the parameters handed to the run script, and — once executed — a pointer
to the results plus a summary (status, execution time).

This reproduction's run objects are *executable*: ``run()`` reconstructs
the simulator and guest objects from the referenced artifacts' payloads and
metadata, drives :class:`repro.sim.Gem5Simulator` (or the GPU device), and
archives everything in the database.

Run identity is two-layered.  The UUID (``run_id``) is the *instance* id:
it names one attempt, one document, one row in an experiment.  The
:class:`~repro.art.spec.RunSpec` **fingerprint** is the *identity* key:
a SHA-256 over the content hashes of every input artifact plus the
canonicalized parameters and simulator build.  Every run is constructed
from a spec, and ``run()`` consults the result cache
(:mod:`repro.art.cache`) by fingerprint before simulating — a hit adopts
the archived, hash-verified result at near-zero cost.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import NotFoundError, ValidationError
from repro.common.ids import new_uuid
from repro.common.timeutil import iso_now
from repro import chaos, telemetry
from repro.art.artifact import Artifact, load_disk_image
from repro.art.cache import RunCache
from repro.art.db import ArtifactDB
from repro.art.spec import RunSpec
from repro.gpu.config import GPUConfig
from repro.gpu.device import GPUDevice
from repro.gpu.workloads import get_gpu_workload
from repro.sim.buildinfo import Gem5Build
from repro.sim.checkpoint import Checkpoint
from repro.sim.config import SystemConfig
from repro.sim.simulator import Gem5Simulator, SimulationStatus


class RunStatus(str, enum.Enum):
    """Lifecycle of a run document in the database."""

    CREATED = "created"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


#: Simulation statuses that count as a *failed* run (vs a successful run
#: of a simulation that itself reported a failure — for boot tests even a
#: kernel panic is a valid, recorded outcome).
_HARD_FAILURES = ()


@dataclass
class Gem5Run:
    """One experiment data point, executable and archivable."""

    run_id: str
    kind: str  # "fs" or "gpu"
    artifacts: Dict[str, str]
    params: Dict[str, object]
    timeout: float
    db: ArtifactDB = field(repr=False)
    status: RunStatus = RunStatus.CREATED
    results: Optional[Dict[str, object]] = None
    spec: Optional[RunSpec] = field(default=None, repr=False)
    fingerprint: str = ""

    # -------------------------------------------------------- constructors

    @classmethod
    def create_fs_run(
        cls,
        db: ArtifactDB,
        gem5_artifact: Artifact,
        gem5_git_artifact: Artifact,
        run_script_git_artifact: Artifact,
        linux_binary_artifact: Artifact,
        disk_image_artifact: Artifact,
        cpu_type: str = "timing",
        num_cpus: int = 1,
        memory_system: str = "classic",
        memory_tech: str = "DDR3_1600_8x8",
        memory_channels: int = 1,
        benchmark: Optional[str] = None,
        input_size: Optional[str] = None,
        boot_type: str = "systemd",
        timeout: float = 60 * 15,
    ) -> "Gem5Run":
        """Create a full-system run object (the paper's ``createFSRun``).

        All five artifacts of Fig 4 are required; the remaining keyword
        parameters are what the run script would receive.
        """
        artifact_objects = {
            "gem5": gem5_artifact,
            "gem5_git": gem5_git_artifact,
            "run_script_git": run_script_git_artifact,
            "linux_binary": linux_binary_artifact,
            "disk_image": disk_image_artifact,
        }
        params = {
            "cpu_type": cpu_type,
            "num_cpus": num_cpus,
            "memory_system": memory_system,
            "memory_tech": memory_tech,
            "memory_channels": memory_channels,
            "benchmark": benchmark,
            "input_size": input_size,
            "boot_type": boot_type,
        }
        spec = RunSpec.from_artifacts("fs", artifact_objects, params)
        return cls._create(db, artifact_objects, params, timeout, spec)

    #: camelCase alias matching the paper's Fig 4.
    createFSRun = create_fs_run

    @classmethod
    def create_gpu_run(
        cls,
        db: ArtifactDB,
        gem5_artifact: Artifact,
        gem5_git_artifact: Artifact,
        workload: str,
        register_allocator: str = "simple",
        gpu_config: Optional[GPUConfig] = None,
        timeout: float = 60 * 15,
    ) -> "Gem5Run":
        """Create a GPU (GCN3_X86) run for use-case 3."""
        build_meta = gem5_artifact.metadata
        if build_meta.get("isa") != "GCN3_X86":
            raise ValidationError(
                "GPU runs need a gem5 binary built for GCN3_X86 "
                f"(got {build_meta.get('isa')!r})"
            )
        artifact_objects = {
            "gem5": gem5_artifact,
            "gem5_git": gem5_git_artifact,
        }
        config = gpu_config or GPUConfig()
        params = {
            "workload": workload,
            "register_allocator": register_allocator,
            "gpu_config": {
                "num_cus": config.num_cus,
                "simds_per_cu": config.simds_per_cu,
                "max_wavefronts_per_simd": config.max_wavefronts_per_simd,
                "vector_registers_per_cu": config.vector_registers_per_cu,
                "lds_bytes_per_cu": config.lds_bytes_per_cu,
                "dependence_tracking_penalty": (
                    config.dependence_tracking_penalty
                ),
            },
        }
        spec = RunSpec.from_artifacts("gpu", artifact_objects, params)
        return cls._create(db, artifact_objects, params, timeout, spec)

    createGPURun = create_gpu_run

    @classmethod
    def _create(
        cls, db, artifact_objects, params, timeout, spec: RunSpec
    ) -> "Gem5Run":
        """Materialize a run *from its spec* plus the artifact instances
        that realize it; the fingerprint is persisted in the document so
        loads and cache consultations never re-derive it."""
        artifacts = {
            role: artifact.id
            for role, artifact in artifact_objects.items()
        }
        fingerprint = spec.fingerprint()
        run = cls(
            run_id=new_uuid(),
            kind=spec.kind,
            artifacts=artifacts,
            params=params,
            timeout=timeout,
            db=db,
            spec=spec,
            fingerprint=fingerprint,
        )
        db.put_run(
            {
                "_id": run.run_id,
                "kind": spec.kind,
                "artifacts": artifacts,
                "params": params,
                "timeout": timeout,
                "status": RunStatus.CREATED.value,
                "results": None,
                "fingerprint": fingerprint,
                "spec": spec.to_document(),
            }
        )
        return run

    @classmethod
    def load(cls, db: ArtifactDB, run_id: str) -> "Gem5Run":
        doc = db.get_run(run_id)
        spec = cls._spec_for_doc(db, doc)
        return cls(
            run_id=doc["_id"],
            kind=doc["kind"],
            artifacts=dict(doc["artifacts"]),
            params=dict(doc["params"]),
            timeout=doc["timeout"],
            db=db,
            status=RunStatus(doc["status"]),
            results=doc.get("results"),
            spec=spec,
            fingerprint=(
                doc.get("fingerprint")
                or (spec.fingerprint() if spec is not None else "")
            ),
        )

    @staticmethod
    def _spec_for_doc(
        db: ArtifactDB, doc: Dict[str, object]
    ) -> Optional[RunSpec]:
        """Rehydrate (or, for pre-spec documents, rebuild) the run's spec.

        Older run documents carry only artifact UUIDs; the spec is
        reconstructed from the referenced artifacts' content hashes.  A
        document whose artifacts are gone (a partial archive import)
        yields None — the run still loads, it just cannot be memoized.
        """
        spec_doc = doc.get("spec")
        if spec_doc:
            return RunSpec.from_document(spec_doc)
        try:
            artifact_objects = {
                role: Artifact.load(db, artifact_id)
                for role, artifact_id in doc["artifacts"].items()
            }
        except NotFoundError:
            return None
        return RunSpec.from_artifacts(
            doc["kind"], artifact_objects, doc["params"]
        )

    # ------------------------------------------------------------ identity

    @property
    def prefix(self) -> Optional[str]:
        """The boot-prefix fingerprint of this run's spec, or None.

        All runs sharing a prefix may legally restore one boot
        checkpoint (see :meth:`repro.art.spec.RunSpec.prefix_fingerprint`).
        """
        if self.spec is None:
            return None
        return self.spec.prefix_fingerprint()

    # ----------------------------------------------------------- execution

    def run(
        self,
        use_cache: bool = True,
        checkpoint_store=None,
    ) -> Dict[str, object]:
        """Execute the simulation — or adopt its memoized result — and
        archive the outcome.

        Returns the results summary also stored in the database.  The
        gem5art timeout is enforced on host wall-clock time.

        With ``use_cache`` (the default) the run first consults the
        result cache by spec fingerprint: on a verified hit the archived
        results are adopted and **no simulation happens**; on a miss the
        run executes and, if it reaches ``DONE``, its outcome is stored
        for every future identical run.  ``use_cache=False`` forces a
        fresh execution and leaves the cache untouched.

        With ``checkpoint_store`` (a
        :class:`~repro.art.checkpoints.CheckpointStore`), an fs run
        consults the store by its prefix fingerprint and restores the
        archived boot instead of re-simulating it; a missing, corrupt
        or incompatible checkpoint degrades to a full boot.

        With telemetry enabled, the run is wrapped in a ``run`` span
        (parenting the simulator's phase spans) and its span subtree is
        archived in the database next to the stats blob, so the timeline
        can be rehydrated from the database alone.
        """
        span = telemetry.get_tracer().span(
            "run",
            attributes={
                "run_id": self.run_id,
                "kind": self.kind,
                "fingerprint": self.fingerprint,
            },
        )
        try:
            with span:
                summary = self._run_or_adopt(
                    use_cache, span, checkpoint_store
                )
                span.set_attribute("status", self.status.value)
                span.set_attribute(
                    "workload", summary.get("workload", "")
                )
                span.set_attribute(
                    "host_seconds", summary.get("host_seconds", 0.0)
                )
        finally:
            span.set_attribute("status", self.status.value)
            telemetry.get_metrics().counter(
                "runs_total", "gem5art runs by final status"
            ).inc(outcome=self.status.value)
            self._archive_telemetry(span)
        return summary

    def run_in_pool(
        self,
        pool,
        use_cache: bool = True,
        repeats: int = 1,
        checkpoint_store=None,
    ) -> Dict[str, object]:
        """Execute this run on a process-pool substrate.

        The cache consult, status transitions, stats-blob upload and
        cache store all happen here in the parent — the worker process
        only simulates (see :mod:`repro.art.procjobs`).  Semantics match
        :meth:`run`: a cache hit adopts without simulating, a worker
        failure marks the run FAILED and re-raises, and the gem5art
        timeout is enforced on the worker's host wall-clock seconds.
        """
        span = telemetry.get_tracer().span(
            "run",
            attributes={
                "run_id": self.run_id,
                "kind": self.kind,
                "fingerprint": self.fingerprint,
                "substrate": "processes",
            },
        )
        try:
            with span:
                summary = self._run_or_adopt_in_pool(
                    pool, use_cache, repeats, span, checkpoint_store
                )
                span.set_attribute("status", self.status.value)
                span.set_attribute(
                    "workload", summary.get("workload", "")
                )
        finally:
            span.set_attribute("status", self.status.value)
            telemetry.get_metrics().counter(
                "runs_total", "gem5art runs by final status"
            ).inc(outcome=self.status.value)
            self._archive_telemetry(span)
        return summary

    def _run_or_adopt_in_pool(
        self, pool, use_cache: bool, repeats: int, span, checkpoint_store
    ) -> Dict[str, object]:
        from repro.art.procjobs import envelope_for_run

        cache = (
            RunCache(self.db) if use_cache and self.fingerprint else None
        )
        if cache is not None:
            entry = cache.consult(self.fingerprint)
            if entry is not None:
                span.set_attribute("cache", "hit")
                return self.adopt_cached(entry)
            span.set_attribute("cache", "miss")
        restore = None
        if checkpoint_store is not None and self.kind == "fs":
            # Full compatibility (including the image hash) is
            # re-verified inside the worker; the prefix key already
            # guarantees it, so a mismatch there is a loud failure,
            # not a silent wrong restore.
            restore = checkpoint_store.get(self.prefix)
        if restore is not None:
            span.set_attribute("boot", "restored")
        envelope = envelope_for_run(
            self, repeats=repeats, restore_from=restore
        )
        self._set_status(
            RunStatus.RUNNING, extra={"started_at_wall": iso_now()}
        )
        handle = pool.submit(envelope)
        try:
            outcome = handle.result()
        except Exception as error:
            self.results = {"error": str(error)}
            self._set_status(
                RunStatus.FAILED,
                self.results,
                extra={"finished_at_wall": iso_now()},
            )
            raise
        summary = dict(outcome["summary"])
        stats_file_id = self.db.upload_file(
            outcome["stats_txt"].encode("utf-8"),
            filename=f"stats-{self.run_id}.txt",
        )
        summary["stats_file_id"] = stats_file_id
        summary["stats_fingerprint"] = outcome["stats_fingerprint"]
        summary["host_seconds"] = handle.host_seconds
        summary["worker"] = handle.worker
        finished = {"finished_at_wall": iso_now()}
        if handle.host_seconds > self.timeout:
            summary["timed_out"] = True
            self.results = summary
            self._set_status(RunStatus.TIMED_OUT, summary, extra=finished)
            return summary
        self.results = summary
        self._set_status(RunStatus.DONE, summary, extra=finished)
        if cache is not None and self.status is RunStatus.DONE:
            cache.store(self.fingerprint, self.db.get_run(self.run_id))
        return summary

    def _run_or_adopt(
        self, use_cache: bool, span, checkpoint_store=None
    ) -> Dict[str, object]:
        cache = (
            RunCache(self.db) if use_cache and self.fingerprint else None
        )
        if cache is not None:
            entry = cache.consult(self.fingerprint)
            if entry is not None:
                span.set_attribute("cache", "hit")
                return self.adopt_cached(entry)
            span.set_attribute("cache", "miss")
        summary = self._run_guarded(checkpoint_store)
        if cache is not None and self.status is RunStatus.DONE:
            cache.store(self.fingerprint, self.db.get_run(self.run_id))
        return summary

    def adopt_cached(self, entry: Dict[str, object]) -> Dict[str, object]:
        """Take over an archived result: the run finishes without a
        single simulated tick, its document pointing at the same
        (hash-verified) stats blob the original execution produced."""
        results = dict(entry["results"])
        self.results = results
        self._set_status(
            RunStatus(entry["status"]),
            results,
            extra={
                "cache_hit": True,
                "cached_from": entry.get("run_id"),
                "finished_at_wall": iso_now(),
            },
        )
        return results

    def _run_guarded(self, checkpoint_store=None) -> Dict[str, object]:
        self._set_status(
            RunStatus.RUNNING, extra={"started_at_wall": iso_now()}
        )
        started = time.monotonic()
        try:
            if self.kind == "fs":
                summary = self._run_fs(checkpoint_store)
            elif self.kind == "gpu":
                summary = self._run_gpu()
            else:
                raise ValidationError(f"unknown run kind {self.kind!r}")
        except Exception as error:
            self.results = {"error": str(error)}
            self._set_status(
                RunStatus.FAILED,
                self.results,
                extra={"finished_at_wall": iso_now()},
            )
            raise
        elapsed = time.monotonic() - started
        summary["host_seconds"] = elapsed
        finished = {"finished_at_wall": iso_now()}
        if elapsed > self.timeout:
            summary["timed_out"] = True
            self.results = summary
            self._set_status(RunStatus.TIMED_OUT, summary, extra=finished)
            return summary
        self.results = summary
        self._set_status(RunStatus.DONE, summary, extra=finished)
        return summary

    def _archive_telemetry(self, span) -> None:
        """Store this run's span subtree as a blob next to its stats."""
        if not telemetry.enabled() or not span.span_id:
            return
        spans = telemetry.get_tracer().subtree(span.span_id)
        if not spans:
            return
        telemetry.archive_telemetry(
            self.db,
            self.run_id,
            telemetry.snapshot(spans=spans),
            kind="run",
        )

    def _fs_inputs(self):
        """Reconstruct (build, kernel_version, image) from the artifacts."""
        gem5_artifact = Artifact.load(self.db, self.artifacts["gem5"])
        kernel_artifact = Artifact.load(
            self.db, self.artifacts["linux_binary"]
        )
        disk_artifact = Artifact.load(self.db, self.artifacts["disk_image"])
        build = Gem5Build(
            version=gem5_artifact.metadata.get("version", "20.1.0.4"),
            isa=gem5_artifact.metadata.get("isa", "X86"),
            variant=gem5_artifact.metadata.get("variant", "opt"),
        )
        kernel_version = kernel_artifact.metadata["kernel_version"]
        image = load_disk_image(disk_artifact)
        return build, kernel_version, image

    def _consult_checkpoint(
        self, store, kernel_version: str, image
    ) -> Optional[Checkpoint]:
        """Fetch this run's boot checkpoint, degrading on any doubt.

        The store's ``get`` already degrades on missing/corrupt entries;
        this layer additionally re-verifies restore compatibility and
        treats a mismatch as a miss (full boot) rather than a failure —
        a stale or hand-edited store must never wedge a sweep.
        """
        if store is None or self.kind != "fs":
            return None
        prefix = self.prefix
        if prefix is None:
            return None
        checkpoint = store.get(prefix)
        if checkpoint is None:
            return None
        try:
            checkpoint.check_compatible(
                kernel_version=kernel_version,
                disk_image_hash=image.content_hash(),
                num_cpus=self.params["num_cpus"],
                memory_system=self.params["memory_system"],
            )
        except ValidationError as error:
            telemetry.get_event_log().emit(
                "checkpoint.incompatible",
                run_id=self.run_id,
                prefix=prefix,
                error=str(error),
            )
            return None
        return checkpoint

    def take_boot_checkpoint(
        self, boot_cpu: str = "kvm"
    ) -> Optional[Checkpoint]:
        """Boot this run's prefix once and capture a checkpoint.

        The boot stage of the staged planner: executed under a cheap CPU
        model (kvm by default — supported on every platform shape) on
        this run's platform shape and boot type.  Returns None when the
        boot itself fails; the cohort then degrades to full boots.
        """
        if self.kind != "fs":
            return None
        build, kernel_version, image = self._fs_inputs()
        config = SystemConfig(
            cpu_type=boot_cpu,
            num_cpus=self.params["num_cpus"],
            memory_system=self.params["memory_system"],
            memory_tech=self.params["memory_tech"],
            memory_channels=self.params["memory_channels"],
        )
        simulator = Gem5Simulator(build, config)
        checkpoint, _ = simulator.take_boot_checkpoint(
            kernel=kernel_version,
            disk_image=image,
            boot_type=self.params.get("boot_type", "systemd"),
        )
        return checkpoint

    def _run_fs(self, checkpoint_store=None) -> Dict[str, object]:
        build, kernel_version, image = self._fs_inputs()
        config = SystemConfig(
            cpu_type=self.params["cpu_type"],
            num_cpus=self.params["num_cpus"],
            memory_system=self.params["memory_system"],
            memory_tech=self.params["memory_tech"],
            memory_channels=self.params["memory_channels"],
        )
        simulator = Gem5Simulator(build, config)
        restore = self._consult_checkpoint(
            checkpoint_store, kernel_version, image
        )
        result = simulator.run_fs(
            kernel=kernel_version,
            disk_image=image,
            benchmark=self.params.get("benchmark"),
            input_size=self.params.get("input_size"),
            boot_type=self.params.get("boot_type", "systemd"),
            restore_from=restore,
        )
        stats_file_id = self.db.upload_file(
            result.stats_txt().encode("utf-8"),
            filename=f"stats-{self.run_id}.txt",
        )
        return {
            "simulation_status": result.status.value,
            "reason": result.reason,
            "sim_seconds": result.sim_seconds,
            "boot_seconds": result.boot_seconds,
            "workload_seconds": result.workload_seconds,
            "instructions": result.instructions,
            "config": result.config_summary,
            "workload": result.workload_name,
            "stats_file_id": stats_file_id,
            "restored_boot": restore is not None,
            "success": result.status is SimulationStatus.OK,
        }

    def _run_gpu(self) -> Dict[str, object]:
        workload = get_gpu_workload(self.params["workload"])
        config_params = dict(self.params["gpu_config"])
        config = GPUConfig(**config_params)
        device = GPUDevice(config)
        result = device.execute(
            workload.kernel, self.params["register_allocator"]
        )
        stats_file_id = self.db.upload_file(
            result.stats_txt().encode("utf-8"),
            filename=f"stats-{self.run_id}.txt",
        )
        return {
            "simulation_status": "ok",
            "workload": workload.name,
            "suite": workload.suite,
            "register_allocator": result.allocator,
            "shader_ticks": result.shader_ticks,
            "occupancy_per_simd": result.occupancy_per_simd,
            "stats_file_id": stats_file_id,
            "success": True,
        }

    # ------------------------------------------------------------ storage

    def _set_status(
        self, status: RunStatus, results=None, extra=None
    ) -> None:
        chaos.fire(
            "run.status", run_id=self.run_id, status=status.value
        )
        self.status = status
        update = {"$set": {"status": status.value}}
        if results is not None:
            update["$set"]["results"] = results
        if extra:
            update["$set"].update(extra)
        self.db.update_run(self.run_id, update)
        telemetry.get_event_log().emit(
            "run.status", run_id=self.run_id, status=status.value
        )
