"""Pickle-safe job payloads: shipping a run to a worker process.

A :class:`~repro.art.run.Gem5Run` holds a live database handle, so the
run object itself can never cross a process boundary.  What *can* cross
is everything the simulation actually consumes — and the content-addressed
:class:`~repro.art.spec.RunSpec` (PR 4) already enumerates exactly that:
the input artifacts and the canonicalized parameters.  This module builds
a self-contained **payload** from those inputs in the parent (where the
database lives), and executes it in the worker (where no database
exists), returning plain data the parent archives.

Division of labor:

- parent (:func:`payload_for_run` / :func:`envelope_for_run`): resolve
  artifact payloads/metadata into plain dicts; dedup, caching and all
  database writes stay here;
- worker (:func:`execute_run_payload`): rebuild the simulator inputs
  from the payload, simulate, and return ``{"summary", "stats_txt",
  "stats_fingerprint"}`` — the parent uploads the stats blob and updates
  the run document.

Payloads carry an optional ``repeats`` count that re-runs the
(deterministic) simulation and asserts bit-identical statistics each
time — work amplification for benchmarking that doubles as a
determinism check.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro import telemetry
from repro.common.errors import StateError, ValidationError
from repro.common.hashing import sha256_text
from repro.art.artifact import Artifact, load_disk_image
from repro.scheduler.procpool import JobEnvelope, intern_ref
from repro.sim.checkpoint import Checkpoint

#: The dotted-path target every run envelope resolves to in the worker.
RUN_TARGET = "repro.art.procjobs:execute_run_payload"

#: The dotted-path target for a boot-stage checkpoint job.
BOOT_TARGET = "repro.art.procjobs:execute_boot_payload"

#: Payload schema version (payloads cross process boundaries, not
#: release boundaries, but a version makes mismatches loud).
PAYLOAD_VERSION = 1


def payload_for_run(
    run,
    repeats: int = 1,
    restore_from: Optional[Checkpoint] = None,
) -> Dict[str, Any]:
    """Build the self-contained, picklable payload for one run.

    Resolves every artifact reference *now*, in the parent — the worker
    never sees the database.  ``repeats`` re-runs the simulation that
    many times in the worker, asserting identical stats each time.
    ``restore_from`` makes the worker restore a boot checkpoint instead
    of booting (the planner's variant-stage fan-out).
    """
    if repeats < 1:
        raise ValidationError("repeats must be >= 1")
    payload: Dict[str, Any] = {
        "version": PAYLOAD_VERSION,
        "kind": run.kind,
        "run_id": run.run_id,
        "fingerprint": run.fingerprint,
        "params": dict(run.params),
        "repeats": repeats,
    }
    if run.kind == "fs":
        gem5 = Artifact.load(run.db, run.artifacts["gem5"])
        kernel = Artifact.load(run.db, run.artifacts["linux_binary"])
        disk = Artifact.load(run.db, run.artifacts["disk_image"])
        payload["build"] = {
            "version": gem5.metadata.get("version", "20.1.0.4"),
            "isa": gem5.metadata.get("isa", "X86"),
            "variant": gem5.metadata.get("variant", "opt"),
        }
        payload["kernel_version"] = kernel.metadata["kernel_version"]
        payload["disk_image"] = load_disk_image(disk).to_dict()
        if restore_from is not None:
            payload["restore_from"] = restore_from.to_dict()
    elif run.kind == "gpu":
        if restore_from is not None:
            raise ValidationError("only fs runs restore boot checkpoints")
        # params alone describe a GPU run (workload is a catalog key)
    else:
        raise ValidationError(f"unknown run kind {run.kind!r}")
    return payload


def _interned_payload(
    run, payload: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Replace the payload's bulk values with :func:`intern_ref` s.

    Returns ``(payload', shared)`` folded into one dict under the keys
    the envelope needs, or None when the payload has nothing worth
    interning.  The disk image tree dominates an fs payload's pickled
    size and is identical across a sweep; the checkpoint document
    repeats across every variant of a prefix.  Both are content-hashed
    already, which is what makes the intern key free.
    """
    shared: Dict[str, Any] = {}
    payload = dict(payload)
    if "disk_image" in payload:
        disk = Artifact.load(run.db, run.artifacts["disk_image"])
        shared[disk.hash] = payload["disk_image"]
        payload["disk_image"] = intern_ref(disk.hash)
    restore = payload.get("restore_from")
    if restore is not None:
        shared[restore["checkpoint_id"]] = restore
        payload["restore_from"] = intern_ref(restore["checkpoint_id"])
    if not shared:
        return None
    return {"payload": payload, "shared": shared}


def envelope_for_run(
    run,
    repeats: int = 1,
    with_telemetry: Optional[bool] = None,
    restore_from: Optional[Checkpoint] = None,
    intern: bool = True,
) -> JobEnvelope:
    """Wrap a run's payload in a process-pool envelope.

    The envelope's ``task_id`` is the run's instance id and its
    ``fingerprint`` the run's content identity, so pool telemetry and
    lease events correlate with run documents without a join table.
    When ``with_telemetry`` is unset, the worker records telemetry
    exactly when the parent currently does.  ``intern`` (default on)
    ships the bulk payload values — disk image tree, checkpoint
    document — through the pool's content-hash intern cache, so each
    worker receives them at most once across the whole sweep.
    """
    telemetry_on = (
        telemetry.enabled() if with_telemetry is None else with_telemetry
    )
    payload = payload_for_run(
        run, repeats=repeats, restore_from=restore_from
    )
    shared: Dict[str, Any] = {}
    if intern:
        interned = _interned_payload(run, payload)
        if interned is not None:
            payload = interned["payload"]
            shared = interned["shared"]
    return JobEnvelope(
        target=RUN_TARGET,
        args=(payload,),
        task_id=run.run_id,
        fingerprint=run.fingerprint,
        telemetry=telemetry_on,
        shared=shared,
    )


def boot_payload_for_run(
    run, boot_cpu: str = "kvm"
) -> Dict[str, Any]:
    """Build the boot-stage payload for one prefix's checkpoint job.

    ``run`` is any representative of the prefix cohort: the payload
    carries only the boot-determining subset (kernel, disk image,
    platform shape, boot type) plus ``boot_cpu`` — the cheap CPU model
    the boot executes under (kvm by default, which the fault model
    supports on every platform shape).
    """
    if run.kind != "fs":
        raise ValidationError("only fs runs have a boot stage")
    params = dict(run.params)
    gem5 = Artifact.load(run.db, run.artifacts["gem5"])
    kernel = Artifact.load(run.db, run.artifacts["linux_binary"])
    disk = Artifact.load(run.db, run.artifacts["disk_image"])
    return {
        "version": PAYLOAD_VERSION,
        "kind": "fs",
        "run_id": run.run_id,
        "prefix": run.prefix,
        "build": {
            "version": gem5.metadata.get("version", "20.1.0.4"),
            "isa": gem5.metadata.get("isa", "X86"),
            "variant": gem5.metadata.get("variant", "opt"),
        },
        "kernel_version": kernel.metadata["kernel_version"],
        "disk_image": load_disk_image(disk).to_dict(),
        "params": {
            "cpu_type": boot_cpu,
            "num_cpus": params["num_cpus"],
            "memory_system": params["memory_system"],
            "memory_tech": params["memory_tech"],
            "memory_channels": params["memory_channels"],
            "boot_type": params.get("boot_type", "systemd"),
        },
    }


def envelope_for_boot(
    run,
    boot_cpu: str = "kvm",
    with_telemetry: Optional[bool] = None,
    intern: bool = True,
) -> JobEnvelope:
    """Wrap a prefix cohort's boot job in a process-pool envelope."""
    telemetry_on = (
        telemetry.enabled() if with_telemetry is None else with_telemetry
    )
    payload = boot_payload_for_run(run, boot_cpu=boot_cpu)
    shared: Dict[str, Any] = {}
    if intern:
        disk = Artifact.load(run.db, run.artifacts["disk_image"])
        shared[disk.hash] = payload["disk_image"]
        payload = dict(payload, disk_image=intern_ref(disk.hash))
    return JobEnvelope(
        target=BOOT_TARGET,
        args=(payload,),
        task_id=f"boot-{run.prefix}",
        fingerprint=run.prefix or "",
        telemetry=telemetry_on,
        shared=shared,
    )


def execute_run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point: simulate a payload, return plain data.

    Imported by dotted path inside a spawned worker process.  Runs the
    simulation ``payload["repeats"]`` times and fails loudly if any
    repeat produces different statistics — a deterministic simulator is
    part of the reproducibility contract and process isolation is the
    best place to catch violations.
    """
    kind = payload.get("kind")
    if kind == "fs":
        # Hoisted out of the repeat loop: the image deserialization (and
        # its memoized content hash), the checkpoint rebuild and the
        # simulator construction are identical for every repeat of a
        # deterministic simulation.
        from repro.vfs.image import DiskImage

        image = DiskImage.from_dict(payload["disk_image"])
        restore = None
        if payload.get("restore_from") is not None:
            restore = Checkpoint.from_dict(payload["restore_from"])
        simulator = _fs_simulator(payload)

        def execute(p):
            return _execute_fs(p, simulator, image, restore)

    elif kind == "gpu":
        execute = _execute_gpu
    else:
        raise ValidationError(f"unknown payload kind {kind!r}")
    repeats = int(payload.get("repeats", 1))
    summary, result = execute(payload)
    stats_txt = result.stats_txt()
    fingerprint = sha256_text(stats_txt)
    # Repeats compare raw stats dicts — equivalent to comparing the
    # rendered text (stats_txt derives from stats deterministically)
    # without paying serialization+hash per repeat.
    for _ in range(repeats - 1):
        _, again = execute(payload)
        if again.stats != result.stats:
            raise StateError(
                f"non-deterministic simulation: run {payload['run_id']} "
                "produced different stats on repeat"
            )
    return {
        "summary": summary,
        "stats_txt": stats_txt,
        "stats_fingerprint": fingerprint,
        "repeats": repeats,
    }


def execute_boot_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side boot stage: boot once, return the checkpoint.

    Imported by dotted path inside a spawned worker process.  Returns
    ``{"checkpoint": dict-or-None, "summary": {...}}``; a boot that
    fails the fault model yields no checkpoint and the cohort degrades
    to full boots — degradation, never escalation.
    """
    from repro.vfs.image import DiskImage

    params = payload["params"]
    simulator = _fs_simulator(payload)
    image = DiskImage.from_dict(payload["disk_image"])
    checkpoint, result = simulator.take_boot_checkpoint(
        kernel=payload["kernel_version"],
        disk_image=image,
        boot_type=params.get("boot_type", "systemd"),
    )
    return {
        "prefix": payload.get("prefix"),
        "checkpoint": None if checkpoint is None else checkpoint.to_dict(),
        "summary": {
            "simulation_status": result.status.value,
            "reason": result.reason,
            "boot_seconds": result.boot_seconds,
            "instructions": result.instructions,
        },
    }


def _fs_simulator(payload: Dict[str, Any]):
    """Build the simulator a payload describes (once per envelope)."""
    from repro.sim.buildinfo import Gem5Build
    from repro.sim.config import SystemConfig
    from repro.sim.simulator import Gem5Simulator

    params = payload["params"]
    build = Gem5Build(**payload["build"])
    config = SystemConfig(
        cpu_type=params["cpu_type"],
        num_cpus=params["num_cpus"],
        memory_system=params["memory_system"],
        memory_tech=params["memory_tech"],
        memory_channels=params["memory_channels"],
    )
    return Gem5Simulator(build, config)


def _execute_fs(
    payload: Dict[str, Any],
    simulator,
    image,
    restore: Optional[Checkpoint] = None,
):
    from repro.sim.simulator import SimulationStatus

    params = payload["params"]
    result = simulator.run_fs(
        kernel=payload["kernel_version"],
        disk_image=image,
        benchmark=params.get("benchmark"),
        input_size=params.get("input_size"),
        boot_type=params.get("boot_type", "systemd"),
        restore_from=restore,
    )
    summary = {
        "simulation_status": result.status.value,
        "reason": result.reason,
        "sim_seconds": result.sim_seconds,
        "boot_seconds": result.boot_seconds,
        "workload_seconds": result.workload_seconds,
        "instructions": result.instructions,
        "config": result.config_summary,
        "workload": result.workload_name,
        "restored_boot": restore is not None,
        "success": result.status is SimulationStatus.OK,
    }
    return summary, result


def _execute_gpu(payload: Dict[str, Any]):
    from repro.gpu.config import GPUConfig
    from repro.gpu.device import GPUDevice
    from repro.gpu.workloads import get_gpu_workload

    params = payload["params"]
    workload = get_gpu_workload(params["workload"])
    config = GPUConfig(**dict(params["gpu_config"]))
    device = GPUDevice(config)
    result = device.execute(workload.kernel, params["register_allocator"])
    summary = {
        "simulation_status": "ok",
        "workload": workload.name,
        "suite": workload.suite,
        "register_allocator": result.allocator,
        "shader_ticks": result.shader_ticks,
        "occupancy_per_simd": result.occupancy_per_simd,
        "success": True,
    }
    return summary, result
