"""Pickle-safe job payloads: shipping a run to a worker process.

A :class:`~repro.art.run.Gem5Run` holds a live database handle, so the
run object itself can never cross a process boundary.  What *can* cross
is everything the simulation actually consumes — and the content-addressed
:class:`~repro.art.spec.RunSpec` (PR 4) already enumerates exactly that:
the input artifacts and the canonicalized parameters.  This module builds
a self-contained **payload** from those inputs in the parent (where the
database lives), and executes it in the worker (where no database
exists), returning plain data the parent archives.

Division of labor:

- parent (:func:`payload_for_run` / :func:`envelope_for_run`): resolve
  artifact payloads/metadata into plain dicts; dedup, caching and all
  database writes stay here;
- worker (:func:`execute_run_payload`): rebuild the simulator inputs
  from the payload, simulate, and return ``{"summary", "stats_txt",
  "stats_fingerprint"}`` — the parent uploads the stats blob and updates
  the run document.

Payloads carry an optional ``repeats`` count that re-runs the
(deterministic) simulation and asserts bit-identical statistics each
time — work amplification for benchmarking that doubles as a
determinism check.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro import telemetry
from repro.common.errors import StateError, ValidationError
from repro.common.hashing import sha256_text
from repro.art.artifact import Artifact, load_disk_image
from repro.scheduler.procpool import JobEnvelope

#: The dotted-path target every run envelope resolves to in the worker.
RUN_TARGET = "repro.art.procjobs:execute_run_payload"

#: Payload schema version (payloads cross process boundaries, not
#: release boundaries, but a version makes mismatches loud).
PAYLOAD_VERSION = 1


def payload_for_run(run, repeats: int = 1) -> Dict[str, Any]:
    """Build the self-contained, picklable payload for one run.

    Resolves every artifact reference *now*, in the parent — the worker
    never sees the database.  ``repeats`` re-runs the simulation that
    many times in the worker, asserting identical stats each time.
    """
    if repeats < 1:
        raise ValidationError("repeats must be >= 1")
    payload: Dict[str, Any] = {
        "version": PAYLOAD_VERSION,
        "kind": run.kind,
        "run_id": run.run_id,
        "fingerprint": run.fingerprint,
        "params": dict(run.params),
        "repeats": repeats,
    }
    if run.kind == "fs":
        gem5 = Artifact.load(run.db, run.artifacts["gem5"])
        kernel = Artifact.load(run.db, run.artifacts["linux_binary"])
        disk = Artifact.load(run.db, run.artifacts["disk_image"])
        payload["build"] = {
            "version": gem5.metadata.get("version", "20.1.0.4"),
            "isa": gem5.metadata.get("isa", "X86"),
            "variant": gem5.metadata.get("variant", "opt"),
        }
        payload["kernel_version"] = kernel.metadata["kernel_version"]
        payload["disk_image"] = load_disk_image(disk).to_dict()
    elif run.kind == "gpu":
        pass  # params alone describe a GPU run (workload is a catalog key)
    else:
        raise ValidationError(f"unknown run kind {run.kind!r}")
    return payload


def envelope_for_run(
    run,
    repeats: int = 1,
    with_telemetry: Optional[bool] = None,
) -> JobEnvelope:
    """Wrap a run's payload in a process-pool envelope.

    The envelope's ``task_id`` is the run's instance id and its
    ``fingerprint`` the run's content identity, so pool telemetry and
    lease events correlate with run documents without a join table.
    When ``with_telemetry`` is unset, the worker records telemetry
    exactly when the parent currently does.
    """
    telemetry_on = (
        telemetry.enabled() if with_telemetry is None else with_telemetry
    )
    return JobEnvelope(
        target=RUN_TARGET,
        args=(payload_for_run(run, repeats=repeats),),
        task_id=run.run_id,
        fingerprint=run.fingerprint,
        telemetry=telemetry_on,
    )


def execute_run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point: simulate a payload, return plain data.

    Imported by dotted path inside a spawned worker process.  Runs the
    simulation ``payload["repeats"]`` times and fails loudly if any
    repeat produces different statistics — a deterministic simulator is
    part of the reproducibility contract and process isolation is the
    best place to catch violations.
    """
    kind = payload.get("kind")
    if kind == "fs":
        execute = _execute_fs
    elif kind == "gpu":
        execute = _execute_gpu
    else:
        raise ValidationError(f"unknown payload kind {kind!r}")
    repeats = int(payload.get("repeats", 1))
    summary, stats_txt = execute(payload)
    fingerprint = sha256_text(stats_txt)
    for _ in range(repeats - 1):
        _, again = execute(payload)
        if sha256_text(again) != fingerprint:
            raise StateError(
                f"non-deterministic simulation: run {payload['run_id']} "
                "produced different stats on repeat"
            )
    return {
        "summary": summary,
        "stats_txt": stats_txt,
        "stats_fingerprint": fingerprint,
        "repeats": repeats,
    }


def _execute_fs(payload: Dict[str, Any]):
    from repro.sim.buildinfo import Gem5Build
    from repro.sim.config import SystemConfig
    from repro.sim.simulator import Gem5Simulator, SimulationStatus
    from repro.vfs.image import DiskImage

    params = payload["params"]
    build = Gem5Build(**payload["build"])
    config = SystemConfig(
        cpu_type=params["cpu_type"],
        num_cpus=params["num_cpus"],
        memory_system=params["memory_system"],
        memory_tech=params["memory_tech"],
        memory_channels=params["memory_channels"],
    )
    simulator = Gem5Simulator(build, config)
    image = DiskImage.from_dict(payload["disk_image"])
    result = simulator.run_fs(
        kernel=payload["kernel_version"],
        disk_image=image,
        benchmark=params.get("benchmark"),
        input_size=params.get("input_size"),
        boot_type=params.get("boot_type", "systemd"),
    )
    summary = {
        "simulation_status": result.status.value,
        "reason": result.reason,
        "sim_seconds": result.sim_seconds,
        "boot_seconds": result.boot_seconds,
        "workload_seconds": result.workload_seconds,
        "instructions": result.instructions,
        "config": result.config_summary,
        "workload": result.workload_name,
        "success": result.status is SimulationStatus.OK,
    }
    return summary, result.stats_txt()


def _execute_gpu(payload: Dict[str, Any]):
    from repro.gpu.config import GPUConfig
    from repro.gpu.device import GPUDevice
    from repro.gpu.workloads import get_gpu_workload

    params = payload["params"]
    workload = get_gpu_workload(params["workload"])
    config = GPUConfig(**dict(params["gpu_config"]))
    device = GPUDevice(config)
    result = device.execute(workload.kernel, params["register_allocator"])
    summary = {
        "simulation_status": "ok",
        "workload": workload.name,
        "suite": workload.suite,
        "register_allocator": result.allocator,
        "shader_ticks": result.shader_ticks,
        "occupancy_per_simd": result.occupancy_per_simd,
        "success": True,
    }
    return summary, result.stats_txt()
