"""A collection of documents with Mongo-like operations.

Supports the operations the artifact layer relies on: insert with duplicate
protection via unique indexes, querying with the operator language from
:mod:`repro.db.query`, field updates, and deletion.  Documents are plain
dicts; a copy is stored and copies are returned so callers can never mutate
the database behind its back.

Two kinds of indexes serve ``find()`` without scanning:

- **unique** (:meth:`Collection.create_unique_index`) — field → doc id,
  doubling as the uniqueness constraint;
- **secondary non-unique** (:meth:`Collection.create_index`) — field →
  set of doc ids, multikey over list values (each element is indexed, as
  in Mongo), serving equality and scalar ``$in`` fast paths.

When the collection is bound to a durable store (a file-backed database),
every acknowledged mutation is appended to the write-ahead log *before*
it is applied in memory — if logging fails, the caller sees the error and
the collection is unchanged, so memory never runs ahead of disk.
"""

from __future__ import annotations

import copy
import threading
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:
    from repro.db.engine.segments import CollectionStore

from repro.common.errors import DuplicateError, ValidationError
from repro.common.ids import new_uuid
from repro.db.query import (
    MISSING as _MISSING,
    get_path,
    matches,
    project,
    sort_documents,
)


class Collection:
    """An ordered set of documents with unique-index enforcement."""

    def __init__(
        self, name: str, store: Optional["CollectionStore"] = None
    ):
        self.name = name
        self._documents: Dict[str, Dict[str, Any]] = {}
        #: field → {index key → doc id}.  The map *is* the index: it
        #: enforces uniqueness at O(1) per write and serves equality
        #: lookups on the field without scanning the collection.
        self._unique_indexes: Dict[str, Dict[Any, str]] = {}
        #: field → {index key → set of doc ids}: non-unique secondary
        #: indexes; list values index every element (multikey).
        self._secondary_indexes: Dict[str, Dict[Any, Set[str]]] = {}
        #: Durable op log (a CollectionStore) or None for memory-only.
        self._store = store
        self._lock = threading.RLock()

    # ------------------------------------------------------------- indexes

    def create_unique_index(self, field: str) -> None:
        """Enforce that no two documents share a value for ``field``.

        Documents missing the field are exempt (sparse-index semantics),
        which is what lets non-repository artifacts omit git info.
        """
        with self._lock:
            known = field in self._unique_indexes
            seen: Dict[Any, str] = {}
            for doc_id, doc in self._documents.items():
                value = get_path(doc, field)
                if value is _MISSING or _unset(value):
                    continue
                key = _index_key(value)
                if key in seen:
                    raise DuplicateError(
                        f"existing documents violate unique index on "
                        f"{field!r}"
                    )
                seen[key] = doc_id
            if self._store is not None and not known:
                self._store.log_index(field, unique=True)
            self._unique_indexes[field] = seen

    def create_index(self, field: str) -> None:
        """Build a non-unique secondary index over ``field``.

        Serves ``find()`` equality and scalar ``$in`` queries from the
        index instead of a collection scan.  List values are multikey:
        each element is indexed, so equality-with-element matches keep
        working through the fast path.  Idempotent.
        """
        with self._lock:
            if field in self._secondary_indexes:
                return
            index: Dict[Any, Set[str]] = {}
            for doc_id, doc in self._documents.items():
                for key in self._entry_keys(doc, field):
                    index.setdefault(key, set()).add(doc_id)
            if self._store is not None:
                self._store.log_index(field, unique=False)
            self._secondary_indexes[field] = index

    def index_fields(self) -> Dict[str, str]:
        """{field: "unique" | "secondary"} for every index."""
        with self._lock:
            fields = {f: "unique" for f in self._unique_indexes}
            fields.update(
                (f, "secondary") for f in self._secondary_indexes
            )
            return fields

    @staticmethod
    def _entry_keys(doc: Dict[str, Any], field: str) -> List[Any]:
        """Index keys a document contributes to a secondary index."""
        value = get_path(doc, field)
        if value is _MISSING or _unset(value):
            return []
        keys = [_index_key(value)]
        if isinstance(value, list):
            keys.extend(_index_key(item) for item in value)
        return keys

    def _check_unique(
        self, document: Dict[str, Any], ignore_id: Optional[str] = None
    ) -> None:
        for field, index in self._unique_indexes.items():
            value = get_path(document, field)
            if value is _MISSING or _unset(value):
                continue
            holder = index.get(_index_key(value))
            if holder is not None and holder != ignore_id:
                raise DuplicateError(
                    f"duplicate value for unique field {field!r}: "
                    f"{value!r}"
                )

    def _index_add(self, document: Dict[str, Any]) -> None:
        for field, index in self._unique_indexes.items():
            value = get_path(document, field)
            if value is _MISSING or _unset(value):
                continue
            index[_index_key(value)] = document["_id"]
        for field, sets in self._secondary_indexes.items():
            for key in self._entry_keys(document, field):
                sets.setdefault(key, set()).add(document["_id"])

    def _index_remove(self, document: Dict[str, Any]) -> None:
        for field, index in self._unique_indexes.items():
            value = get_path(document, field)
            if value is _MISSING or _unset(value):
                continue
            key = _index_key(value)
            if index.get(key) == document["_id"]:
                del index[key]
        for field, sets in self._secondary_indexes.items():
            for key in self._entry_keys(document, field):
                bucket = sets.get(key)
                if bucket is None:
                    continue
                bucket.discard(document["_id"])
                if not bucket:
                    del sets[key]

    def _candidates(self, query: Dict[str, Any]):
        """The documents a query can possibly match, cheaply.

        Equality on ``_id`` or on a uniquely-indexed field pins the
        search to at most one document; equality or scalar ``$in`` on a
        secondary-indexed field pins it to the index buckets.  Anything
        else falls back to a full scan.  Every candidate is still
        filtered through ``matches``, so this is purely an access-path
        decision.
        """
        for field in ("_id", *self._unique_indexes):
            if field not in query:
                continue
            value = query[field]
            if isinstance(value, (dict, list)) or _unset(value):
                continue  # operator / non-scalar / sparse: no fast path
            if field == "_id":
                doc_id = value if value in self._documents else None
            else:
                doc_id = self._unique_indexes[field].get(
                    _index_key(value)
                )
            if doc_id is None or doc_id not in self._documents:
                return []
            return [self._documents[doc_id]]
        hit = self._secondary_candidates(query)
        if hit is not None:
            return hit
        return self._documents.values()

    def _secondary_candidates(
        self, query: Dict[str, Any]
    ) -> Optional[List[Dict[str, Any]]]:
        for field, index in self._secondary_indexes.items():
            if field not in query:
                continue
            condition = query[field]
            keys = self._condition_keys(condition)
            if keys is None:
                continue
            ids: Set[str] = set()
            for key in keys:
                ids.update(index.get(key, ()))
            return [
                self._documents[doc_id]
                for doc_id in ids
                if doc_id in self._documents
            ]
        return None

    @staticmethod
    def _condition_keys(condition: Any) -> Optional[List[Any]]:
        """Index keys answering a field condition, or None for no fast
        path (operators other than ``$in``, lists, unset values)."""
        if isinstance(condition, list) or _unset(condition):
            return None
        if isinstance(condition, dict):
            if set(condition) != {"$in"}:
                return None
            values = condition["$in"]
            if not isinstance(values, (list, tuple)):
                return None  # matches() raises the ValidationError
            if any(_unset(value) for value in values):
                return None  # sparse values are not indexed; scan
            return [_index_key(value) for value in values]
        return [_index_key(condition)]

    # -------------------------------------------------------------- insert

    def insert_one(self, document: Dict[str, Any]) -> str:
        """Insert a document, assigning ``_id`` if absent; returns the id.

        On a durable collection the insert is WAL-logged before it is
        applied: when ``insert_one`` returns, the write survives a crash
        (to the extent of the configured durability mode).
        """
        if not isinstance(document, dict):
            raise ValidationError("documents must be dicts")
        with self._lock:
            doc = copy.deepcopy(document)
            doc_id = doc.setdefault("_id", new_uuid())
            if doc_id in self._documents:
                raise DuplicateError(f"duplicate _id: {doc_id}")
            self._check_unique(doc)
            if self._store is not None:
                self._store.log_insert(doc)
            self._documents[doc_id] = doc
            self._index_add(doc)
            return doc_id

    def insert_many(self, documents: Sequence[Dict[str, Any]]) -> List[str]:
        return [self.insert_one(doc) for doc in documents]

    # --------------------------------------------------------------- query

    def find(
        self,
        query: Optional[Dict[str, Any]] = None,
        sort: Optional[List[tuple]] = None,
        limit: Optional[int] = None,
        fields: Optional[Sequence[str]] = None,
    ) -> List[Dict[str, Any]]:
        """Return copies of all matching documents."""
        query = query or {}
        with self._lock:
            found = [
                copy.deepcopy(doc)
                for doc in self._candidates(query)
                if matches(doc, query)
            ]
        if sort:
            found = sort_documents(found, sort)
        if limit is not None:
            found = found[:limit]
        if fields is not None:
            found = [project(doc, fields) for doc in found]
        return found

    def find_one(
        self, query: Optional[Dict[str, Any]] = None, **kwargs
    ) -> Optional[Dict[str, Any]]:
        results = self.find(query, limit=1, **kwargs)
        return results[0] if results else None

    def count(self, query: Optional[Dict[str, Any]] = None) -> int:
        query = query or {}
        with self._lock:
            return sum(
                1 for doc in self._candidates(query) if matches(doc, query)
            )

    def distinct(
        self, field: str, query: Optional[Dict[str, Any]] = None
    ) -> List[Any]:
        """Return the sorted distinct values of ``field`` over matches."""
        values = []
        for doc in self.find(query):
            value = get_path(doc, field)
            if value is not _MISSING and value not in values:
                values.append(value)
        try:
            return sorted(values)
        except TypeError:
            return values

    # -------------------------------------------------------------- update

    def update_one(
        self, query: Dict[str, Any], update: Dict[str, Any]
    ) -> bool:
        """Apply ``$set``/``$inc``/``$push``/``$unset`` to the first match.

        Returns True when a document was updated.
        """
        with self._lock:
            for doc in self._candidates(query):
                if matches(doc, query):
                    candidate = copy.deepcopy(doc)
                    _apply_update(candidate, update)
                    self._check_unique(candidate, ignore_id=doc["_id"])
                    if self._store is not None:
                        self._store.log_replace(candidate)
                    self._index_remove(doc)
                    doc.clear()
                    doc.update(candidate)
                    self._index_add(doc)
                    return True
            return False

    def update_many(
        self, query: Dict[str, Any], update: Dict[str, Any]
    ) -> int:
        with self._lock:
            count = 0
            for doc in self._documents.values():
                if matches(doc, query):
                    candidate = copy.deepcopy(doc)
                    _apply_update(candidate, update)
                    self._check_unique(candidate, ignore_id=doc["_id"])
                    if self._store is not None:
                        self._store.log_replace(candidate)
                    self._index_remove(doc)
                    doc.clear()
                    doc.update(candidate)
                    self._index_add(doc)
                    count += 1
            return count

    def replace_one(
        self, query: Dict[str, Any], document: Dict[str, Any]
    ) -> bool:
        with self._lock:
            for doc in self._candidates(query):
                if matches(doc, query):
                    doc_id = doc["_id"]
                    replacement = copy.deepcopy(document)
                    replacement["_id"] = doc_id
                    self._check_unique(replacement, ignore_id=doc_id)
                    if self._store is not None:
                        self._store.log_replace(replacement)
                    self._index_remove(doc)
                    self._documents[doc_id] = replacement
                    self._index_add(replacement)
                    return True
            return False

    # -------------------------------------------------------------- delete

    def delete_one(self, query: Dict[str, Any]) -> bool:
        with self._lock:
            for doc in self._candidates(query):
                if matches(doc, query):
                    if self._store is not None:
                        self._store.log_delete(doc["_id"])
                    self._index_remove(doc)
                    del self._documents[doc["_id"]]
                    return True
            return False

    def delete_many(self, query: Dict[str, Any]) -> int:
        with self._lock:
            doomed = [
                doc
                for doc in self._documents.values()
                if matches(doc, query)
            ]
            for doc in doomed:
                if self._store is not None:
                    self._store.log_delete(doc["_id"])
                self._index_remove(doc)
                del self._documents[doc["_id"]]
            return len(doomed)

    # ----------------------------------------------------------- recovery

    def load_replayed(
        self,
        documents: Dict[str, Dict[str, Any]],
        indexes: Sequence[Tuple[str, bool]] = (),
    ) -> None:
        """Adopt recovered state wholesale, without re-logging it.

        Used by the database right after engine replay: the documents
        and index definitions came *from* the WAL/segments, so pushing
        them back through the logging insert path would double-write
        every record on every open.
        """
        with self._lock:
            store = self._store
            self._store = None  # suppress logging while rebuilding
            try:
                self._documents = {
                    doc_id: doc for doc_id, doc in documents.items()
                }
                for field, unique in indexes:
                    if unique:
                        self.create_unique_index(field)
                    else:
                        self.create_index(field)
            finally:
                self._store = store

    # ---------------------------------------------------------------- misc

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        with self._lock:
            snapshot = [copy.deepcopy(d) for d in self._documents.values()]
        return iter(snapshot)

    def all_documents(self) -> List[Dict[str, Any]]:
        """Snapshot of every document (copies), in insertion order."""
        return list(iter(self))


def _apply_update(document: Dict[str, Any], update: Dict[str, Any]) -> None:
    if not update or not all(key.startswith("$") for key in update):
        raise ValidationError(
            "updates must use operators such as $set / $inc / $push"
        )
    for op, changes in update.items():
        if op == "$set":
            for path, value in changes.items():
                _set_path(document, path, copy.deepcopy(value))
        elif op == "$inc":
            for path, amount in changes.items():
                current = get_path(document, path)
                base = 0 if current is _MISSING else current
                _set_path(document, path, base + amount)
        elif op == "$push":
            for path, value in changes.items():
                current = get_path(document, path)
                if current is _MISSING:
                    current = []
                if not isinstance(current, list):
                    raise ValidationError(f"$push target {path!r} not a list")
                current = list(current)
                current.append(copy.deepcopy(value))
                _set_path(document, path, current)
        elif op == "$unset":
            for path in changes:
                _unset_path(document, path)
        else:
            raise ValidationError(f"unknown update operator: {op}")


def _set_path(document: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    target = document
    for part in parts[:-1]:
        nxt = target.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            target[part] = nxt
        target = nxt
    target[parts[-1]] = value


def _unset_path(document: Dict[str, Any], path: str) -> None:
    parts = path.split(".")
    target = document
    for part in parts[:-1]:
        target = target.get(part)
        if not isinstance(target, dict):
            return
    target.pop(parts[-1], None)


def _unset(value: Any) -> bool:
    """Treat None and empty dicts as absent for sparse unique indexes."""
    return value is None or value == {}


def _index_key(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _index_key(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_index_key(v) for v in value)
    return value
