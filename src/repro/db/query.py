"""Mongo-style query evaluation.

Implements the subset of the MongoDB query language that gem5art-style
workflows use: implicit equality, comparison/membership operators, logical
combinators, existence checks, regular expressions, and dotted-path field
access.  The evaluator is pure (no collection state), which makes it easy to
property-test.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Sequence

from repro.common.errors import ValidationError

MISSING = object()
_MISSING = MISSING  # internal alias


def get_path(document: Dict[str, Any], path: str) -> Any:
    """Resolve a dotted path inside a document; returns a MISSING sentinel
    (internal) when any component is absent."""
    value: Any = document
    for part in path.split("."):
        if isinstance(value, dict) and part in value:
            value = value[part]
        else:
            return _MISSING
    return value


def _compare(op: str, actual: Any, expected: Any) -> bool:
    if actual is _MISSING:
        return False
    try:
        if op == "$gt":
            return actual > expected
        if op == "$gte":
            return actual >= expected
        if op == "$lt":
            return actual < expected
        if op == "$lte":
            return actual <= expected
    except TypeError:
        return False
    raise ValidationError(f"unknown comparison operator: {op}")


def _match_condition(actual: Any, condition: Any) -> bool:
    """Match a single field against its condition (a literal or an operator
    document such as ``{"$gt": 3}``)."""
    if isinstance(condition, dict) and any(
        key.startswith("$") for key in condition
    ):
        for op, expected in condition.items():
            if op == "$eq":
                if not _values_equal(actual, expected):
                    return False
            elif op == "$ne":
                if _values_equal(actual, expected):
                    return False
            elif op in ("$gt", "$gte", "$lt", "$lte"):
                if not _compare(op, actual, expected):
                    return False
            elif op == "$in":
                if not _membership(actual, expected):
                    return False
            elif op == "$nin":
                if _membership(actual, expected):
                    return False
            elif op == "$exists":
                present = actual is not _MISSING
                if bool(expected) != present:
                    return False
            elif op == "$regex":
                if actual is _MISSING or not isinstance(actual, str):
                    return False
                if re.search(expected, actual) is None:
                    return False
            elif op == "$size":
                if not isinstance(actual, list):
                    return False
                if len(actual) != expected:
                    return False
            elif op == "$all":
                if not isinstance(expected, (list, tuple)):
                    raise ValidationError("$all requires a sequence")
                if not isinstance(actual, list):
                    return False
                if not all(item in actual for item in expected):
                    return False
            elif op == "$not":
                if _match_condition(actual, expected):
                    return False
            else:
                raise ValidationError(f"unknown query operator: {op}")
        return True
    return _values_equal(actual, condition)


def _membership(actual: Any, expected: Sequence[Any]) -> bool:
    if not isinstance(expected, (list, tuple, set)):
        raise ValidationError("$in/$nin requires a sequence")
    if actual is _MISSING:
        return False
    # Mongo semantics: an array field matches if any element matches.
    if isinstance(actual, list):
        return any(e in expected for e in actual) or actual in [
            list(x) for x in expected if isinstance(x, (list, tuple))
        ]
    return actual in expected


def _values_equal(actual: Any, expected: Any) -> bool:
    if actual is _MISSING:
        return expected is _MISSING
    # Mongo semantics: equality on an array field matches element-wise OR
    # by membership of the scalar.
    if isinstance(actual, list) and not isinstance(expected, list):
        return expected in actual
    return actual == expected


def matches(document: Dict[str, Any], query: Dict[str, Any]) -> bool:
    """Return ``True`` when ``document`` satisfies ``query``.

    An empty query matches every document, mirroring MongoDB.
    """
    if not isinstance(query, dict):
        raise ValidationError("query must be a dict")
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise ValidationError(f"unknown top-level operator: {key}")
        else:
            if not _match_condition(get_path(document, key), condition):
                return False
    return True


def sort_documents(
    documents: Iterable[Dict[str, Any]], spec: List[tuple]
) -> List[Dict[str, Any]]:
    """Sort documents by a list of (field, direction) pairs.

    Direction is 1 for ascending, -1 for descending, as in pymongo.  Missing
    fields sort first on ascending order.
    """
    result = list(documents)
    for field, direction in reversed(spec):
        if direction not in (1, -1):
            raise ValidationError("sort direction must be 1 or -1")

        def key(doc, field=field):
            value = get_path(doc, field)
            missing = value is _MISSING
            if missing:
                return (0, "")
            return (1, value)

        result.sort(key=key, reverse=(direction == -1))
    return result


def project(
    document: Dict[str, Any], fields: Sequence[str]
) -> Dict[str, Any]:
    """Return a copy of the document restricted to the given top-level or
    dotted fields (plus ``_id``, which Mongo always includes)."""
    output: Dict[str, Any] = {}
    if "_id" in document:
        output["_id"] = document["_id"]
    for field in fields:
        value = get_path(document, field)
        if value is _MISSING:
            continue
        _set_path(output, field, value)
    return output


def _set_path(document: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    target = document
    for part in parts[:-1]:
        target = target.setdefault(part, {})
    target[parts[-1]] = value
