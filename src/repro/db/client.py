"""URI-based database entry point.

gem5art connects to its database with a URI such as
``mongodb://localhost:27017``.  We keep the ergonomics while supporting the
backends available offline:

- ``memory://`` — an ephemeral in-memory database,
- ``file:///some/dir`` — a database persisted as JSON-lines + blob files.
"""

from __future__ import annotations

from urllib.parse import urlparse

from repro.common.errors import ValidationError
from repro.db.database import Database


def connect(uri: str = "memory://", name: str = "artifact_database") -> Database:
    """Open a database identified by URI.

    >>> db = connect("memory://")
    >>> db.collection("artifacts").insert_one({"name": "gem5"})  # doctest: +ELLIPSIS
    '...'
    """
    parsed = urlparse(uri)
    if parsed.scheme == "memory":
        return Database(name=name, root=None)
    if parsed.scheme == "file":
        path = parsed.path
        if not path:
            raise ValidationError(f"file:// URI needs a path: {uri!r}")
        return Database(name=name, root=path)
    raise ValidationError(
        f"unsupported database URI scheme {parsed.scheme!r}; "
        "use memory:// or file:///path"
    )
