"""URI-based database entry point.

gem5art connects to its database with a URI such as
``mongodb://localhost:27017``.  We keep the ergonomics while supporting the
backends available offline:

- ``memory://`` — an ephemeral in-memory database,
- ``file:///some/dir`` — a database persisted through the storage engine
  (WAL + segments) with blobs in a sharded FileStore.

A ``file://`` URI accepts a ``durability`` query parameter selecting how
eagerly acknowledged writes are fsynced::

    connect("file:///var/lib/repro?durability=strict")

with ``none``, ``batch`` (default) or ``strict`` as values.
"""

from __future__ import annotations

from urllib.parse import parse_qs, urlparse

from repro.common.errors import ValidationError
from repro.db.database import Database
from repro.db.engine import DURABILITY_MODES


def connect(uri: str = "memory://", name: str = "artifact_database") -> Database:
    """Open a database identified by URI.

    >>> db = connect("memory://")
    >>> db.collection("artifacts").insert_one({"name": "gem5"})  # doctest: +ELLIPSIS
    '...'
    """
    parsed = urlparse(uri)
    if parsed.scheme == "memory":
        return Database(name=name, root=None)
    if parsed.scheme == "file":
        path = parsed.path
        if not path:
            raise ValidationError(f"file:// URI needs a path: {uri!r}")
        durability = "batch"
        for key, values in parse_qs(parsed.query).items():
            if key != "durability":
                raise ValidationError(
                    f"unknown database URI parameter {key!r}"
                )
            durability = values[-1]
            if durability not in DURABILITY_MODES:
                raise ValidationError(
                    f"unknown durability {durability!r}; "
                    f"one of {DURABILITY_MODES}"
                )
        return Database(name=name, root=path, durability=durability)
    raise ValidationError(
        f"unsupported database URI scheme {parsed.scheme!r}; "
        "use memory:// or file:///path"
    )
