"""A content-addressed blob store — the GridFS substitute.

gem5art uploads every artifact file (disk images, kernels, binaries) into
GridFS keyed by its hash so identical files are stored once.  This store
provides the same contract: ``put`` bytes or a host file and receive a
content id (SHA-256); ``get`` the bytes back; idempotent re-puts.

Blobs live either in memory (``root=None``) or as files named by their
digest under a directory, which doubles as a human-inspectable archive.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional

from repro import chaos
from repro.common.errors import CorruptBlobError, NotFoundError
from repro.common.hashing import sha256_bytes


class FileStore:
    """Content-addressed storage for artifact payloads."""

    def __init__(self, root: Optional[str]):
        self.root = root
        self._memory: Dict[str, bytes] = {}
        self._metadata: Dict[str, Dict] = {}
        self._lock = threading.RLock()
        if root is not None:
            os.makedirs(root, exist_ok=True)

    # ----------------------------------------------------------------- put

    def put_bytes(self, data: bytes, filename: str = None) -> str:
        """Store a byte string; returns its content id.  Idempotent."""
        digest = sha256_bytes(data)
        chaos.fire("filestore.put", digest=digest, filename=filename)
        with self._lock:
            if not self.exists(digest):
                if self.root is None:
                    self._memory[digest] = data
                else:
                    path = self._blob_path(digest)
                    tmp = path + ".tmp"
                    with open(tmp, "wb") as handle:
                        handle.write(data)
                    os.replace(tmp, path)
            meta = self._metadata.setdefault(
                digest, {"length": len(data), "filenames": []}
            )
            if filename and filename not in meta["filenames"]:
                meta["filenames"].append(filename)
        return digest

    def put_file(self, path: str) -> str:
        """Store a host file's content; returns its content id."""
        with open(path, "rb") as handle:
            data = handle.read()
        return self.put_bytes(data, filename=os.path.basename(path))

    # ----------------------------------------------------------------- get

    def get_bytes(self, digest: str) -> bytes:
        """Read a blob back, verifying it still hashes to its id.

        Content addressing makes integrity checkable for free: a blob
        whose bytes no longer produce ``digest`` was corrupted on disk
        (truncation, bit rot, an out-of-band overwrite) and is reported
        as :class:`CorruptBlobError` rather than silently returned.
        """
        chaos.fire("filestore.get", digest=digest)
        with self._lock:
            if self.root is None:
                if digest not in self._memory:
                    raise NotFoundError(f"no blob with id {digest}")
                data = self._memory[digest]
            else:
                path = self._blob_path(digest)
                if not os.path.isfile(path):
                    raise NotFoundError(f"no blob with id {digest}")
                with open(path, "rb") as handle:
                    data = handle.read()
        actual = sha256_bytes(data)
        if actual != digest:
            raise CorruptBlobError(
                f"blob {digest} is corrupt: content hashes to {actual} "
                f"({len(data)} bytes on disk)"
            )
        return data

    def download_to(self, digest: str, destination: str) -> None:
        """Copy a blob out to a host path (gem5art's downloadFile)."""
        data = self.get_bytes(digest)
        os.makedirs(os.path.dirname(destination) or ".", exist_ok=True)
        with open(destination, "wb") as handle:
            handle.write(data)

    # -------------------------------------------------------------- delete

    def delete(self, digest: str) -> bool:
        """Drop a blob (and its metadata) from the store.

        Content addressing makes deletion safe for corruption recovery:
        a blob whose bytes no longer match its digest is garbage, and
        removing it lets the next ``put_bytes`` of the pristine content
        re-populate the same address.  Returns True when a blob existed.
        """
        with self._lock:
            self._metadata.pop(digest, None)
            if self.root is None:
                return self._memory.pop(digest, None) is not None
            path = self._blob_path(digest)
            if not os.path.isfile(path):
                return False
            os.remove(path)
            return True

    # ---------------------------------------------------------------- query

    def exists(self, digest: str) -> bool:
        if self.root is None:
            return digest in self._memory
        return os.path.isfile(self._blob_path(digest))

    def list_ids(self) -> List[str]:
        if self.root is None:
            return sorted(self._memory)
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if not entry.endswith(".tmp")
        )

    def metadata(self, digest: str) -> Dict:
        if not self.exists(digest):
            raise NotFoundError(f"no blob with id {digest}")
        return dict(
            self._metadata.get(digest, {"length": None, "filenames": []})
        )

    def __contains__(self, digest: str) -> bool:
        return self.exists(digest)

    def __len__(self) -> int:
        return len(self.list_ids())

    def _blob_path(self, digest: str) -> str:
        return os.path.join(self.root, digest)
