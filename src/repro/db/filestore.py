"""A content-addressed blob store — the GridFS substitute.

gem5art uploads every artifact file (disk images, kernels, binaries) into
GridFS keyed by its hash so identical files are stored once.  This store
provides the same contract: ``put`` bytes or a host file and receive a
content id (SHA-256); ``get`` the bytes back; idempotent re-puts.

Blobs live either in memory (``root=None``) or on disk **sharded by hash
prefix**: blob ``ab12…`` lives at ``<root>/ab/ab12…``.  Content
addressing makes the first-byte fan-out free — no routing table, the id
*is* the route — and keeps directories at ~1/256th of the store, which
is what lets a million-blob archive survive ``listdir``.  Blobs written
by older releases directly under ``<root>`` are still found, and
:meth:`scrub` migrates them into their shard.

:meth:`scrub` is the bit-rot police: it re-hashes every blob, moves
corrupt ones into ``<root>/quarantine/`` (so a later ``put`` of the
pristine content can repopulate the address), and reports through the
``filestore_scrub_{scanned,repaired,quarantined}_total`` counters.
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
from typing import Dict, List, Optional

from repro import chaos, telemetry
from repro.common.errors import (
    CorruptBlobError,
    NotFoundError,
    ValidationError,
)
from repro.common.hashing import sha256_bytes
from repro.common.ids import new_uuid

_CHUNK_SIZE = 1 << 20
_QUARANTINE_DIR = "quarantine"
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


def _check_digest(digest: str) -> str:
    """Reject anything that is not a SHA-256 content id.

    Every id handed out by ``put_*`` is 64 lowercase hex characters;
    nothing else may ever reach ``os.path.join`` against the store root
    (a "digest" like ``../engine/MANIFEST.json`` would otherwise escape
    it — and ``delete`` would unlink whatever it lands on).
    """
    if not isinstance(digest, str) or _DIGEST_RE.match(digest) is None:
        raise ValidationError(
            f"invalid content id {digest!r}: expected 64 lowercase "
            "hex characters"
        )
    return digest


def _scanned_counter():
    return telemetry.get_metrics().counter(
        "filestore_scrub_scanned_total",
        "Blobs re-hashed by FileStore.scrub",
    )


def _repaired_counter():
    return telemetry.get_metrics().counter(
        "filestore_scrub_repaired_total",
        "Blobs scrub migrated from the legacy flat layout into shards",
    )


def _quarantined_counter():
    return telemetry.get_metrics().counter(
        "filestore_scrub_quarantined_total",
        "Corrupt blobs scrub moved into quarantine",
    )


class FileStore:
    """Content-addressed storage for artifact payloads."""

    def __init__(self, root: Optional[str]):
        self.root = root
        self._memory: Dict[str, bytes] = {}
        self._metadata: Dict[str, Dict] = {}
        self._lock = threading.RLock()
        if root is not None:
            os.makedirs(root, exist_ok=True)
            self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Reclaim tmp files stranded by a crash mid-put.

        ``put_file`` streams into ``ingest-<uuid>.tmp`` in the store
        root and ``put_bytes`` stages ``<digest>.tmp`` inside the
        shard; a process killed before the atomic rename leaks them —
        for an aborted multi-GB ingest, indefinitely.  Any ``*.tmp``
        found at open (or during scrub) belongs to a dead writer and
        is removed.  Returns the number of files swept.
        """
        swept = 0
        for entry in os.listdir(self.root):
            path = os.path.join(self.root, entry)
            if os.path.isfile(path):
                if entry.endswith(".tmp"):
                    os.remove(path)
                    swept += 1
            elif entry != _QUARANTINE_DIR:
                for blob in os.listdir(path):
                    if blob.endswith(".tmp"):
                        os.remove(os.path.join(path, blob))
                        swept += 1
        return swept

    # ----------------------------------------------------------------- put

    def put_bytes(self, data: bytes, filename: Optional[str] = None) -> str:
        """Store a byte string; returns its content id.  Idempotent."""
        digest = sha256_bytes(data)
        chaos.fire("filestore.put", digest=digest, filename=filename)
        with self._lock:
            if not self.exists(digest):
                if self.root is None:
                    self._memory[digest] = data
                else:
                    path = self._blob_path(digest)
                    os.makedirs(os.path.dirname(path), exist_ok=True)
                    tmp = path + ".tmp"
                    with open(tmp, "wb") as handle:
                        handle.write(data)
                    os.replace(tmp, path)
            self._note_metadata(digest, len(data), filename)
        return digest

    def put_file(self, path: str) -> str:
        """Store a host file's content; returns its content id.

        Streams in chunks through an incremental SHA-256 — a multi-GB
        disk image never lands in memory.  On disk stores the bytes go
        straight into a temp file that is atomically renamed (or
        discarded, when the content already exists) once the digest is
        known.
        """
        filename = os.path.basename(path)
        if self.root is None:
            hasher = hashlib.sha256()
            buffer = bytearray()
            with open(path, "rb") as source:
                while True:
                    chunk = source.read(_CHUNK_SIZE)
                    if not chunk:
                        break
                    hasher.update(chunk)
                    buffer.extend(chunk)
            digest = hasher.hexdigest()
            chaos.fire("filestore.put", digest=digest, filename=filename)
            with self._lock:
                if digest not in self._memory:
                    self._memory[digest] = bytes(buffer)
                self._note_metadata(digest, len(buffer), filename)
            return digest
        hasher = hashlib.sha256()
        length = 0
        tmp = os.path.join(self.root, f"ingest-{new_uuid()}.tmp")
        try:
            with open(path, "rb") as source, open(tmp, "wb") as sink:
                while True:
                    chunk = source.read(_CHUNK_SIZE)
                    if not chunk:
                        break
                    hasher.update(chunk)
                    sink.write(chunk)
                    length += len(chunk)
            digest = hasher.hexdigest()
            chaos.fire("filestore.put", digest=digest, filename=filename)
            with self._lock:
                if self.exists(digest):
                    os.remove(tmp)
                else:
                    blob = self._blob_path(digest)
                    os.makedirs(os.path.dirname(blob), exist_ok=True)
                    os.replace(tmp, blob)
                self._note_metadata(digest, length, filename)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return digest

    def _note_metadata(
        self, digest: str, length: int, filename: Optional[str]
    ) -> None:
        meta = self._metadata.setdefault(
            digest, {"length": length, "filenames": []}
        )
        if filename and filename not in meta["filenames"]:
            meta["filenames"].append(filename)

    # ----------------------------------------------------------------- get

    def get_bytes(self, digest: str) -> bytes:
        """Read a blob back, verifying it still hashes to its id.

        Content addressing makes integrity checkable for free: a blob
        whose bytes no longer produce ``digest`` was corrupted on disk
        (truncation, bit rot, an out-of-band overwrite) and is reported
        as :class:`CorruptBlobError` rather than silently returned.
        """
        _check_digest(digest)
        chaos.fire("filestore.get", digest=digest)
        with self._lock:
            if self.root is None:
                if digest not in self._memory:
                    raise NotFoundError(f"no blob with id {digest}")
                data = self._memory[digest]
            else:
                path = self._find(digest)
                if path is None:
                    raise NotFoundError(f"no blob with id {digest}")
                with open(path, "rb") as handle:
                    data = handle.read()
        actual = sha256_bytes(data)
        if actual != digest:
            raise CorruptBlobError(
                f"blob {digest} is corrupt: content hashes to {actual} "
                f"({len(data)} bytes on disk)"
            )
        return data

    def download_to(self, digest: str, destination: str) -> None:
        """Copy a blob out to a host path (gem5art's downloadFile)."""
        data = self.get_bytes(digest)
        os.makedirs(os.path.dirname(destination) or ".", exist_ok=True)
        with open(destination, "wb") as handle:
            handle.write(data)

    # -------------------------------------------------------------- delete

    def delete(self, digest: str) -> bool:
        """Drop a blob (and its metadata) from the store.

        Content addressing makes deletion safe for corruption recovery:
        a blob whose bytes no longer match its digest is garbage, and
        removing it lets the next ``put_bytes`` of the pristine content
        re-populate the same address.  Returns True when a blob existed.
        """
        _check_digest(digest)
        with self._lock:
            self._metadata.pop(digest, None)
            if self.root is None:
                return self._memory.pop(digest, None) is not None
            path = self._find(digest)
            if path is None:
                return False
            os.remove(path)
            return True

    # --------------------------------------------------------------- scrub

    def scrub(self) -> Dict[str, object]:
        """Re-verify every blob; quarantine rot, heal the layout.

        Three outcomes per blob:

        - hash matches, sharded path — healthy, left alone;
        - hash matches, legacy flat path — **repaired**: moved into its
          hash-prefix shard;
        - hash mismatch — **quarantined**: moved to
          ``<root>/quarantine/<digest>`` (in-memory stores just drop
          it), freeing the address for a pristine re-put.

        Stale ``*.tmp`` files from crashed puts are also swept (as on
        open), reported as ``tmp_swept``.
        """
        scanned = 0
        repaired: List[str] = []
        quarantined: List[str] = []
        tmp_swept = 0
        if self.root is not None:
            with self._lock:
                tmp_swept = self._sweep_stale_tmp()
        for digest in self.list_ids():
            scanned += 1
            with self._lock:
                if self.root is None:
                    data = self._memory.get(digest)
                    if data is None:
                        continue
                    if sha256_bytes(data) != digest:
                        del self._memory[digest]
                        self._metadata.pop(digest, None)
                        quarantined.append(digest)
                    continue
                path = self._find(digest)
                if path is None:
                    continue
                with open(path, "rb") as handle:
                    data = handle.read()
                if sha256_bytes(data) != digest:
                    target = os.path.join(
                        self.root, _QUARANTINE_DIR, digest
                    )
                    os.makedirs(os.path.dirname(target), exist_ok=True)
                    os.replace(path, target)
                    self._metadata.pop(digest, None)
                    quarantined.append(digest)
                elif path == self._legacy_path(digest):
                    sharded = self._blob_path(digest)
                    os.makedirs(os.path.dirname(sharded), exist_ok=True)
                    os.replace(path, sharded)
                    repaired.append(digest)
        _scanned_counter().inc(scanned)
        if repaired:
            _repaired_counter().inc(len(repaired))
        if quarantined:
            _quarantined_counter().inc(len(quarantined))
        return {
            "scanned": scanned,
            "repaired": repaired,
            "quarantined": quarantined,
            "tmp_swept": tmp_swept,
        }

    # ---------------------------------------------------------------- query

    def exists(self, digest: str) -> bool:
        _check_digest(digest)
        if self.root is None:
            with self._lock:
                return digest in self._memory
        return self._find(digest) is not None

    def list_ids(self) -> List[str]:
        if self.root is None:
            with self._lock:
                return sorted(self._memory)
        ids = set()
        for entry in os.listdir(self.root):
            path = os.path.join(self.root, entry)
            if os.path.isdir(path):
                if entry == _QUARANTINE_DIR:
                    continue
                ids.update(
                    blob
                    for blob in os.listdir(path)
                    if not blob.endswith(".tmp")
                )
            elif not entry.endswith(".tmp"):
                ids.add(entry)
        return sorted(ids)

    def metadata(self, digest: str) -> Dict:
        if not self.exists(digest):
            raise NotFoundError(f"no blob with id {digest}")
        with self._lock:
            return dict(
                self._metadata.get(
                    digest, {"length": None, "filenames": []}
                )
            )

    def stats(self) -> Dict[str, object]:
        """Blob population and layout shape for ``repro db stats``."""
        ids = self.list_ids()
        stats: Dict[str, object] = {"blobs": len(ids), "bytes": 0, "shards": 0}
        if self.root is None:
            with self._lock:
                stats["bytes"] = sum(
                    len(d) for d in self._memory.values()
                )
            return stats
        total = 0
        for digest in ids:
            path = self._find(digest)
            if path is not None and os.path.isfile(path):
                total += os.path.getsize(path)
        stats["bytes"] = total
        stats["shards"] = sum(
            1
            for entry in os.listdir(self.root)
            if entry != _QUARANTINE_DIR
            and os.path.isdir(os.path.join(self.root, entry))
        )
        quarantine = os.path.join(self.root, _QUARANTINE_DIR)
        stats["quarantined"] = (
            len(os.listdir(quarantine)) if os.path.isdir(quarantine) else 0
        )
        return stats

    def __contains__(self, digest: str) -> bool:
        return self.exists(digest)

    def __len__(self) -> int:
        return len(self.list_ids())

    # ---------------------------------------------------------------- paths

    def _blob_path(self, digest: str) -> str:
        """Sharded home of a blob: first-byte fan-out subdirectory."""
        return os.path.join(self.root, digest[:2], digest)

    def _legacy_path(self, digest: str) -> str:
        """Pre-sharding flat location, still honoured on reads."""
        return os.path.join(self.root, digest)

    def _find(self, digest: str) -> Optional[str]:
        for path in (self._blob_path(digest), self._legacy_path(digest)):
            if os.path.isfile(path):
                return path
        return None
