"""Segmented on-disk collection layout: sealed segments + active WAL.

Each collection owns a directory::

    <engine root>/<collection>/
        MANIFEST.json        # ordered list of sealed segments (atomic)
        segment-00000001.seg # immutable, checksummed op log (sealed WAL)
        segment-00000004.seg
        wal.log              # active WAL receiving new operations

A *segment* is simply a WAL that was sealed: when the active log grows
past ``seal_bytes`` it is fsynced and renamed (O(1), atomic) into the
segment namespace, the manifest is republished, and a fresh WAL starts.
Recovery replays the manifest's segments in order (strictly checksummed)
and then the active WAL (tolerating, and truncating, a torn tail).

Compaction merges the *sealed* segments only — the active WAL keeps
accepting writes concurrently — into one segment holding a single
``insert`` per live document, dropping tombstones and superseded
versions, and publishes the swap through an atomic manifest rename.

Crash windows are closed structurally:

- crash between seal-rename and manifest publish leaves an orphan
  ``segment-<next_seq>`` file; the next open adopts exactly that
  sequence number back into the manifest (nothing else is ever adopted);
- compaction output lives in its own ``compact-<seq>.seg`` namespace,
  which orphan adoption never touches: a crash anywhere mid-compaction
  leaves either a ``*.tmp`` file or an unreferenced ``compact-*.seg``
  (both swept on open) plus stale pre-compaction segments still listed
  in the manifest — the old manifest stays authoritative until the
  final manifest rename publishes the swap.

The namespace split matters: a merge snapshot reflects state as of
merge *start*, so re-adopting one onto the end of the manifest would
replay it after any segment sealed during the merge, resurrecting
deleted documents and reverting updates.  Only a sealed WAL — always
the newest ops — may ever be adopted.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import chaos, telemetry
from repro.common.errors import ValidationError
from repro.common.jsonutil import loads, stable_dumps
from repro.db.engine.wal import (
    WalWriter,
    encode_record,
    fsync_dir,
    read_log,
)

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
_SEGMENT_RE = re.compile(r"^segment-(\d{8})\.seg$")
_COMPACT_RE = re.compile(r"^compact-(\d{8})\.seg$")

#: Default auto-seal threshold for the active WAL.
DEFAULT_SEAL_BYTES = 1 << 20


def _segment_name(seq: int) -> str:
    return f"segment-{seq:08d}.seg"


def _compact_name(seq: int) -> str:
    """Compaction output name — deliberately NOT ``segment-*``.

    Orphan adoption recognises only ``segment-<next_seq>``, so a
    compacted snapshot stranded between its rename and the manifest
    publish is swept as unreferenced instead of being adopted behind
    segments that hold newer operations.
    """
    return f"compact-{seq:08d}.seg"


def _sealed_counter():
    return telemetry.get_metrics().counter(
        "db_segments_sealed_total",
        "Active WALs sealed into immutable segments",
    )


def _compactions_counter():
    return telemetry.get_metrics().counter(
        "db_compactions_total",
        "Segment-merge compactions published",
    )


def _reclaimed_counter():
    return telemetry.get_metrics().counter(
        "db_compaction_reclaimed_bytes_total",
        "Bytes of superseded segment data dropped by compaction",
    )


def _truncated_counter():
    return telemetry.get_metrics().counter(
        "db_recovery_truncated_bytes_total",
        "Torn WAL tail bytes discarded during crash recovery",
    )


class CollectionStore:
    """Durable op log for one collection: WAL + segments + manifest."""

    def __init__(
        self,
        root: str,
        name: str,
        durability: str = "batch",
        seal_bytes: int = DEFAULT_SEAL_BYTES,
        batch_size: int = 64,
    ):
        if os.sep in name or name.startswith("."):
            raise ValidationError(f"invalid collection name: {name!r}")
        self.name = name
        self.dir = os.path.join(root, name)
        self.durability = durability
        self.seal_bytes = seal_bytes
        self._lock = threading.RLock()
        #: Serializes whole compactions (CLI + background thread) so two
        #: merges never race over the same tmp file or input segments.
        self._compact_lock = threading.Lock()
        os.makedirs(self.dir, exist_ok=True)
        self._sweep_tmp()
        self._manifest = self._read_or_init_manifest()
        self._adopt_orphan_segment()
        self._sweep_unreferenced_segments()
        self.recovery: Dict[str, Any] = self._heal_wal_tail()
        self._writer = WalWriter(
            self._wal_path(),
            durability=durability,
            batch_size=batch_size,
            collection=name,
        )

    # ------------------------------------------------------------- paths

    def _wal_path(self) -> str:
        return os.path.join(self.dir, WAL_NAME)

    def _manifest_path(self) -> str:
        return os.path.join(self.dir, MANIFEST_NAME)

    def _segment_path(self, segment: str) -> str:
        return os.path.join(self.dir, segment)

    # ---------------------------------------------------------- manifest

    def _read_or_init_manifest(self) -> Dict[str, Any]:
        path = self._manifest_path()
        if os.path.isfile(path):
            with open(path, "r", encoding="utf-8") as handle:
                return loads(handle.read())
        manifest = {"segments": [], "next_seq": 1}
        self._write_manifest(manifest)
        return manifest

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        path = self._manifest_path()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(stable_dumps(manifest))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(self.dir)

    # ----------------------------------------------------- open-time heal

    def _sweep_tmp(self) -> None:
        for entry in os.listdir(self.dir):
            if entry.endswith(".tmp"):
                os.remove(os.path.join(self.dir, entry))

    def _adopt_orphan_segment(self) -> None:
        """Re-adopt a segment stranded between seal-rename and publish.

        Only the exact ``segment-<next_seq>`` file can be such an
        orphan: seal renames the WAL to that name *before* republishing
        the manifest, so a crash in between leaves precisely that file.
        Compaction output is named ``compact-*`` and thus can never be
        adopted here — a snapshot of merge-*start* state appended after
        newer sealed segments would resurrect deletes.  Anything else
        unlisted is crash debris and is swept.
        """
        orphan = _segment_name(self._manifest["next_seq"])
        if orphan in self._manifest["segments"]:
            return
        if os.path.isfile(self._segment_path(orphan)):
            self._manifest["segments"].append(orphan)
            self._manifest["next_seq"] += 1
            self._write_manifest(self._manifest)

    def _sweep_unreferenced_segments(self) -> None:
        listed = set(self._manifest["segments"])
        for entry in os.listdir(self.dir):
            recognised = _SEGMENT_RE.match(entry) or _COMPACT_RE.match(
                entry
            )
            if recognised and entry not in listed:
                os.remove(os.path.join(self.dir, entry))

    def _heal_wal_tail(self) -> Dict[str, Any]:
        """Truncate a torn tail off the active WAL before reopening it."""
        path = self._wal_path()
        report = {"wal_records": 0, "truncated_bytes": 0, "tear": None}
        if not os.path.isfile(path):
            return report
        records, good_offset, tear = read_log(
            path, tolerate_torn_tail=True
        )
        report["wal_records"] = len(records)
        if tear is not None:
            torn = os.path.getsize(path) - good_offset
            report["truncated_bytes"] = torn
            report["tear"] = tear
            with open(path, "r+b") as handle:
                handle.truncate(good_offset)
                handle.flush()
                os.fsync(handle.fileno())
            _truncated_counter().inc(torn, collection=self.name)
        return report

    # ------------------------------------------------------------ logging

    def log_insert(self, doc: Dict[str, Any]) -> None:
        self._append({"op": "insert", "doc": doc})

    def log_replace(self, doc: Dict[str, Any]) -> None:
        self._append({"op": "replace", "doc": doc})

    def log_delete(self, doc_id: str) -> None:
        self._append({"op": "delete", "id": doc_id})

    def log_index(self, field: str, unique: bool) -> None:
        self._append({"op": "index", "field": field, "unique": unique})

    def _append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._writer.append(record)
            if self._writer.size() >= self.seal_bytes:
                self.seal()

    def flush(self) -> None:
        # Under the lock: ``seal()`` swaps ``self._writer`` for a fresh
        # WAL, and flushing the stale writer would silently lose the
        # durability point.
        with self._lock:
            self._writer.flush()

    # -------------------------------------------------------------- seal

    def seal(self) -> Optional[str]:
        """Freeze the active WAL into an immutable segment.

        O(1): the WAL file *becomes* the segment via atomic rename; a
        fresh WAL starts in its place.  Returns the new segment name,
        or None when the WAL had nothing to seal.
        """
        with self._lock:
            if self._writer.size() == 0:
                return None
            segment = _segment_name(self._manifest["next_seq"])
            self._writer.flush()
            chaos.fire(
                "segment.seal", collection=self.name, segment=segment
            )
            self._writer.close()
            os.replace(self._wal_path(), self._segment_path(segment))
            fsync_dir(self.dir)
            self._manifest["segments"].append(segment)
            self._manifest["next_seq"] += 1
            self._write_manifest(self._manifest)
            self._writer = WalWriter(
                self._wal_path(),
                durability=self.durability,
                batch_size=self._writer.batch_size,
                collection=self.name,
            )
        _sealed_counter().inc(collection=self.name)
        return segment

    # ------------------------------------------------------------ replay

    def load(self) -> Tuple[
        Dict[str, Dict[str, Any]], List[Tuple[str, bool]], Dict[str, Any]
    ]:
        """Replay segments + WAL into ``(documents, indexes, report)``.

        Sealed segments are checksummed strictly (damage raises); the
        WAL tail was already healed at open.  ``indexes`` lists
        ``(field, unique)`` definitions in creation order.
        """
        state: Dict[str, Dict[str, Any]] = {}
        indexes: Dict[str, bool] = {}
        replayed = 0
        with self._lock:
            segments = list(self._manifest["segments"])
            self._writer.flush()
            for segment in segments:
                records, _, _ = read_log(self._segment_path(segment))
                for record in records:
                    self._apply(state, indexes, record)
                replayed += len(records)
            wal_records, _, _ = read_log(
                self._wal_path(), tolerate_torn_tail=True
            )
            for record in wal_records:
                self._apply(state, indexes, record)
            replayed += len(wal_records)
        report = dict(self.recovery)
        report["records_replayed"] = replayed
        report["segments"] = len(segments)
        return state, list(indexes.items()), report

    @staticmethod
    def _apply(
        state: Dict[str, Dict[str, Any]],
        indexes: Dict[str, bool],
        record: Dict[str, Any],
    ) -> None:
        op = record["op"]
        if op in ("insert", "replace"):
            doc = record["doc"]
            state[doc["_id"]] = doc
        elif op == "delete":
            state.pop(record["id"], None)
        elif op == "index":
            indexes[record["field"]] = bool(record["unique"])
        else:
            raise ValidationError(f"unknown WAL op: {op!r}")

    # ---------------------------------------------------------- compact

    def compact(self) -> Dict[str, Any]:
        """Merge every sealed segment into one, dropping dead records.

        Runs concurrently with appends: only sealed (immutable) segments
        are read, and the swap is a single manifest rename.  A segment
        sealed *during* the merge survives the swap untouched — the
        compacted segment replaces exactly the inputs it merged.
        """
        with self._compact_lock:
            return self._compact()

    def _compact(self) -> Dict[str, Any]:
        with self._lock:
            merged = list(self._manifest["segments"])
        if len(merged) < 2:
            return {"merged": 0, "reclaimed_bytes": 0, "segment": None}
        state: Dict[str, Dict[str, Any]] = {}
        indexes: Dict[str, bool] = {}
        input_bytes = 0
        for segment in merged:
            path = self._segment_path(segment)
            input_bytes += os.path.getsize(path)
            records, _, _ = read_log(path)
            for record in records:
                self._apply(state, indexes, record)
        tmp = os.path.join(self.dir, "compact.seg.tmp")
        with open(tmp, "wb") as handle:
            for field, unique in indexes.items():
                handle.write(
                    encode_record(
                        {"op": "index", "field": field, "unique": unique}
                    )
                )
            for doc_id in sorted(state):
                handle.write(
                    encode_record({"op": "insert", "doc": state[doc_id]})
                )
            handle.flush()
            os.fsync(handle.fileno())
        with self._lock:
            segment = _compact_name(self._manifest["next_seq"])
            chaos.fire(
                "compact.publish", collection=self.name, segment=segment
            )
            os.replace(tmp, self._segment_path(segment))
            fsync_dir(self.dir)
            # Second crash window: output renamed into place but the
            # manifest not yet republished.  The compact-* namespace
            # keeps the stranded file non-adoptable; the next open
            # sweeps it while the old manifest stays authoritative.
            chaos.fire(
                "compact.manifest", collection=self.name, segment=segment
            )
            survivors = [
                s for s in self._manifest["segments"] if s not in merged
            ]
            self._manifest["segments"] = [segment] + survivors
            self._manifest["next_seq"] += 1
            self._write_manifest(self._manifest)
        for old in merged:
            os.remove(self._segment_path(old))
        output_bytes = os.path.getsize(self._segment_path(segment))
        reclaimed = max(0, input_bytes - output_bytes)
        _compactions_counter().inc(collection=self.name)
        _reclaimed_counter().inc(reclaimed, collection=self.name)
        return {
            "merged": len(merged),
            "reclaimed_bytes": reclaimed,
            "segment": segment,
        }

    # ------------------------------------------------------------- stats

    def segment_count(self) -> int:
        with self._lock:
            return len(self._manifest["segments"])

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            segments = list(self._manifest["segments"])
            wal_bytes = self._writer.size()
        segment_bytes = sum(
            os.path.getsize(self._segment_path(s))
            for s in segments
            if os.path.isfile(self._segment_path(s))
        )
        return {
            "segments": len(segments),
            "segment_bytes": segment_bytes,
            "wal_bytes": wal_bytes,
            "durability": self.durability,
        }

    def close(self) -> None:
        with self._lock:
            self._writer.flush()
            self._writer.close()
