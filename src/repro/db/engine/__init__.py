"""The embedded storage engine behind file-backed databases.

``repro.db`` began as an in-memory dict flushed wholesale to JSON-lines
files — fine for a demo, fatal for a 1M-run catalog (a crash mid-``save``
loses everything since the last flush).  This package is the real engine
underneath the same :class:`~repro.db.database.Database` /
:class:`~repro.db.collection.Collection` API:

- :mod:`~repro.db.engine.wal` — checksummed, length-prefixed write-ahead
  log with a ``none|batch|strict`` durability knob and torn-tail repair;
- :mod:`~repro.db.engine.segments` — per-collection immutable sealed
  segments + active WAL, manifest-published via atomic rename;
- :mod:`~repro.db.engine.compaction` — background thread merging
  segments and dropping tombstones.

:class:`StorageEngine` owns the directory tree and the compactor; the
Database maps each collection onto a
:class:`~repro.db.engine.segments.CollectionStore` and logs every
acknowledged mutation through it *before* applying it in memory.
"""

from __future__ import annotations

import os
import shutil
import threading
from typing import Any, Dict, List

from repro.db.engine.compaction import (
    DEFAULT_INTERVAL,
    DEFAULT_MIN_SEGMENTS,
    Compactor,
)
from repro.db.engine.segments import (
    DEFAULT_SEAL_BYTES,
    MANIFEST_NAME,
    CollectionStore,
)
from repro.db.engine.wal import DURABILITY_MODES, WalWriter, read_log

__all__ = [
    "DURABILITY_MODES",
    "Compactor",
    "CollectionStore",
    "StorageEngine",
    "WalWriter",
    "read_log",
]


class StorageEngine:
    """A directory of collection stores plus their compaction thread."""

    def __init__(
        self,
        root: str,
        durability: str = "batch",
        seal_bytes: int = DEFAULT_SEAL_BYTES,
        batch_size: int = 64,
        auto_compact: bool = True,
        compact_interval: float = DEFAULT_INTERVAL,
        compact_min_segments: int = DEFAULT_MIN_SEGMENTS,
    ):
        self.root = root
        self.durability = durability
        self.seal_bytes = seal_bytes
        self.batch_size = batch_size
        self._lock = threading.RLock()
        self._stores: Dict[str, CollectionStore] = {}
        self._closed = False
        os.makedirs(root, exist_ok=True)
        self.compactor = Compactor(
            self,
            interval=compact_interval,
            min_segments=compact_min_segments,
        )
        if auto_compact:
            self.compactor.start()

    # ------------------------------------------------------------- stores

    def store(self, name: str) -> CollectionStore:
        """Return (creating on first use) the named collection store."""
        with self._lock:
            if name not in self._stores:
                self._stores[name] = CollectionStore(
                    self.root,
                    name,
                    durability=self.durability,
                    seal_bytes=self.seal_bytes,
                    batch_size=self.batch_size,
                )
            return self._stores[name]

    def stores(self) -> List[CollectionStore]:
        with self._lock:
            return list(self._stores.values())

    def existing_names(self) -> List[str]:
        """Collections already persisted under this engine root."""
        names = []
        for entry in sorted(os.listdir(self.root)):
            manifest = os.path.join(self.root, entry, MANIFEST_NAME)
            if os.path.isfile(manifest):
                names.append(entry)
        return names

    def drop(self, name: str) -> None:
        with self._lock:
            store = self._stores.pop(name, None)
            if store is not None:
                store.close()
            path = os.path.join(self.root, name)
            if os.path.isdir(path):
                shutil.rmtree(path)

    # ------------------------------------------------------- maintenance

    def flush(self) -> None:
        """fsync every active WAL (the engine's ``save()``)."""
        for store in self.stores():
            store.flush()

    def compact_all(self) -> Dict[str, Dict[str, Any]]:
        """Force-compact every collection; returns per-collection stats."""
        results = {}
        for store in self.stores():
            store.seal()  # pull the active WAL into the merge, if any
            results[store.name] = store.compact()
        return results

    def stats(self) -> Dict[str, Dict[str, Any]]:
        return {store.name: store.stats() for store in self.stores()}

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.compactor.stop()
        for store in self.stores():
            store.close()
