"""Background compaction: the engine's housekeeping heartbeat.

Mirrors the scheduler's lease-reaper idiom: a single daemon thread wakes
on an interval (or immediately on ``stop()`` via the event), scans every
collection store, and merges any whose sealed-segment count reached the
threshold.  The thread counts heartbeats so tests and ``repro db stats``
can observe liveness, and every pass that actually merged something is
visible through the ``db_compactions_total`` counter.

Compaction errors are recorded as telemetry events and do not kill the
thread — a fault injected at ``compact.publish`` (or a real transient
IO error) leaves the old manifest authoritative, and the next pass
simply retries.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro import telemetry
from repro.chaos import WorkerCrashed
from repro.common.errors import FaultInjectedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.db.engine import StorageEngine

#: Compact a collection once it has accumulated this many sealed segments.
DEFAULT_MIN_SEGMENTS = 4

#: Seconds between housekeeping passes.
DEFAULT_INTERVAL = 2.0


class Compactor:
    """Periodic segment-merge thread over a :class:`StorageEngine`."""

    def __init__(
        self,
        engine: "StorageEngine",
        interval: float = DEFAULT_INTERVAL,
        min_segments: int = DEFAULT_MIN_SEGMENTS,
    ):
        self.engine = engine
        self.interval = interval
        self.min_segments = min_segments
        self.heartbeats = 0
        self._stop = threading.Event()
        self._thread: threading.Thread = threading.Thread(
            target=self._run, name="db-compactor", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    # ---------------------------------------------------------------- loop

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.heartbeats += 1
            self.run_once()

    def run_once(self) -> int:
        """One housekeeping pass; returns how many collections merged."""
        merged = 0
        for store in self.engine.stores():
            if self._stop.is_set():
                break
            if store.segment_count() < self.min_segments:
                continue
            try:
                result = store.compact()
            except (OSError, FaultInjectedError, WorkerCrashed) as error:
                telemetry.get_event_log().emit(
                    "db.compact.error",
                    collection=store.name,
                    error=str(error),
                )
                continue
            if result["merged"]:
                merged += 1
        return merged
