"""Write-ahead log: checksummed, length-prefixed operation records.

Every mutation a collection acknowledges is appended here *before* it is
applied in memory — the WAL is the source of truth, memory is a replayable
cache of it.  A record on disk is::

    [4-byte big-endian payload length][4-byte big-endian CRC32][payload]

where the payload is the canonical JSON of one operation document
(``insert``/``replace``/``delete``/``index``).  The framing makes two
failure modes detectable without any out-of-band state:

- a **torn tail** — the process died mid-append, leaving a truncated
  header or payload.  Recovery keeps every record before the tear and
  truncates the file back to the last good byte;
- **corruption** inside a sealed segment — the CRC no longer matches,
  which is a hard :class:`~repro.common.errors.CorruptRecordError`
  because sealed bytes were fsynced and must never change.

How eagerly appended bytes reach the platter is the ``durability`` knob:

========  ===========================================================
mode      guarantee
========  ===========================================================
strict    fsync before every append returns — an acknowledged write
          survives an immediate power cut
batch     fsync every ``batch_size`` appends and on flush/seal/close
none      OS page cache only; fsync at flush/seal/close
========  ===========================================================
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro import chaos, telemetry
from repro.common.errors import CorruptRecordError, ValidationError
from repro.common.jsonutil import loads, stable_dumps

#: Recognised durability modes, weakest to strongest.
DURABILITY_MODES = ("none", "batch", "strict")

#: Frame header: payload length + CRC32, both unsigned big-endian.
_HEADER = struct.Struct(">II")

#: Sanity cap on a single record; a length beyond this is garbage framing,
#: not a document (documents are artifact/run metadata, not blobs).
_MAX_RECORD = 64 * 1024 * 1024


def _records_counter():
    return telemetry.get_metrics().counter(
        "db_wal_records_total",
        "Operation records appended to collection write-ahead logs",
    )


def _fsyncs_counter():
    return telemetry.get_metrics().counter(
        "db_wal_fsyncs_total",
        "fsync calls issued by the write-ahead log",
    )


def encode_record(record: Dict[str, Any]) -> bytes:
    """Frame one operation document as length + CRC32 + canonical JSON."""
    payload = stable_dumps(record).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory so renames inside it are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_log(
    path: str, tolerate_torn_tail: bool = False
) -> Tuple[List[Dict[str, Any]], int, Optional[str]]:
    """Decode every record in a log file.

    Returns ``(records, good_offset, tear)`` where ``good_offset`` is the
    byte offset just past the last intact record and ``tear`` describes
    the first damaged frame (or None).  A damaged frame in a *sealed*
    file is corruption and raises; in an active WAL it is the expected
    signature of a crash mid-append, so with ``tolerate_torn_tail`` the
    good prefix is returned and the caller truncates the file.
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    tear: Optional[str] = None
    with open(path, "rb") as handle:
        data = handle.read()
    total = len(data)
    while offset < total:
        header = data[offset : offset + _HEADER.size]
        if len(header) < _HEADER.size:
            tear = f"truncated header at byte {offset}"
            break
        length, crc = _HEADER.unpack(header)
        if length > _MAX_RECORD:
            tear = f"implausible record length {length} at byte {offset}"
            break
        start = offset + _HEADER.size
        payload = data[start : start + length]
        if len(payload) < length:
            tear = f"truncated payload at byte {offset}"
            break
        if zlib.crc32(payload) != crc:
            tear = f"checksum mismatch at byte {offset}"
            break
        records.append(loads(payload.decode("utf-8")))
        offset = start + length
    if tear is not None and not tolerate_torn_tail:
        raise CorruptRecordError(f"{path}: {tear}")
    return records, offset, tear


class WalWriter:
    """Append-only writer for one collection's active WAL file."""

    def __init__(
        self,
        path: str,
        durability: str = "batch",
        batch_size: int = 64,
        collection: str = "",
    ):
        if durability not in DURABILITY_MODES:
            raise ValidationError(
                f"unknown durability {durability!r}; "
                f"one of {DURABILITY_MODES}"
            )
        if batch_size < 1:
            raise ValidationError("batch_size must be positive")
        self.path = path
        self.durability = durability
        self.batch_size = batch_size
        self.collection = collection
        self._lock = threading.Lock()
        self._handle = open(path, "ab")
        self._since_fsync = 0

    # -------------------------------------------------------------- append

    def append(self, record: Dict[str, Any]) -> None:
        """Durably (per the mode) append one operation record.

        The chaos hook fires *before* any byte is written: a ``crash``
        rule here models a process dying between accepting a write and
        logging it, so the write must not be acknowledged (callers log
        before touching memory, making the failure atomic).
        """
        chaos.fire(
            "wal.append",
            collection=self.collection,
            op=record.get("op", "?"),
        )
        frame = encode_record(record)
        with self._lock:
            self._handle.write(frame)
            self._since_fsync += 1
            if self.durability == "strict" or (
                self.durability == "batch"
                and self._since_fsync >= self.batch_size
            ):
                self._fsync_locked()
        _records_counter().inc(
            collection=self.collection, op=record.get("op", "?")
        )

    def flush(self) -> None:
        """Force every buffered byte to stable storage (any mode)."""
        with self._lock:
            if not self._handle.closed:
                self._fsync_locked()

    def _fsync_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_fsync = 0
        _fsyncs_counter().inc(collection=self.collection)

    # ---------------------------------------------------------------- misc

    def size(self) -> int:
        """Bytes written so far (buffered included)."""
        with self._lock:
            if self._handle.closed:
                return 0
            return self._handle.tell()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()
