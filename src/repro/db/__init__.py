"""An embedded document database — the MongoDB substitute.

gem5art stores artifacts and run results in MongoDB (documents keyed by UUID
and content hash) and stores the associated binary blobs in GridFS.  Neither
is available offline, so this package provides behaviour-compatible
replacements:

- :class:`Collection` — documents with Mongo-style queries, unique indexes
  and non-unique secondary indexes,
- :class:`Database` — a set of named collections persisted through the
  embedded storage engine (:mod:`repro.db.engine`: write-ahead log,
  sealed segments, background compaction, crash recovery),
- :class:`FileStore` — a content-addressed blob store (the GridFS
  stand-in) with hash-prefix sharding and scrub-and-quarantine repair,
- :func:`connect` — URI-based entry point (``memory://`` or
  ``file:///path?durability=none|batch|strict``).
"""

from repro.db.query import matches, sort_documents, project
from repro.db.collection import Collection
from repro.db.engine import DURABILITY_MODES, StorageEngine
from repro.db.database import Database
from repro.db.filestore import FileStore
from repro.db.client import connect

__all__ = [
    "matches",
    "sort_documents",
    "project",
    "Collection",
    "Database",
    "DURABILITY_MODES",
    "StorageEngine",
    "FileStore",
    "connect",
]
