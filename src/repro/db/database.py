"""A named set of collections with JSON-lines persistence.

Mirrors the role MongoDB plays for gem5art: a durable home for artifact and
run documents.  A database can live purely in memory (tests) or be bound to a
directory, where each collection persists as ``<name>.jsonl`` and blobs live
under ``files/`` via the :class:`~repro.db.filestore.FileStore`.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional

from repro.common.errors import ValidationError
from repro.common.jsonutil import loads, stable_dumps
from repro.db.collection import Collection
from repro.db.filestore import FileStore

_COLLECTION_SUFFIX = ".jsonl"


class Database:
    """A collection container, optionally bound to an on-disk directory."""

    def __init__(self, name: str = "repro", root: Optional[str] = None):
        if not name:
            raise ValidationError("database name must be non-empty")
        self.name = name
        self.root = root
        self._collections: Dict[str, Collection] = {}
        self._lock = threading.RLock()
        self._files: Optional[FileStore] = None
        if root is not None:
            os.makedirs(root, exist_ok=True)
            self._files = FileStore(os.path.join(root, "files"))
            self._load_all()

    # ---------------------------------------------------------- collections

    def collection(self, name: str) -> Collection:
        """Return (creating on first use) the named collection."""
        with self._lock:
            if name not in self._collections:
                self._collections[name] = Collection(name)
            return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> List[str]:
        with self._lock:
            return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        with self._lock:
            self._collections.pop(name, None)
            if self.root is not None:
                path = self._collection_path(name)
                if os.path.exists(path):
                    os.remove(path)

    # ---------------------------------------------------------------- files

    @property
    def files(self) -> FileStore:
        """The blob store (GridFS stand-in); memory databases get a
        temporary in-memory store."""
        if self._files is None:
            self._files = FileStore(None)
        return self._files

    # ---------------------------------------------------------- persistence

    def _collection_path(self, name: str) -> str:
        return os.path.join(self.root, name + _COLLECTION_SUFFIX)

    def save(self) -> None:
        """Flush every collection to its JSON-lines file.

        A no-op for purely in-memory databases.
        """
        if self.root is None:
            return
        with self._lock:
            for name, coll in self._collections.items():
                path = self._collection_path(name)
                tmp = path + ".tmp"
                with open(tmp, "w", encoding="utf-8") as handle:
                    for doc in coll.all_documents():
                        handle.write(stable_dumps(doc))
                        handle.write("\n")
                os.replace(tmp, path)

    def _load_all(self) -> None:
        for entry in sorted(os.listdir(self.root)):
            if not entry.endswith(_COLLECTION_SUFFIX):
                continue
            name = entry[: -len(_COLLECTION_SUFFIX)]
            coll = self.collection(name)
            with open(
                os.path.join(self.root, entry), "r", encoding="utf-8"
            ) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        coll.insert_one(loads(line))

    # ---------------------------------------------------------------- stats

    def describe(self) -> Dict[str, int]:
        """Return a {collection: document count} summary."""
        with self._lock:
            return {
                name: len(coll) for name, coll in self._collections.items()
            }
