"""A named set of collections backed by the embedded storage engine.

Mirrors the role MongoDB plays for gem5art: a durable home for artifact and
run documents.  A database can live purely in memory (tests) or be bound to
a directory, where each collection persists through the
:mod:`repro.db.engine` write-ahead log + sealed segments and blobs live
under ``files/`` via the :class:`~repro.db.filestore.FileStore`::

    <root>/
        engine/<collection>/   # WAL + segments + manifest per collection
        files/<xx>/<digest>    # sharded content-addressed blobs
        <name>.jsonl           # legacy layout, imported on open then
        <name>.jsonl.imported  # renamed aside as the completion marker

Unlike the original JSON-lines layout (rewritten wholesale by ``save()``),
every acknowledged write is WAL-logged immediately; ``save()`` degrades to
an fsync barrier and reopening a database is crash recovery: segments
replay strictly checksummed, the WAL tail is healed, and whatever a
``durability=strict`` writer acknowledged is guaranteed back.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional

from repro.common.errors import ValidationError
from repro.common.jsonutil import loads
from repro.db.collection import Collection
from repro.db.engine import DURABILITY_MODES, StorageEngine
from repro.db.engine.wal import fsync_dir
from repro.db.filestore import FileStore

_COLLECTION_SUFFIX = ".jsonl"
_IMPORTED_SUFFIX = ".imported"
_ENGINE_DIR = "engine"


class Database:
    """A collection container, optionally bound to an on-disk directory."""

    def __init__(
        self,
        name: str = "repro",
        root: Optional[str] = None,
        durability: str = "batch",
        engine_options: Optional[Dict[str, Any]] = None,
    ):
        if not name:
            raise ValidationError("database name must be non-empty")
        if durability not in DURABILITY_MODES:
            raise ValidationError(
                f"unknown durability {durability!r}; "
                f"one of {DURABILITY_MODES}"
            )
        self.name = name
        self.root = root
        self.durability = durability
        self._collections: Dict[str, Collection] = {}
        self._lock = threading.RLock()
        self._files: Optional[FileStore] = None
        self._engine: Optional[StorageEngine] = None
        self._recovery: Dict[str, Dict[str, Any]] = {}
        if root is not None:
            os.makedirs(root, exist_ok=True)
            self._files = FileStore(os.path.join(root, "files"))
            self._engine = StorageEngine(
                os.path.join(root, _ENGINE_DIR),
                durability=durability,
                **(engine_options or {}),
            )
            self._recover()
            self._import_legacy_jsonl()

    # ---------------------------------------------------------- collections

    def collection(self, name: str) -> Collection:
        """Return (creating on first use) the named collection."""
        with self._lock:
            if name not in self._collections:
                store = (
                    self._engine.store(name)
                    if self._engine is not None
                    else None
                )
                self._collections[name] = Collection(name, store=store)
            return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> List[str]:
        with self._lock:
            return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        with self._lock:
            self._collections.pop(name, None)
            if self._engine is not None:
                self._engine.drop(name)
            if self.root is not None:
                legacy = self._legacy_path(name)
                for path in (legacy, legacy + _IMPORTED_SUFFIX):
                    if os.path.exists(path):
                        os.remove(path)

    # ---------------------------------------------------------------- files

    @property
    def files(self) -> FileStore:
        """The blob store (GridFS stand-in); memory databases get a
        temporary in-memory store."""
        if self._files is None:
            self._files = FileStore(None)
        return self._files

    # ---------------------------------------------------------- persistence

    def save(self) -> None:
        """Force every buffered WAL byte to stable storage.

        Writes are already logged as they happen; this is an fsync
        barrier (useful under ``durability=none|batch``).  A no-op for
        purely in-memory databases.
        """
        if self._engine is not None:
            self._engine.flush()

    def close(self) -> None:
        """Stop the compaction thread and close the WAL writers."""
        if self._engine is not None:
            self._engine.close()

    def compact(self) -> Dict[str, Dict[str, Any]]:
        """Seal + merge every collection's segments right now.

        The background compactor does this on its own cadence; the
        explicit form exists for the CLI and for shutdown hygiene.
        Returns per-collection merge stats ({} for memory databases).
        """
        if self._engine is None:
            return {}
        return self._engine.compact_all()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------ recovery

    def _recover(self) -> None:
        """Replay every persisted collection out of the engine."""
        for name in self._engine.existing_names():
            store = self._engine.store(name)
            documents, indexes, report = store.load()
            coll = Collection(name, store=store)
            coll.load_replayed(documents, indexes)
            self._collections[name] = coll
            self._recovery[name] = report

    def _import_legacy_jsonl(self) -> None:
        """One-shot migration from the pre-engine JSON-lines layout.

        Crash-atomic: the legacy file only counts as consumed once the
        import finished — the imported records are fsynced, then the
        file is renamed aside to ``<name>.jsonl.imported`` as the
        completion marker.  A crash mid-import therefore leaves the
        ``.jsonl`` behind next to partial engine state; the next open
        detects that pairing, discards the partial state, and redoes
        the whole import instead of silently keeping half a migration.
        """
        for entry in sorted(os.listdir(self.root)):
            if not entry.endswith(_COLLECTION_SUFFIX):
                continue
            name = entry[: -len(_COLLECTION_SUFFIX)]
            if name in self._collections:
                # A completed import renames the legacy file away, so
                # engine state plus a lingering .jsonl can only mean an
                # earlier import crashed partway through.
                self._engine.drop(name)
                self._collections.pop(name, None)
                self._recovery.pop(name, None)
            coll = self.collection(name)
            path = os.path.join(self.root, entry)
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        coll.insert_one(loads(line))
            self._engine.store(name).flush()
            os.replace(path, path + _IMPORTED_SUFFIX)
            fsync_dir(self.root)

    def _legacy_path(self, name: str) -> str:
        return os.path.join(self.root, name + _COLLECTION_SUFFIX)

    def recovery_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-collection crash-recovery summary from this open:
        records replayed, WAL records, torn bytes truncated."""
        with self._lock:
            return {k: dict(v) for k, v in self._recovery.items()}

    # ---------------------------------------------------------------- stats

    def describe(self) -> Dict[str, int]:
        """Return a {collection: document count} summary."""
        with self._lock:
            return {
                name: len(coll) for name, coll in self._collections.items()
            }

    def storage_stats(self) -> Dict[str, Any]:
        """Engine + blob-store shape for ``repro db stats``."""
        with self._lock:
            collections: Dict[str, Dict[str, Any]] = {}
            engine_stats = (
                self._engine.stats() if self._engine is not None else {}
            )
            for name, coll in self._collections.items():
                entry: Dict[str, Any] = {
                    "documents": len(coll),
                    "indexes": coll.index_fields(),
                }
                entry.update(
                    engine_stats.get(
                        name,
                        {"segments": 0, "segment_bytes": 0, "wal_bytes": 0},
                    )
                )
                collections[name] = entry
        stats: Dict[str, Any] = {
            "durability": self.durability if self.root else "memory",
            "collections": collections,
        }
        if self._files is not None:
            stats["filestore"] = self._files.stats()
        return stats
