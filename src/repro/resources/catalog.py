"""The gem5-resources catalog — the paper's Table I.

Every row of Table I is a :class:`Resource` with its type, description,
licensing rule and a builder that materializes the actual component:
disk images come from Packer templates, kernels from the kernel model,
the GPU environment from :mod:`repro.resources.environment`, and the GPU
benchmark suites from the workload registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import NotFoundError, ValidationError
from repro.guest.kernels import (
    BOOT_TEST_KERNEL_VERSIONS,
    build_kernel_binary,
    get_kernel,
)
from repro.packer import build as packer_build
from repro.resources import templates
from repro.resources.environment import GCNDockerEnvironment
from repro.gpu.workloads import WORKLOADS_BY_SUITE, get_gpu_workload

#: gem5 releases the catalog tracks compatibility for
#: (http://resources.gem5.org in the paper).
TRACKED_GEM5_VERSIONS = ("20.1.0.4", "21.0")


@dataclass(frozen=True)
class Resource:
    """One Table I row."""

    name: str
    rtype: str  # "Benchmark", "Test", "Kernel", "Application", ...
    description: str
    #: Whether pre-built binaries/images may be distributed (SPEC may not).
    redistributable: bool = True
    #: Which gem5 builds the resource targets (None == any).
    requires_isa: Optional[str] = None


def _gpu_suite_builder(suite: str) -> Callable:
    def build(**_kwargs) -> List[object]:
        return [
            get_gpu_workload(name)
            for name in WORKLOADS_BY_SUITE[suite]
        ]

    return build


def _image_builder(template_fn: Callable) -> Callable:
    def build(distro: str = "ubuntu-18.04", **_kwargs):
        return packer_build(template_fn(distro))

    return build


def _spec_builder(version: str) -> Callable:
    def build(iso_path: str = None, distro: str = "ubuntu-18.04", **_kw):
        if iso_path is None:
            raise ValidationError(
                f"spec-{version}: licensing forbids distributing "
                "pre-made disk images; supply iso_path= pointing at your "
                "licensed SPEC media (the build scripts are provided)"
            )
        return packer_build(
            templates.spec_template(version, iso_path, distro)
        )

    return build


def _linux_kernel_builder(**kwargs):
    versions = kwargs.get("versions", BOOT_TEST_KERNEL_VERSIONS)
    return {
        version: build_kernel_binary(get_kernel(version))
        for version in versions
    }


def _riscv_fs_builder(**_kwargs):
    kernel = get_kernel("5.4.49")
    bbl = b"BBL riscv-pk with payload " + build_kernel_binary(
        kernel, config="riscv-defconfig"
    )
    return {
        "bbl": bbl,
        "kernel_version": kernel.version,
        "documentation": (
            "berkeley boot loader with a Linux kernel payload for a "
            "riscv full-system target"
        ),
    }


def _gcn_docker_builder(**_kwargs):
    return GCNDockerEnvironment()


@dataclass(frozen=True)
class Gem5Test:
    """One entry of the 'gem5 tests' resource."""

    name: str
    description: str
    requires_isa: Optional[str] = None


GEM5_TESTS = (
    Gem5Test(
        "asmtest",
        "a collection of RISC-V tests for instructions and syscalls",
        requires_isa="RISCV",
    ),
    Gem5Test(
        "insttest",
        "tests for SPARC instructions",
        requires_isa=None,  # SPARC builds are not modelled; runs anywhere
    ),
    Gem5Test(
        "riscv-tests",
        "RISC-V processor unit tests",
        requires_isa="RISCV",
    ),
    Gem5Test(
        "simple",
        "tests for m5ops and ARM semi-hosting",
        requires_isa=None,
    ),
    Gem5Test(
        "square",
        "test for squaring a vector of floats on AMD GPU",
        requires_isa="GCN3_X86",
    ),
)


def _gem5_tests_builder(**_kwargs):
    return list(GEM5_TESTS)


#: The Table I catalog.  Descriptions paraphrase the paper's table.
_CATALOG: Dict[str, Resource] = {}
_BUILDERS: Dict[str, Callable] = {}


def _register(resource: Resource, builder: Callable) -> None:
    _CATALOG[resource.name] = resource
    _BUILDERS[resource.name] = builder


_register(
    Resource(
        "boot-exit",
        "Benchmark / Test",
        "scripts and binaries completing and exiting a Linux boot with "
        "an Ubuntu 18.04 server user-land; the FS-mode test suite",
    ),
    _image_builder(templates.boot_exit_template),
)
_register(
    Resource(
        "gapbs",
        "Benchmark",
        "GAP Benchmark Suite (graph algorithms) runnable in FS mode",
    ),
    _image_builder(templates.gapbs_template),
)
_register(
    Resource(
        "hack-back",
        "Benchmark",
        "checkpoint after boot, then execute a host-provided script",
    ),
    _image_builder(templates.hack_back_template),
)
_register(
    Resource(
        "linux-kernel",
        "Kernel",
        "Linux kernel configurations and compiled kernels",
    ),
    _linux_kernel_builder,
)
_register(
    Resource(
        "npb",
        "Benchmark",
        "NAS Parallel Benchmarks runnable in FS mode",
    ),
    _image_builder(templates.npb_template),
)
_register(
    Resource(
        "parsec",
        "Benchmark",
        "Princeton Application Repository for Shared-Memory Computers "
        "(PARSEC) runnable in FS mode",
    ),
    _image_builder(templates.parsec_template),
)
_register(
    Resource(
        "riscv-fs",
        "Test",
        "riscv bbl (berkeley boot loader) with Linux payload and disk "
        "image for riscv full-system simulation",
        requires_isa="RISCV",
    ),
    _riscv_fs_builder,
)
_register(
    Resource(
        "spec-2006",
        "Benchmark",
        "SPEC CPU 2006 build scripts; licensing forbids pre-made images",
        redistributable=False,
    ),
    _spec_builder("2006"),
)
_register(
    Resource(
        "spec-2017",
        "Benchmark",
        "SPEC CPU 2017 build scripts; licensing forbids pre-made images",
        redistributable=False,
    ),
    _spec_builder("2017"),
)
_register(
    Resource(
        "GCN-docker",
        "Environment",
        "docker image with ROCm 1.6 and GCC 5.4 to build and run GPU "
        "applications on the GCN3_X86 gem5 variant",
        requires_isa="GCN3_X86",
    ),
    _gcn_docker_builder,
)
_register(
    Resource(
        "HeteroSync",
        "Benchmark",
        "fine-grained synchronization microbenchmarks for tightly-"
        "coupled GPUs (GCN3_X86)",
        requires_isa="GCN3_X86",
    ),
    _gpu_suite_builder("HeteroSync"),
)
_register(
    Resource(
        "DNNMark",
        "Benchmark",
        "primitive DNN-layer benchmark framework (GCN3_X86)",
        requires_isa="GCN3_X86",
    ),
    _gpu_suite_builder("DNNMark"),
)
_register(
    Resource(
        "halo-finder",
        "Application",
        "GPU-accelerated HACC halo finder (DoE cosmology proxy)",
        requires_isa="GCN3_X86",
    ),
    _gpu_suite_builder("halo-finder"),
)
_register(
    Resource(
        "Pennant",
        "Application",
        "unstructured-mesh mini-app for advanced architecture research",
        requires_isa="GCN3_X86",
    ),
    _gpu_suite_builder("pennant"),
)
_register(
    Resource(
        "LULESH",
        "Application",
        "DOE hydrodynamics proxy application",
        requires_isa="GCN3_X86",
    ),
    _gpu_suite_builder("lulesh"),
)
_register(
    Resource(
        "hip-samples",
        "Application",
        "HIP cookbook samples showcasing GPU programming concepts",
        requires_isa="GCN3_X86",
    ),
    _gpu_suite_builder("hip-samples"),
)
_register(
    Resource(
        "gem5 tests",
        "Test",
        "asmtest, insttest, riscv-tests, simple (m5ops), square (GPU)",
    ),
    _gem5_tests_builder,
)


def list_resources() -> List[Resource]:
    """All Table I rows, in catalog order."""
    return list(_CATALOG.values())


def get_resource(name: str) -> Resource:
    if name not in _CATALOG:
        raise NotFoundError(
            f"unknown resource {name!r}; known: {sorted(_CATALOG)}"
        )
    return _CATALOG[name]


def build_resource(name: str, **kwargs):
    """Materialize a resource (disk image, kernel set, environment, or
    workload list, depending on its kind)."""
    get_resource(name)  # raises on unknown
    return _BUILDERS[name](**kwargs)


def status_matrix(gem5_version: str = "20.1.0.4") -> Dict[str, str]:
    """Per-resource working status against a gem5 release — the
    http://resources.gem5.org page as a function."""
    if gem5_version not in TRACKED_GEM5_VERSIONS:
        return {resource.name: "untested" for resource in list_resources()}
    status = {}
    for resource in list_resources():
        if resource.requires_isa == "GCN3_X86" and gem5_version < "21.0":
            status[resource.name] = "requires gem5 21.0 (GCN3_X86)"
        else:
            status[resource.name] = "supported"
    return status
