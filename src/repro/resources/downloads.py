"""The resource repository — resources.gem5.org as an object.

The paper distributes *pre-built* resources ("providing pre-made
binaries") so users need not build disk images themselves, with one
exception: licensing forbids shipping SPEC images.  A
:class:`ResourceRepository` models that service for the offline world: it
serves built resource payloads out of a local content-verified cache,
building on first request (the "publisher" side) and loading thereafter
(the "downloader" side).  Cache entries carry their content hash and are
verified on every load, so a corrupted download can never be used
silently.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.common.errors import NotFoundError, ValidationError
from repro.common.hashing import md5_bytes, md5_text
from repro.common.jsonutil import canonical_dumps
from repro.guest.kernels import build_kernel_binary, get_kernel
from repro.resources.catalog import build_resource, get_resource
from repro.vfs.image import DiskImage

#: Resources served as pre-built disk images.
IMAGE_RESOURCES = (
    "boot-exit",
    "gapbs",
    "hack-back",
    "npb",
    "parsec",
)


class ResourceRepository:
    """A local, content-verified cache of pre-built resources."""

    def __init__(self, cache_dir: str):
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)
        self.builds = 0  # cache misses (local builds performed)
        self.hits = 0

    # ------------------------------------------------------------ images

    def list_available_images(self) -> List[str]:
        return list(IMAGE_RESOURCES)

    def fetch_disk_image(
        self, name: str, distro: str = "ubuntu-18.04"
    ) -> DiskImage:
        """Return the pre-built disk image for a resource.

        SPEC images are never served (the licensing rule); request the
        template via :func:`repro.resources.build_resource` with your
        licensed media instead.
        """
        resource = get_resource(name)
        if not resource.redistributable:
            raise ValidationError(
                f"{name}: pre-built images are not distributable "
                "(licensing); build locally from your own media"
            )
        if name not in IMAGE_RESOURCES:
            raise NotFoundError(
                f"{name} is not served as a disk image; available: "
                f"{list(IMAGE_RESOURCES)}"
            )
        key = md5_text(canonical_dumps({"image": name, "distro": distro}))
        path = os.path.join(self.cache_dir, f"{key}.img.json")
        digest_path = path + ".md5"
        if os.path.isfile(path) and os.path.isfile(digest_path):
            image = self._load_verified(path, digest_path)
            self.hits += 1
            return image
        image = build_resource(name, distro=distro).image
        image.save(path)
        with open(path, "rb") as handle:
            digest = md5_bytes(handle.read())
        with open(digest_path, "w", encoding="utf-8") as handle:
            handle.write(digest)
        self.builds += 1
        return image

    @staticmethod
    def _load_verified(path: str, digest_path: str) -> DiskImage:
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(digest_path, "r", encoding="utf-8") as handle:
            expected = handle.read().strip()
        if md5_bytes(payload) != expected:
            raise ValidationError(
                f"cached resource {os.path.basename(path)} failed its "
                "integrity check; delete the cache entry and re-fetch"
            )
        return DiskImage.load(path)

    # ----------------------------------------------------------- kernels

    def fetch_kernel(self, version: str, config: str = "default") -> bytes:
        """Return a pre-built vmlinux, cached like the images."""
        kernel = get_kernel(version)  # raises for unknown versions
        key = md5_text(f"kernel/{version}/{config}")
        path = os.path.join(self.cache_dir, f"{key}.vmlinux")
        if os.path.isfile(path):
            self.hits += 1
            with open(path, "rb") as handle:
                return handle.read()
        payload = build_kernel_binary(kernel, config)
        with open(path, "wb") as handle:
            handle.write(payload)
        self.builds += 1
        return payload

    # ------------------------------------------------------------- cache

    def cache_info(self) -> Dict[str, int]:
        entries = [
            entry
            for entry in os.listdir(self.cache_dir)
            if not entry.endswith(".md5")
        ]
        return {
            "entries": len(entries),
            "builds": self.builds,
            "hits": self.hits,
        }

    def clear_cache(self) -> int:
        removed = 0
        for entry in os.listdir(self.cache_dir):
            os.remove(os.path.join(self.cache_dir, entry))
            removed += 1
        return removed
