"""GEM5 RESOURCES — the paper's second contribution.

A curated catalog of known-good simulation components (Table I): disk
images pre-loaded with benchmark suites, kernels, tests, and the GPU build
environment, each buildable from its recipe so researchers "can jump
straight into running simulations rather than having to spend valuable
time creating them".
"""

from repro.resources.catalog import (
    Resource,
    Gem5Test,
    GEM5_TESTS,
    TRACKED_GEM5_VERSIONS,
    list_resources,
    get_resource,
    build_resource,
    status_matrix,
)
from repro.resources.environment import GCNDockerEnvironment
from repro.resources.downloads import ResourceRepository
from repro.resources import templates

__all__ = [
    "Resource",
    "Gem5Test",
    "GEM5_TESTS",
    "TRACKED_GEM5_VERSIONS",
    "list_resources",
    "get_resource",
    "build_resource",
    "status_matrix",
    "GCNDockerEnvironment",
    "ResourceRepository",
    "templates",
]
