"""Packer templates for the disk-image resources.

gem5-resources provides, for every disk image, "the corresponding Packer
script, a Ubuntu preseed configuration, a benchmark installation script and
other resources required for building".  These builders produce exactly
that: a validated :class:`~repro.packer.Template` per (resource, distro),
ready for :func:`repro.packer.build`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.packer.template import Template
from repro.sim.workload.parsec import PARSEC_APPS
from repro.sim.workload.spec import SPEC_BENCHMARKS

#: Benchmark suite contents used to generate install scripts.
NPB_APPS = ("bt", "cg", "ep", "ft", "is", "lu", "mg", "sp")
GAPBS_APPS = ("bc", "bfs", "cc", "pr", "sssp", "tc")


def _base_builder(image_name: str, distro: str) -> dict:
    return {"type": "ubuntu", "distro": distro, "image_name": image_name}


def _suite_template(
    suite: str,
    apps: Sequence[str],
    distro: str,
    extra_packages: Sequence[str] = (),
    run_script: Optional[str] = None,
) -> Template:
    inline = [f"mkdir -p /home/gem5/{suite}"]
    inline += [f"install-package {package}" for package in extra_packages]
    inline += [f"build-benchmark {suite} {app}" for app in apps]
    provisioners = [
        {"type": "preseed", "hostname": f"{suite}-guest"},
        {"type": "shell", "inline": inline},
    ]
    if run_script is not None:
        provisioners.append(
            {
                "type": "file",
                "destination": f"/home/gem5/{suite}/runscript.sh",
                "content": run_script,
                "executable": True,
            }
        )
    return Template(
        builder=_base_builder(f"{suite}-{distro}", distro),
        provisioners=provisioners,
    )


def parsec_template(distro: str = "ubuntu-18.04") -> Template:
    """The PARSEC disk image used by use-case 1 (all 13 apps installed;
    the broken three fail at run time like the real suite)."""
    return _suite_template(
        "parsec",
        sorted(PARSEC_APPS),
        distro,
        extra_packages=("parsec-deps", "libx11-dev"),
        run_script=(
            "#!/bin/sh\n"
            "# parsecmgmt -a run -p $1 -i $2 -n $3\n"
            "/home/gem5/parsec/$1 --input $2 --threads $3\n"
        ),
    )


def npb_template(distro: str = "ubuntu-18.04") -> Template:
    return _suite_template(
        "npb",
        NPB_APPS,
        distro,
        extra_packages=("gfortran",),
        run_script="#!/bin/sh\n/home/gem5/npb/$1.$2.x\n",
    )


def gapbs_template(distro: str = "ubuntu-18.04") -> Template:
    return _suite_template(
        "gapbs",
        GAPBS_APPS,
        distro,
        run_script="#!/bin/sh\n/home/gem5/gapbs/$1 -g $2 -n $3\n",
    )


def boot_exit_template(distro: str = "ubuntu-18.04") -> Template:
    """The boot-exit image: boots, prints, and exits via the m5 op."""
    return Template(
        builder=_base_builder(f"boot-exit-{distro}", distro),
        provisioners=[
            {"type": "preseed", "hostname": "boot-exit-guest"},
            {
                "type": "file",
                "destination": "/home/gem5/exit.sh",
                "content": "#!/bin/sh\nm5 exit\n",
                "executable": True,
            },
        ],
    )


def hack_back_template(distro: str = "ubuntu-18.04") -> Template:
    """The hack-back image: checkpoint after boot, then run a host
    script (the hack-back trick)."""
    return Template(
        builder=_base_builder(f"hack-back-{distro}", distro),
        provisioners=[
            {"type": "preseed", "hostname": "hack-back-guest"},
            {
                "type": "file",
                "destination": "/home/gem5/hack_back_ckpt.rcS",
                "content": (
                    "#!/bin/sh\n"
                    "m5 checkpoint\n"
                    "m5 readfile > /tmp/host-script.sh\n"
                    "sh /tmp/host-script.sh\n"
                ),
                "executable": True,
            },
        ],
    )


def spec_template(
    spec_version: str, iso_path: Optional[str], distro: str = "ubuntu-18.04"
) -> Template:
    """SPEC CPU templates require user-supplied licensed media.

    Raises at validation time when ``iso_path`` is missing — this is the
    licensing rule the paper describes (scripts are distributed, media and
    pre-built images are not).
    """
    builder = {
        "type": "ubuntu-iso",
        "distro": distro,
        "image_name": f"spec-{spec_version}-{distro}",
    }
    if iso_path is not None:
        builder["iso_path"] = iso_path
    suite = f"spec-{spec_version}"
    install = [
        f"mkdir -p /home/gem5/{suite}",
        "install-package build-essential",
    ]
    install += [
        f"build-benchmark {suite} {name}"
        for name in sorted(SPEC_BENCHMARKS[suite])
    ]
    return Template(
        builder=builder,
        provisioners=[
            {"type": "preseed", "hostname": f"spec{spec_version}-guest"},
            {"type": "shell", "inline": install},
        ],
    )
