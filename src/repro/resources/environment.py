"""Environment resources — the GCN3 GPU docker image.

Section V-A: simulating GPU applications on the GCN3 model requires a
precisely pinned userspace stack (ROCm 1.6, GCC 5.4, HIP/MIOpen/rocBLAS of
matching versions); getting it installed by hand is notoriously painful, so
gem5-resources ships a Docker image that *is* the environment.

:class:`GCNDockerEnvironment` models that: a pinned software manifest, a
dockerfile rendering, a stack validation check, and the list of workloads
it can build — which is how the GPU use case discovers its applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ValidationError
from repro.common.hashing import md5_text
from repro.gpu.workloads import WORKLOADS_BY_SUITE

#: The stack the GCN3 model requires (the paper's stated versions).
REQUIRED_STACK = {
    "rocm": "1.6",
    "gcc": "5.4",
    "hip": "1.6",
    "miopen": "1.6",
    "rocblas": "1.6",
}

#: Suites buildable inside the environment (Section V-A's list).
GPU_SUITES = (
    "hip-samples",
    "HeteroSync",
    "DNNMark",
    "halo-finder",
    "lulesh",
    "pennant",
)


@dataclass
class GCNDockerEnvironment:
    """The gcn-gpu docker image as an object."""

    name: str = "gcn-gpu"
    stack: Dict[str, str] = field(
        default_factory=lambda: dict(REQUIRED_STACK)
    )

    def validate_stack(self) -> None:
        """Fail loudly when any component is missing or mispinned —
        modelling the 'frustrated forum user' failure mode the docker
        image exists to prevent."""
        for component, version in REQUIRED_STACK.items():
            actual = self.stack.get(component)
            if actual is None:
                raise ValidationError(
                    f"GPU environment is missing {component} "
                    f"(need {version})"
                )
            if actual != version:
                raise ValidationError(
                    f"GPU environment has {component} {actual}; the GCN3 "
                    f"model requires {version}"
                )

    def buildable_workloads(self) -> List[str]:
        """Names of every GPU workload this environment can compile."""
        self.validate_stack()
        names: List[str] = []
        for suite in GPU_SUITES:
            names.extend(WORKLOADS_BY_SUITE.get(suite, []))
        return sorted(names)

    def dockerfile(self) -> str:
        """Render the dockerfile gem5-resources would ship."""
        lines = ["FROM ubuntu:16.04"]
        for component, version in sorted(self.stack.items()):
            lines.append(f"RUN install-{component} --version {version}")
        lines.append('ENV HCC_AMDGPU_TARGET="gfx801"')
        lines.append('WORKDIR "/gem5-resources"')
        return "\n".join(lines)

    def image_hash(self) -> str:
        """Stable identity for artifact registration."""
        return md5_text(self.dockerfile())
