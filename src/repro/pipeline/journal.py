"""The pipeline journal — provenance for every stage decision.

Every pipeline run writes two kinds of documents into the
``pipeline_runs`` collection:

- one **pipeline** document per ``repro reproduce`` invocation: manifest
  fingerprint, status, and an ordered *decision trail* (stage executed /
  cache hit / gate failed / backtracked / finished) — the record
  ``repro pipeline explain`` replays;
- one **stage** document per stage attempt: the stage fingerprint, the
  attempt number, what happened (``executed`` / ``cache_hit`` /
  ``error``), gate verdicts, and the stage outputs — both inline (for
  queries) and content-addressed into the FileStore (the blob id *is*
  the SHA-256 of the canonical outputs JSON).

The stage documents double as the cross-run cache: a later pipeline run
that computes the same stage fingerprint adopts the recorded outputs
instead of re-executing, after re-downloading the outputs blob so the
FileStore's integrity check vouches for it.  A corrupt or missing blob
degrades to re-execution — same posture as the run cache.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import (
    CorruptBlobError,
    NotFoundError,
    ReproError,
)
from repro.common.hashing import sha256_text
from repro.common.ids import new_uuid
from repro.common.jsonutil import canonical_dumps, loads
from repro.common.timeutil import iso_now
from repro.art.db import ArtifactDB
from repro.pipeline.manifest import (
    MANIFEST_SCHEMA_VERSION,
    Manifest,
    StageSpec,
)

PIPELINE_RUNS = "pipeline_runs"


def stage_fingerprint(
    stage: StageSpec,
    input_digests: Dict[str, str],
    attempt: int,
) -> str:
    """Content address of one stage attempt.

    Covers the stage's own declaration (kind, params, gates, wiring),
    the outputs digest of every upstream stage, and the attempt number.
    A changed upstream artifact therefore changes exactly its
    dependents' fingerprints — the invalidation cascade falls out of the
    hash chain — and a backtrack (bumped attempt) can never alias the
    attempt it is retrying.
    """
    return sha256_text(
        canonical_dumps(
            {
                "schema": MANIFEST_SCHEMA_VERSION,
                "stage": stage.canonical_document(),
                "inputs": dict(input_digests),
                "attempt": attempt,
            }
        )
    )


class PipelineJournal:
    """Reads and writes the ``pipeline_runs`` collection."""

    def __init__(self, db: ArtifactDB):
        self.db = db
        self.collection = db.database.collection(PIPELINE_RUNS)
        self.collection.create_index("doc_type")
        self.collection.create_index("fingerprint")
        self.collection.create_index("pipeline_id")

    # ------------------------------------------------------ pipeline docs

    def begin_pipeline(self, manifest: Manifest) -> str:
        pipeline_id = new_uuid()
        self.collection.insert_one(
            {
                "_id": pipeline_id,
                "doc_type": "pipeline",
                "pipeline": manifest.name,
                "manifest_fingerprint": manifest.fingerprint(),
                "manifest_path": manifest.source_path,
                "stage_order": manifest.execution_order(),
                "status": "running",
                "trail": [],
                "counts": {},
                "started_at_wall": iso_now(),
                "finished_at_wall": None,
            }
        )
        return pipeline_id

    def append_trail(self, pipeline_id: str, event: Dict[str, Any]) -> None:
        """Append one decision to the pipeline's ordered trail."""
        entry = dict(event)
        entry["at_wall"] = iso_now()
        self.collection.update_one(
            {"_id": pipeline_id}, {"$push": {"trail": entry}}
        )

    def finish_pipeline(
        self,
        pipeline_id: str,
        status: str,
        counts: Dict[str, int],
        error: Optional[str] = None,
    ) -> None:
        update: Dict[str, Any] = {
            "status": status,
            "counts": dict(counts),
            "finished_at_wall": iso_now(),
        }
        if error is not None:
            update["error"] = error
        self.collection.update_one(
            {"_id": pipeline_id}, {"$set": update}
        )

    def get_pipeline(self, pipeline_id: str) -> Dict[str, Any]:
        doc = self.collection.find_one(
            {"_id": pipeline_id, "doc_type": "pipeline"}
        )
        if doc is None:
            raise NotFoundError(f"no pipeline run with id {pipeline_id}")
        return doc

    def pipelines(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """All pipeline documents, oldest first."""
        query: Dict[str, Any] = {"doc_type": "pipeline"}
        if name is not None:
            query["pipeline"] = name
        return self.collection.find(
            query, sort=[("started_at_wall", 1), ("_id", 1)]
        )

    def latest_pipeline(
        self, name: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        docs = self.pipelines(name)
        return docs[-1] if docs else None

    # --------------------------------------------------------- stage docs

    def store_outputs(self, outputs: Dict[str, Any]) -> str:
        """Content-address a stage's outputs into the FileStore.

        The returned blob id is the SHA-256 digest of the canonical
        JSON, so equal outputs share one blob across stages and runs.
        """
        payload = canonical_dumps(outputs).encode("utf-8")
        return self.db.upload_file(payload, filename="stage-outputs.json")

    def load_outputs(self, blob_id: str) -> Dict[str, Any]:
        """Re-download and parse an outputs blob (integrity-checked)."""
        return loads(self.db.download_file(blob_id).decode("utf-8"))

    def record_stage(
        self,
        pipeline_id: str,
        pipeline_name: str,
        stage: StageSpec,
        fingerprint: str,
        attempt: int,
        seq: int,
        action: str,
        outputs: Optional[Dict[str, Any]],
        outputs_blob: Optional[str],
        verdicts: List[Dict[str, Any]],
        gates_ok: bool,
        cache_source: Optional[str] = None,
        error: Optional[str] = None,
    ) -> str:
        """Journal one stage attempt; returns the stage document id."""
        doc_id = new_uuid()
        self.collection.insert_one(
            {
                "_id": doc_id,
                "doc_type": "stage",
                "pipeline_id": pipeline_id,
                "pipeline": pipeline_name,
                "stage": stage.name,
                "kind": stage.kind,
                "seq": seq,
                "fingerprint": fingerprint,
                "attempt": attempt,
                "action": action,
                "outputs": outputs,
                "outputs_blob": outputs_blob,
                "verdicts": verdicts,
                "gates_ok": gates_ok,
                "cache_source": cache_source,
                "error": error,
                "recorded_at_wall": iso_now(),
            }
        )
        return doc_id

    def stages_of(self, pipeline_id: str) -> List[Dict[str, Any]]:
        """Stage documents of one pipeline run, in decision order."""
        return self.collection.find(
            {"doc_type": "stage", "pipeline_id": pipeline_id},
            sort=[("seq", 1)],
        )

    def stage_history(self, stage_name: str) -> List[Dict[str, Any]]:
        """Every recorded attempt of a named stage, across runs."""
        return self.collection.find(
            {"doc_type": "stage", "stage": stage_name},
            sort=[("recorded_at_wall", 1), ("seq", 1)],
        )

    # ------------------------------------------------------------- cache

    def evict_stage_records(self, stage_names: List[str]) -> int:
        """Drop every journaled attempt of the named stages.

        ``repro pipeline rerun --stage X`` uses this to force X and its
        dependents to re-execute even when their fingerprints (hence
        cached outputs) are unchanged — the operator override for "I do
        not trust that result".  Returns the number of records dropped.
        """
        evicted = 0
        for name in stage_names:
            evicted += self.collection.delete_many(
                {"doc_type": "stage", "stage": name}
            )
        return evicted

    def find_cached(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """A reusable stage record for this fingerprint, or None.

        Only gate-passing, successfully executed (or previously adopted)
        records qualify — a failed attempt is never a cache hit.  The
        outputs blob is re-downloaded so the FileStore's content check
        vouches for it; a corrupt or evicted blob disqualifies the
        record (re-execute) instead of propagating garbage downstream.
        """
        candidates = self.collection.find(
            {
                "doc_type": "stage",
                "fingerprint": fingerprint,
                "gates_ok": True,
            },
            sort=[("recorded_at_wall", 1), ("seq", 1)],
        )
        for doc in reversed(candidates):
            blob_id = doc.get("outputs_blob")
            if not blob_id:
                continue
            try:
                outputs = self.load_outputs(blob_id)
            except (CorruptBlobError, NotFoundError, ReproError):
                continue
            except (ValueError, UnicodeDecodeError):
                continue
            doc["outputs"] = outputs
            return doc
        return None
