"""One-click reproduction pipelines (``repro reproduce``).

The pipeline layer turns a paper reproduction into a declarative DAG:
a YAML/JSON **manifest** names the stages (register artifacts → boot
sweep → analyze → render), the **executor** walks them in deterministic
topological order, every stage's outputs are **content-addressed** into
the FileStore, and the **journal** records a decision trail — executed,
cache hit, gate failed, backtracked — that ``repro pipeline explain``
replays.  A changed upstream artifact invalidates exactly its
dependents (the fingerprint chain), an unchanged stage is a cache hit,
and a failed **validation gate** can backtrack to a named earlier stage
with bumped attempt provenance, bounded by ``max_backtracks``.
"""

from repro.pipeline.manifest import (
    EXECUTION_DEFAULTS,
    KNOWN_STAGE_KINDS,
    MANIFEST_SCHEMA_VERSION,
    Manifest,
    OnFail,
    StageSpec,
    load_manifest,
    parse_manifest_text,
)
from repro.pipeline.gates import (
    GATE_KINDS,
    evaluate_gate,
    evaluate_gates,
    validate_gate_spec,
)
from repro.pipeline.journal import (
    PIPELINE_RUNS,
    PipelineJournal,
    stage_fingerprint,
)
from repro.pipeline.stages import STAGE_KINDS, StageContext
from repro.pipeline.executor import run_pipeline

__all__ = [
    "EXECUTION_DEFAULTS",
    "GATE_KINDS",
    "KNOWN_STAGE_KINDS",
    "MANIFEST_SCHEMA_VERSION",
    "Manifest",
    "OnFail",
    "PIPELINE_RUNS",
    "PipelineJournal",
    "STAGE_KINDS",
    "StageContext",
    "StageSpec",
    "evaluate_gate",
    "evaluate_gates",
    "load_manifest",
    "parse_manifest_text",
    "run_pipeline",
    "stage_fingerprint",
    "validate_gate_spec",
]
