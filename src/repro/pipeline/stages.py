"""Stage implementations — the executable half of a manifest.

Each stage kind is a function from a :class:`StageContext` to a plain
outputs dict.  Outputs must be JSON-serializable: the executor content-
addresses them into the FileStore, and their digest feeds every
dependent stage's fingerprint — so "what this stage produced" and "what
invalidates my dependents" are the same value by construction.

Kinds:

- ``artifacts`` — register the reproduction's artifact stack (simulator
  repo + binary, resources repo, disk image, kernels); outputs the
  artifact ids and content hashes.
- ``sweep`` — build an :class:`Experiment` cross product over the
  registered stacks and launch it through the scheduler; outputs the
  experiment id, run ids, and run status counts.
- ``analyze`` — group the sweep's run statuses by parameter axes.
- ``render`` — render the analysis as a text report, content-addressed
  into the FileStore.
- ``python`` — call a dotted-path function with the context (the escape
  hatch custom reproductions and the test-suite use).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.common.errors import ValidationError
from repro.art.artifact import (
    Artifact,
    register_disk_image,
    register_gem5_binary,
    register_kernel_binary,
    register_repo,
)
from repro.art.db import ArtifactDB
from repro.art.launch import Experiment
from repro.guest import BOOT_TEST_KERNEL_VERSIONS, get_kernel
from repro.resources import build_resource
from repro.sim import Gem5Build
from repro.pipeline.manifest import StageSpec

#: Sweep axis parameter → run parameter it sweeps.
SWEEP_AXES = {
    "cpu_types": "cpu_type",
    "num_cpus": "num_cpus",
    "memory_systems": "memory_system",
    "boot_types": "boot_type",
}


@dataclass
class StageContext:
    """Everything a stage implementation may see."""

    db: ArtifactDB
    pipeline_id: str
    pipeline_name: str
    stage: StageSpec
    attempt: int
    inputs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    execution: Dict[str, Any] = field(default_factory=dict)

    @property
    def params(self) -> Mapping[str, Any]:
        return self.stage.params

    def sole_input_with(self, key: str) -> Dict[str, Any]:
        """The outputs of the one upstream stage that produced ``key``.

        Stages with one obvious upstream don't need explicit source
        params; ambiguity (zero or several candidates) is a manifest
        wiring error, reported as such.
        """
        candidates = [
            name
            for name, outputs in self.inputs.items()
            if isinstance(outputs, Mapping) and key in outputs
        ]
        if len(candidates) != 1:
            raise ValidationError(
                f"stage {self.stage.name!r} needs exactly one input "
                f"providing {key!r}; found {sorted(candidates)}"
            )
        return self.inputs[candidates[0]]


def stage_artifacts(ctx: StageContext) -> Dict[str, Any]:
    """Register the reproduction's artifact stack (the paper's Fig 1)."""
    params = ctx.params
    db = ctx.db
    gem5_version = str(params.get("gem5_version", "v20.1.0.4"))
    gem5_repo = register_repo(db, "gem5", version=gem5_version)
    resources_repo = register_repo(
        db,
        "gem5-resources",
        url="https://gem5.googlesource.com/public/gem5-resources",
        version=str(params.get("resources_version", "HEAD")),
    )
    # The binary build tracks the checked-out repo version unless the
    # manifest pins it separately; deriving it keeps a --set override
    # of gem5_version consistent (same-hash/different-attribute
    # registrations are refused by the artifact layer).
    gem5_build = str(
        params.get("gem5_build", gem5_version.lstrip("v"))
    )
    gem5_binary = register_gem5_binary(
        db, Gem5Build(version=gem5_build), inputs=[gem5_repo]
    )
    image = build_resource(str(params.get("resource", "boot-exit"))).image
    disk = register_disk_image(db, image, inputs=[resources_repo])
    kernel_versions = [
        str(version)
        for version in params.get("kernels", BOOT_TEST_KERNEL_VERSIONS)
    ]
    kernels = {
        version: register_kernel_binary(db, get_kernel(version))
        for version in kernel_versions
    }
    artifacts = {
        "gem5": gem5_binary,
        "gem5_git": gem5_repo,
        "run_script_git": resources_repo,
        "disk_image": disk,
    }
    return {
        "artifact_ids": {
            **{role: artifact.id for role, artifact in artifacts.items()},
            "kernels": {v: a.id for v, a in kernels.items()},
        },
        "artifact_hashes": {
            **{
                role: artifact.hash
                for role, artifact in artifacts.items()
            },
            "kernels": {v: a.hash for v, a in kernels.items()},
        },
        "kernel_versions": kernel_versions,
    }


def stage_sweep(ctx: StageContext) -> Dict[str, Any]:
    """Launch the cross-product experiment over the registered stacks."""
    params = ctx.params
    source_name = params.get("artifacts_from")
    source = (
        ctx.inputs[source_name]
        if source_name is not None
        else ctx.sole_input_with("artifact_ids")
    )
    if source_name is not None and source_name not in ctx.inputs:
        raise ValidationError(
            f"stage {ctx.stage.name!r}: artifacts_from="
            f"{source_name!r} is not among its inputs"
        )
    ids = source["artifact_ids"]
    name = f"{ctx.pipeline_name}/{ctx.stage.name}"
    if ctx.attempt > 1:
        name = f"{name}#attempt{ctx.attempt}"
    experiment = Experiment(
        ctx.db,
        name,
        metadata={
            "pipeline_id": ctx.pipeline_id,
            "pipeline": ctx.pipeline_name,
            "stage": ctx.stage.name,
            "attempt": ctx.attempt,
        },
    )
    roles = {
        role: Artifact.load(ctx.db, ids[role])
        for role in ("gem5", "gem5_git", "run_script_git", "disk_image")
    }
    for version, kernel_id in ids["kernels"].items():
        experiment.add_stack(
            version,
            linux_binary=Artifact.load(ctx.db, kernel_id),
            **roles,
        )
    axes = {
        run_param: list(params[axis_param])
        for axis_param, run_param in SWEEP_AXES.items()
        if axis_param in params
    }
    if axes:
        experiment.sweep(**axes)
    fixed = params.get("fixed") or {}
    if not isinstance(fixed, Mapping):
        raise ValidationError(
            f"stage {ctx.stage.name!r}: 'fixed' must be a mapping"
        )
    if fixed:
        experiment.fix(**fixed)
    execution = ctx.execution
    runs = experiment.create_runs()
    experiment.launch(
        backend=execution.get("backend", "scheduler"),
        workers=int(execution.get("workers", 4)),
        use_cache=bool(execution.get("use_cache", True)),
        substrate=execution.get("substrate", "threads"),
        tenant=execution.get("tenant", "default"),
        priority=execution.get("priority", "default"),
        use_checkpoints=bool(execution.get("use_checkpoints", False)),
    )
    counts: Dict[str, int] = {}
    run_ids = []
    for run in runs:
        run_ids.append(run.run_id)
        status = ctx.db.get_run(run.run_id)["status"]
        counts[status] = counts.get(status, 0) + 1
    return {
        "experiment_id": experiment.experiment_id,
        "experiment_name": name,
        "run_ids": run_ids,
        "run_count": len(run_ids),
        "run_status_counts": counts,
    }


def stage_analyze(ctx: StageContext) -> Dict[str, Any]:
    """Group the sweep's run statuses by parameter axes."""
    params = ctx.params
    source_name = params.get("source")
    source = (
        ctx.inputs[source_name]
        if source_name is not None
        else ctx.sole_input_with("run_ids")
    )
    keys = [str(key) for key in params.get("group_by", ["cpu_type"])]
    groups: Dict[str, Dict[str, int]] = {}
    status_totals: Dict[str, int] = {}
    run_ids = list(source["run_ids"])
    for run_id in run_ids:
        doc = ctx.db.get_run(run_id)
        run_params = doc.get("params", {})
        group = "|".join(str(run_params.get(key)) for key in keys)
        status = doc["status"]
        bucket = groups.setdefault(group, {})
        bucket[status] = bucket.get(status, 0) + 1
        status_totals[status] = status_totals.get(status, 0) + 1
    done = status_totals.get("done", 0)
    return {
        "group_by": keys,
        "groups": groups,
        "status_totals": status_totals,
        "total_runs": len(run_ids),
        "done_runs": done,
        "success_rate": (done / len(run_ids)) if run_ids else 0,
    }


def stage_render(ctx: StageContext) -> Dict[str, Any]:
    """Render the analysis as a text report in the FileStore."""
    params = ctx.params
    source_name = params.get("source")
    source = (
        ctx.inputs[source_name]
        if source_name is not None
        else ctx.sole_input_with("groups")
    )
    title = str(params.get("title", ctx.pipeline_name))
    keys = source.get("group_by", [])
    groups = source.get("groups", {})
    label = "|".join(keys) if keys else "group"
    width = max([len(label)] + [len(key) for key in groups])
    lines = [
        title,
        f"{label:<{width}}  outcomes",
        "-" * (width + 10),
    ]
    for group in sorted(groups):
        counts = groups[group]
        summary = " ".join(
            f"{status}={counts[status]}" for status in sorted(counts)
        )
        lines.append(f"{group:<{width}}  {summary}")
    lines.append("-" * (width + 10))
    lines.append(
        f"total={source.get('total_runs', 0)} "
        f"done={source.get('done_runs', 0)}"
    )
    text = "\n".join(lines) + "\n"
    blob_id = ctx.db.upload_file(
        text.encode("utf-8"), filename="report.txt"
    )
    return {
        "report_blob": blob_id,
        "line_count": len(lines),
        "title": title,
    }


def stage_python(ctx: StageContext) -> Dict[str, Any]:
    """Call ``params.target`` (``package.module:function``) with the
    context — the escape hatch for custom reproductions and tests."""
    target = str(ctx.params.get("target", ""))
    if ":" not in target:
        raise ValidationError(
            f"stage {ctx.stage.name!r}: python stages need "
            "params.target = 'package.module:function'"
        )
    module_name, _, attr = target.partition(":")
    function: Callable[[StageContext], Any] = getattr(
        importlib.import_module(module_name), attr
    )
    outputs = function(ctx)
    if not isinstance(outputs, Mapping):
        raise ValidationError(
            f"stage {ctx.stage.name!r}: {target} must return a mapping "
            f"of outputs (got {type(outputs).__name__})"
        )
    return dict(outputs)


#: kind → implementation; keys must match ``manifest.KNOWN_STAGE_KINDS``.
STAGE_KINDS: Dict[str, Callable[[StageContext], Dict[str, Any]]] = {
    "artifacts": stage_artifacts,
    "sweep": stage_sweep,
    "analyze": stage_analyze,
    "render": stage_render,
    "python": stage_python,
}
