"""The pipeline executor — ``repro reproduce``'s engine.

Walks the manifest's stage DAG in deterministic topological order and,
for each stage:

1. computes the stage **fingerprint** (declaration + upstream outputs
   digests + attempt — see :func:`repro.pipeline.journal.stage_fingerprint`);
2. consults the journal for a gate-passing record with that fingerprint
   and, on a hit, adopts the recorded outputs (verifying the
   content-addressed blob) instead of re-executing;
3. otherwise executes the stage implementation and content-addresses
   its outputs into the FileStore;
4. evaluates the stage's validation gates;
5. on a gate failure with an ``on_fail`` policy, **backtracks**: the
   attempt number of both the backtrack target and the failing stage is
   bumped (new fingerprints — the retry can never alias the failed
   attempt, and a deduplicated re-registration cannot replay the same
   failing outputs as a cache hit), and execution jumps back to the
   target.  Unchanged stages in between re-verify as cache hits.
   Backtracking is bounded by ``max_backtracks``; exhausting it fails
   the pipeline.

Every decision lands in the journal's ordered trail, every stage attempt
becomes a stage document, and telemetry gets ``pipeline``/
``pipeline.stage`` spans plus the four pipeline counters.  The
``pipeline.stage`` chaos point fires before each execution so fault
drills can kill a stage mid-pipeline and assert the journaled outcome.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro import chaos, telemetry
from repro.common.errors import FaultInjectedError, PipelineError
from repro.art.db import ArtifactDB
from repro.pipeline.gates import evaluate_gates
from repro.pipeline.journal import PipelineJournal, stage_fingerprint
from repro.pipeline.manifest import Manifest
from repro.pipeline.stages import STAGE_KINDS, StageContext


def run_pipeline(
    db: ArtifactDB,
    manifest: Manifest,
    journal: Optional[PipelineJournal] = None,
    use_cache: Optional[bool] = None,
) -> Dict[str, Any]:
    """Execute a manifest end to end; returns the pipeline result.

    The result is a plain dict: ``status`` (``succeeded`` / ``failed``),
    ``pipeline_id``, per-stage summaries, the decision ``trail``, and
    the action ``counts``.  A failed pipeline returns (rather than
    raises) so callers always get the journaled trail; the CLI maps the
    status to its exit code.

    ``use_cache`` overrides the manifest's ``execution.use_cache`` (the
    CLI's ``--no-stage-cache``).
    """
    journal = journal or PipelineJournal(db)
    execution = dict(manifest.execution)
    if use_cache is not None:
        execution["use_cache"] = use_cache
    cache_enabled = bool(execution["use_cache"])
    metrics = telemetry.get_metrics()
    runs_total = metrics.counter(
        "pipeline_stage_runs_total", "pipeline stages executed"
    )
    hits_total = metrics.counter(
        "pipeline_stage_cache_hits_total", "pipeline stage cache hits"
    )
    gate_failures_total = metrics.counter(
        "pipeline_stage_gate_failures_total", "pipeline gate failures"
    )
    backtracks_total = metrics.counter(
        "pipeline_stage_backtracks_total", "pipeline backtracks taken"
    )

    order = manifest.execution_order()
    pipeline_id = journal.begin_pipeline(manifest)
    attempts = {name: 1 for name in order}
    backtracks_used = {name: 0 for name in order}
    digests: Dict[str, str] = {}
    stage_summaries: Dict[str, Dict[str, Any]] = {}
    outputs_by_stage: Dict[str, Dict[str, Any]] = {}
    counts = {
        "executed": 0,
        "cache_hits": 0,
        "gate_failures": 0,
        "backtracks": 0,
    }
    status = "succeeded"
    error: Optional[str] = None

    with telemetry.get_tracer().span(
        "pipeline",
        attributes={
            "pipeline": manifest.name,
            "pipeline_id": pipeline_id,
            "stages": len(order),
        },
    ):
        index = 0
        while index < len(order):
            name = order[index]
            stage = manifest.stage(name)
            attempt = attempts[name]
            fingerprint = stage_fingerprint(
                stage,
                {source: digests[source] for source in stage.inputs},
                attempt,
            )
            with telemetry.get_tracer().span(
                "pipeline.stage",
                attributes={
                    "pipeline": manifest.name,
                    "stage": name,
                    "kind": stage.kind,
                    "attempt": attempt,
                },
            ) as span:
                action = "executed"
                cache_source = None
                cached = (
                    journal.find_cached(fingerprint)
                    if cache_enabled
                    else None
                )
                if cached is not None:
                    action = "cache_hit"
                    cache_source = cached["_id"]
                    outputs = cached["outputs"]
                    blob_id = cached["outputs_blob"]
                    verdicts = cached.get("verdicts", [])
                    counts["cache_hits"] += 1
                    hits_total.inc(
                        pipeline=manifest.name, stage=name
                    )
                else:
                    try:
                        chaos.fire(
                            "pipeline.stage",
                            stage=name,
                            kind=stage.kind,
                        )
                        outputs = STAGE_KINDS[stage.kind](
                            StageContext(
                                db=db,
                                pipeline_id=pipeline_id,
                                pipeline_name=manifest.name,
                                stage=stage,
                                attempt=attempt,
                                inputs={
                                    source: outputs_by_stage[source]
                                    for source in stage.inputs
                                },
                                execution=execution,
                            )
                        )
                    except (FaultInjectedError, PipelineError) as exc:
                        _record_stage_error(
                            journal, pipeline_id, manifest, stage,
                            fingerprint, attempt, counts, str(exc),
                        )
                        status, error = "failed", str(exc)
                        span.set_attribute("error", type(exc).__name__)
                        break
                    except Exception as exc:
                        detail = f"{type(exc).__name__}: {exc}"
                        _record_stage_error(
                            journal, pipeline_id, manifest, stage,
                            fingerprint, attempt, counts, detail,
                        )
                        status, error = "failed", detail
                        span.set_attribute("error", type(exc).__name__)
                        break
                    counts["executed"] += 1
                    runs_total.inc(pipeline=manifest.name, stage=name)
                    blob_id = journal.store_outputs(outputs)
                    verdicts = evaluate_gates(
                        stage.gates, outputs, stage=name, attempt=attempt
                    )
                gates_ok = all(v["ok"] for v in verdicts)
                seq = _next_seq(counts)
                journal.record_stage(
                    pipeline_id,
                    manifest.name,
                    stage,
                    fingerprint=fingerprint,
                    attempt=attempt,
                    seq=seq,
                    action=action,
                    outputs=outputs,
                    outputs_blob=blob_id,
                    verdicts=verdicts,
                    gates_ok=gates_ok,
                    cache_source=cache_source,
                )
                journal.append_trail(
                    pipeline_id,
                    {
                        "event": "stage",
                        "stage": name,
                        "kind": stage.kind,
                        "attempt": attempt,
                        "action": action,
                        "fingerprint": fingerprint,
                        "gates_ok": gates_ok,
                    },
                )
                span.set_attribute("action", action)
                span.set_attribute("gates_ok", gates_ok)
                stage_summaries[name] = {
                    "action": action,
                    "attempt": attempt,
                    "fingerprint": fingerprint,
                    "outputs_digest": blob_id,
                    "gates_ok": gates_ok,
                }
                if gates_ok:
                    digests[name] = blob_id
                    outputs_by_stage[name] = outputs
                    index += 1
                    continue
                counts["gate_failures"] += 1
                gate_failures_total.inc(
                    pipeline=manifest.name, stage=name
                )
                failed = [v for v in verdicts if not v["ok"]]
                if (
                    stage.on_fail is not None
                    and backtracks_used[name]
                    < stage.on_fail.max_backtracks
                ):
                    target = stage.on_fail.backtrack
                    backtracks_used[name] += 1
                    counts["backtracks"] += 1
                    backtracks_total.inc(
                        pipeline=manifest.name, stage=name
                    )
                    # Bump BOTH ends of the retry: the target (so it
                    # really re-runs instead of cache-hitting its own
                    # failed lineage) and the failing stage (so content
                    # dedup upstream cannot hand it back the exact
                    # outputs its gates just rejected).
                    attempts[target] += 1
                    if target != name:
                        attempts[name] += 1
                    journal.append_trail(
                        pipeline_id,
                        {
                            "event": "backtrack",
                            "from_stage": name,
                            "to_stage": target,
                            "target_attempt": attempts[target],
                            "retry_attempt": attempts[name],
                            "backtracks_used": backtracks_used[name],
                            "max_backtracks":
                                stage.on_fail.max_backtracks,
                            "failed_gates": [
                                v["detail"] for v in failed
                            ],
                        },
                    )
                    index = order.index(target)
                    continue
                detail = "; ".join(v["detail"] for v in failed)
                journal.append_trail(
                    pipeline_id,
                    {
                        "event": "gate_failed_final",
                        "stage": name,
                        "attempt": attempt,
                        "backtracks_used": backtracks_used[name],
                        "failed_gates": [v["detail"] for v in failed],
                    },
                )
                status = "failed"
                error = f"stage {name!r} failed its gates: {detail}"
                break

    journal.append_trail(
        pipeline_id,
        {"event": "finished", "status": status, "counts": dict(counts)},
    )
    journal.finish_pipeline(pipeline_id, status, counts, error=error)
    return {
        "pipeline_id": pipeline_id,
        "pipeline": manifest.name,
        "status": status,
        "error": error,
        "order": order,
        "stages": stage_summaries,
        "counts": counts,
        "trail": journal.get_pipeline(pipeline_id)["trail"],
    }


#: Monotonic per-process stage sequence key: decisions of one pipeline
#: run are totally ordered by (executed + cache hits + errors) so far.
def _next_seq(counts: Dict[str, int]) -> int:
    return (
        counts["executed"]
        + counts["cache_hits"]
        + counts.get("errors", 0)
    )


def _record_stage_error(
    journal: PipelineJournal,
    pipeline_id: str,
    manifest: Manifest,
    stage,
    fingerprint: str,
    attempt: int,
    counts: Dict[str, int],
    detail: str,
) -> None:
    """Journal a stage that crashed (rather than failed its gates)."""
    counts["errors"] = counts.get("errors", 0) + 1
    journal.record_stage(
        pipeline_id,
        manifest.name,
        stage,
        fingerprint=fingerprint,
        attempt=attempt,
        seq=_next_seq(counts),
        action="error",
        outputs=None,
        outputs_blob=None,
        verdicts=[],
        gates_ok=False,
        error=detail,
    )
    journal.append_trail(
        pipeline_id,
        {
            "event": "stage_error",
            "stage": stage.name,
            "attempt": attempt,
            "error": detail,
        },
    )
