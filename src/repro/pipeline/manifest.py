"""Reproduction manifests — the declarative half of ``repro reproduce``.

A manifest describes a paper's reproduction as a DAG of *stages*
(fetch/build artifacts → boot sweep → analyze → render) in a small YAML
or JSON document.  :func:`load_manifest` parses and validates it into a
frozen :class:`Manifest`; the executor (:mod:`repro.pipeline.executor`)
never sees raw dicts.

Design rules:

- **Stage wiring is explicit.**  ``inputs`` lists upstream stage names;
  the resulting graph must be a DAG (checked here with the same
  deterministic topological sort the artifact workflow uses).
- **Validation is front-loaded.**  Unknown stage kinds, unknown gate
  kinds, dangling inputs, duplicate names, and backtrack targets that
  are not ancestors are all manifest errors — the pipeline refuses to
  start, rather than failing three stages in.
- **YAML is optional.**  PyYAML is used when importable; a JSON manifest
  (``.json``) always works, so the pipeline layer has zero hard
  third-party dependencies.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.common.hashing import sha256_text
from repro.common.jsonutil import canonical_dumps, loads
from repro.art.workflow import topological_order
from repro.pipeline.gates import validate_gate_spec

#: Bumped whenever the canonical manifest serialization changes shape,
#: so old stage fingerprints can never silently alias new ones.
MANIFEST_SCHEMA_VERSION = 1

#: Stage kinds the executor knows how to run (implementations live in
#: :mod:`repro.pipeline.stages`).
KNOWN_STAGE_KINDS = ("artifacts", "sweep", "analyze", "render", "python")

#: Execution settings a manifest may override (defaults mirror the
#: ``boot-tests`` CLI defaults).
EXECUTION_DEFAULTS: Dict[str, object] = {
    "backend": "scheduler",
    "workers": 4,
    "substrate": "threads",
    "use_cache": True,
    "use_checkpoints": False,
    "tenant": "default",
    "priority": "default",
}

_EXECUTION_CHOICES = {
    "backend": ("scheduler", "pool", "inline"),
    "substrate": ("threads", "processes"),
    "priority": ("interactive", "default", "bulk"),
}


@dataclass(frozen=True)
class OnFail:
    """What a stage does when one of its gates fails."""

    backtrack: str
    max_backtracks: int = 1

    def to_document(self) -> Dict[str, object]:
        return {
            "backtrack": self.backtrack,
            "max_backtracks": self.max_backtracks,
        }


@dataclass(frozen=True)
class StageSpec:
    """One validated stage of a manifest."""

    name: str
    kind: str
    inputs: Tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    gates: Tuple[Mapping[str, Any], ...] = ()
    on_fail: Optional[OnFail] = None

    def canonical_document(self) -> Dict[str, object]:
        """The dict that feeds the stage fingerprint: everything that,
        if edited, must invalidate the stage's cached outputs."""
        doc: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "inputs": sorted(self.inputs),
            "params": dict(self.params),
            "gates": [dict(gate) for gate in self.gates],
        }
        if self.on_fail is not None:
            doc["on_fail"] = self.on_fail.to_document()
        return doc


@dataclass(frozen=True)
class Manifest:
    """A validated reproduction manifest."""

    name: str
    description: str
    execution: Mapping[str, Any]
    stages: Tuple[StageSpec, ...]
    source_path: Optional[str] = None

    # ------------------------------------------------------------ access

    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ValidationError(
            f"manifest {self.name!r} has no stage {name!r}"
        )

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def execution_order(self) -> List[str]:
        """Deterministic topological order of the stage DAG."""
        edges = [
            (source, stage.name)
            for stage in self.stages
            for source in stage.inputs
        ]
        return topological_order(self.stage_names(), edges)

    def dependents_of(self, name: str) -> List[str]:
        """Every stage downstream of ``name`` (transitively), in
        execution order — exactly the set a change to ``name``
        invalidates."""
        self.stage(name)
        downstream = {name}
        out = []
        for candidate in self.execution_order():
            stage = self.stage(candidate)
            if candidate != name and any(
                source in downstream for source in stage.inputs
            ):
                downstream.add(candidate)
                out.append(candidate)
        return out

    def ancestors_of(self, name: str) -> List[str]:
        """Every stage upstream of ``name`` (transitively)."""
        upstream = set()
        frontier = list(self.stage(name).inputs)
        while frontier:
            current = frontier.pop()
            if current in upstream:
                continue
            upstream.add(current)
            frontier.extend(self.stage(current).inputs)
        return [s for s in self.execution_order() if s in upstream]

    # ---------------------------------------------------------- identity

    def canonical_document(self) -> Dict[str, object]:
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "name": self.name,
            "execution": dict(self.execution),
            "stages": [
                stage.canonical_document() for stage in self.stages
            ],
        }

    def fingerprint(self) -> str:
        """SHA-256 content address of the manifest itself."""
        return sha256_text(canonical_dumps(self.canonical_document()))

    # ------------------------------------------------------ construction

    @classmethod
    def from_document(
        cls,
        document: Mapping[str, Any],
        source_path: Optional[str] = None,
    ) -> "Manifest":
        if not isinstance(document, Mapping):
            raise ValidationError(
                "manifest must be a mapping at the top level"
            )
        name = document.get("pipeline") or document.get("name")
        if not name or not isinstance(name, str):
            raise ValidationError(
                "manifest needs a 'pipeline: <name>' entry"
            )
        execution = _validate_execution(document.get("execution") or {})
        raw_stages = document.get("stages")
        if not isinstance(raw_stages, (list, tuple)) or not raw_stages:
            raise ValidationError(
                f"manifest {name!r} needs a non-empty 'stages' list"
            )
        stages = tuple(
            _validate_stage(raw, index)
            for index, raw in enumerate(raw_stages)
        )
        manifest = cls(
            name=name,
            description=str(document.get("description") or ""),
            execution=execution,
            stages=stages,
            source_path=source_path,
        )
        _validate_graph(manifest)
        return manifest


def _validate_execution(raw: Mapping[str, Any]) -> Dict[str, Any]:
    if not isinstance(raw, Mapping):
        raise ValidationError("'execution' must be a mapping")
    unknown = set(raw) - set(EXECUTION_DEFAULTS)
    if unknown:
        raise ValidationError(
            f"unknown execution settings: {sorted(unknown)}; "
            f"known: {sorted(EXECUTION_DEFAULTS)}"
        )
    settings = dict(EXECUTION_DEFAULTS)
    settings.update(raw)
    for key, choices in _EXECUTION_CHOICES.items():
        if settings[key] not in choices:
            raise ValidationError(
                f"execution.{key} must be one of {choices} "
                f"(got {settings[key]!r})"
            )
    workers = settings["workers"]
    if not isinstance(workers, int) or workers < 1:
        raise ValidationError(
            f"execution.workers must be a positive int (got {workers!r})"
        )
    for flag in ("use_cache", "use_checkpoints"):
        if not isinstance(settings[flag], bool):
            raise ValidationError(f"execution.{flag} must be a boolean")
    return settings


def _validate_stage(raw: Mapping[str, Any], index: int) -> StageSpec:
    if not isinstance(raw, Mapping):
        raise ValidationError(f"stage #{index} must be a mapping")
    name = raw.get("name")
    if not name or not isinstance(name, str):
        raise ValidationError(f"stage #{index} needs a 'name'")
    kind = raw.get("kind")
    if kind not in KNOWN_STAGE_KINDS:
        raise ValidationError(
            f"stage {name!r} has unknown kind {kind!r}; "
            f"one of {KNOWN_STAGE_KINDS}"
        )
    unknown = set(raw) - {
        "name", "kind", "inputs", "params", "gates", "on_fail",
    }
    if unknown:
        raise ValidationError(
            f"stage {name!r} has unknown keys: {sorted(unknown)}"
        )
    inputs = raw.get("inputs") or []
    if not isinstance(inputs, (list, tuple)) or any(
        not isinstance(item, str) for item in inputs
    ):
        raise ValidationError(
            f"stage {name!r}: 'inputs' must be a list of stage names"
        )
    if len(set(inputs)) != len(inputs):
        raise ValidationError(
            f"stage {name!r} lists duplicate inputs: {sorted(inputs)}"
        )
    params = raw.get("params") or {}
    if not isinstance(params, Mapping):
        raise ValidationError(f"stage {name!r}: 'params' must be a mapping")
    gates = raw.get("gates") or []
    if not isinstance(gates, (list, tuple)):
        raise ValidationError(f"stage {name!r}: 'gates' must be a list")
    for gate in gates:
        validate_gate_spec(gate, stage=name)
    on_fail = None
    raw_on_fail = raw.get("on_fail")
    if raw_on_fail is not None:
        if (
            not isinstance(raw_on_fail, Mapping)
            or not isinstance(raw_on_fail.get("backtrack"), str)
        ):
            raise ValidationError(
                f"stage {name!r}: 'on_fail' needs a "
                "'backtrack: <stage name>' entry"
            )
        unknown = set(raw_on_fail) - {"backtrack", "max_backtracks"}
        if unknown:
            raise ValidationError(
                f"stage {name!r}: unknown on_fail keys: {sorted(unknown)}"
            )
        max_backtracks = raw_on_fail.get("max_backtracks", 1)
        if not isinstance(max_backtracks, int) or max_backtracks < 0:
            raise ValidationError(
                f"stage {name!r}: max_backtracks must be a "
                f"non-negative int (got {max_backtracks!r})"
            )
        on_fail = OnFail(
            backtrack=raw_on_fail["backtrack"],
            max_backtracks=max_backtracks,
        )
    return StageSpec(
        name=name,
        kind=kind,
        inputs=tuple(inputs),
        params=dict(params),
        gates=tuple(dict(gate) for gate in gates),
        on_fail=on_fail,
    )


def _validate_graph(manifest: Manifest) -> None:
    names = manifest.stage_names()
    if len(set(names)) != len(names):
        duplicates = sorted(
            name for name in set(names) if names.count(name) > 1
        )
        raise ValidationError(
            f"manifest {manifest.name!r} declares duplicate stage "
            f"names: {duplicates}"
        )
    known = set(names)
    for stage in manifest.stages:
        for source in stage.inputs:
            if source not in known:
                raise ValidationError(
                    f"stage {stage.name!r} depends on undeclared "
                    f"stage {source!r}"
                )
            if source == stage.name:
                raise ValidationError(
                    f"stage {stage.name!r} cannot depend on itself"
                )
    # A cycle raises ValidationError inside topological_order.
    manifest.execution_order()
    for stage in manifest.stages:
        if stage.on_fail is None:
            continue
        target = stage.on_fail.backtrack
        if target not in known:
            raise ValidationError(
                f"stage {stage.name!r} backtracks to undeclared "
                f"stage {target!r}"
            )
        if target != stage.name and target not in manifest.ancestors_of(
            stage.name
        ):
            raise ValidationError(
                f"stage {stage.name!r} can only backtrack to itself or "
                f"an ancestor; {target!r} is neither"
            )
        if stage.gates == ():
            raise ValidationError(
                f"stage {stage.name!r} declares on_fail but no gates"
            )


# ------------------------------------------------------------------ load


def parse_document_text(text: str) -> Any:
    """Parse manifest text to a raw document — YAML when available,
    JSON always (so the pipeline layer has no hard third-party deps)."""
    document = None
    yaml_error = None
    try:
        import yaml
    except ImportError:
        yaml = None
    if yaml is not None:
        try:
            document = yaml.safe_load(text)
        except yaml.YAMLError as error:
            yaml_error = error
    if document is None and yaml_error is None:
        # No YAML parser (or empty document): fall back to JSON.
        try:
            document = loads(text)
        except ValueError as error:
            raise ValidationError(
                f"manifest is neither valid YAML nor JSON: {error}"
            ) from error
    if yaml_error is not None:
        raise ValidationError(
            f"manifest is not valid YAML: {yaml_error}"
        ) from yaml_error
    return document


def parse_manifest_text(
    text: str, source_path: Optional[str] = None
) -> Manifest:
    """Parse and validate manifest text."""
    return Manifest.from_document(
        parse_document_text(text), source_path=source_path
    )


def apply_set_overrides(
    document: Any, assignments: Sequence[str]
) -> Any:
    """Apply CLI ``--set STAGE.PARAM=VALUE`` assignments to a raw
    manifest document (before validation).

    Values parse as JSON when possible (``--set sweep.num_cpus=[1,2]``)
    and fall back to plain strings.  Overriding a stage's params changes
    its canonical document, hence its fingerprint — so a ``--set`` is
    exactly an upstream-artifact change from the cache's point of view:
    the stage and its dependents re-execute, nothing else does.
    """
    if not isinstance(document, Mapping):
        raise ValidationError("manifest must be a mapping at the top level")
    patched = copy.deepcopy(dict(document))
    for text in assignments:
        target, separator, raw_value = str(text).partition("=")
        stage_name, dot, param = target.partition(".")
        if not separator or not dot or not stage_name or not param:
            raise ValidationError(
                f"--set expects STAGE.PARAM=VALUE (got {text!r})"
            )
        try:
            value = loads(raw_value)
        except ValueError:
            value = raw_value
        for raw_stage in patched.get("stages") or []:
            if (
                isinstance(raw_stage, dict)
                and raw_stage.get("name") == stage_name
            ):
                params = dict(raw_stage.get("params") or {})
                params[param] = value
                raw_stage["params"] = params
                break
        else:
            raise ValidationError(
                f"--set {text!r} names unknown stage {stage_name!r}"
            )
    return patched


def load_manifest(
    path: str, overrides: Sequence[str] = ()
) -> Manifest:
    """Read, parse, and validate a manifest file.

    ``overrides`` are CLI ``--set STAGE.PARAM=VALUE`` assignments,
    applied to the raw document before validation.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ValidationError(
            f"cannot read manifest {path!r}: {error}"
        ) from error
    document = parse_document_text(text)
    if overrides:
        document = apply_set_overrides(document, overrides)
    return Manifest.from_document(document, source_path=path)
