"""Validation gates — predicates over stage outputs, with verdicts.

A gate is the pipeline's reviewer node (the biroclick pattern from the
ROADMAP): after a stage executes (or adopts cached outputs), every gate
it declares is evaluated against the outputs document, and each
evaluation produces a structured **verdict** — gate kind, observed vs
expected values, pass/fail, and a human-readable detail line.  Verdicts
are journaled with the stage attempt, so ``repro pipeline explain`` can
replay every decision the pipeline made.

Gate kinds:

======================  ==================================================
``equals``              ``outputs[path] == value``
``at_least``            ``outputs[path] >= value`` (numeric)
``at_most``             ``outputs[path] <= value`` (numeric)
``within``              ``|outputs[path] - value| <= tolerance``
``all_terminal``        no run of a sweep stage is still created/running
``callable``            dotted-path predicate ``pkg.mod:func(outputs)``
======================  ==================================================

``path`` is a dotted path into the outputs document (``status_counts.done``,
``groups.kvm|classic.ok``); missing paths fail the gate rather than
raising, because "the stage did not even produce that output" is itself
a verdict.  The ``pipeline.gate`` chaos point can inject evaluation
faults; an injected fault is a *failed verdict* (never a crash), so the
backtracking machinery is exercisable under fault injection.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import chaos
from repro.common.errors import FaultInjectedError, ValidationError

#: Gate kinds and the parameter keys each requires beyond ``kind``.
GATE_KINDS: Dict[str, Tuple[str, ...]] = {
    "equals": ("path", "value"),
    "at_least": ("path", "value"),
    "at_most": ("path", "value"),
    "within": ("path", "value", "tolerance"),
    "all_terminal": (),
    "callable": ("target",),
}

#: Run statuses that mean "still owed" for ``all_terminal``.
_NON_TERMINAL_STATUSES = ("created", "running")


def validate_gate_spec(gate: Mapping[str, Any], stage: str) -> None:
    """Reject malformed gate specs at manifest-parse time."""
    if not isinstance(gate, Mapping):
        raise ValidationError(f"stage {stage!r}: each gate must be a mapping")
    kind = gate.get("kind")
    if kind not in GATE_KINDS:
        raise ValidationError(
            f"stage {stage!r}: unknown gate kind {kind!r}; "
            f"one of {sorted(GATE_KINDS)}"
        )
    required = GATE_KINDS[kind]
    missing = [key for key in required if key not in gate]
    if missing:
        raise ValidationError(
            f"stage {stage!r}: gate {kind!r} is missing {missing}"
        )
    unknown = set(gate) - set(required) - {"kind"}
    if unknown:
        raise ValidationError(
            f"stage {stage!r}: gate {kind!r} has unknown keys: "
            f"{sorted(unknown)}"
        )
    if kind == "within":
        tolerance = gate["tolerance"]
        if not isinstance(tolerance, (int, float)) or tolerance < 0:
            raise ValidationError(
                f"stage {stage!r}: gate tolerance must be a "
                f"non-negative number (got {tolerance!r})"
            )
    if kind == "callable" and ":" not in str(gate["target"]):
        raise ValidationError(
            f"stage {stage!r}: callable gate target must be "
            f"'package.module:function' (got {gate['target']!r})"
        )


def resolve_path(outputs: Mapping[str, Any], path: str):
    """Walk a dotted path through dicts/lists; returns (found, value)."""
    current: Any = outputs
    for part in str(path).split("."):
        if isinstance(current, Mapping) and part in current:
            current = current[part]
            continue
        if isinstance(current, (list, tuple)):
            try:
                current = current[int(part)]
                continue
            except (ValueError, IndexError):
                return False, None
        else:
            return False, None
    return True, current


def evaluate_gate(
    gate: Mapping[str, Any],
    outputs: Mapping[str, Any],
    stage: str,
    attempt: int,
) -> Dict[str, Any]:
    """Evaluate one gate; always returns a verdict, never raises.

    An injected ``pipeline.gate`` fault or a crashed callable predicate
    is recorded as a failed verdict — a reviewer that cannot review has
    not approved anything.
    """
    kind = gate["kind"]
    verdict: Dict[str, Any] = {
        "gate": dict(gate),
        "stage": stage,
        "attempt": attempt,
        "ok": False,
        "observed": None,
    }
    try:
        chaos.fire("pipeline.gate", stage=stage, kind=kind)
    except FaultInjectedError as error:
        verdict["detail"] = f"fault-injected: {error}"
        return verdict
    try:
        ok, observed, detail = _evaluate(kind, gate, outputs)
    except Exception as error:  # a broken predicate is a failed review
        verdict["detail"] = f"gate evaluation crashed: {error}"
        return verdict
    verdict["ok"] = bool(ok)
    verdict["observed"] = observed
    verdict["detail"] = detail
    return verdict


def evaluate_gates(
    gates,
    outputs: Mapping[str, Any],
    stage: str,
    attempt: int,
) -> List[Dict[str, Any]]:
    """Evaluate every gate of a stage, in declaration order."""
    return [
        evaluate_gate(gate, outputs, stage=stage, attempt=attempt)
        for gate in gates
    ]


def _evaluate(kind, gate, outputs):
    if kind == "all_terminal":
        return _evaluate_all_terminal(outputs)
    if kind == "callable":
        return _evaluate_callable(gate, outputs)
    found, observed = resolve_path(outputs, gate["path"])
    if not found:
        return (
            False,
            None,
            f"outputs have no value at {gate['path']!r}",
        )
    expected = gate["value"]
    if kind == "equals":
        ok = observed == expected
        relation = "=="
    elif kind == "at_least":
        ok = _numeric(observed) >= _numeric(expected)
        relation = ">="
    elif kind == "at_most":
        ok = _numeric(observed) <= _numeric(expected)
        relation = "<="
    else:  # within
        tolerance = gate["tolerance"]
        ok = abs(_numeric(observed) - _numeric(expected)) <= tolerance
        relation = f"within ±{tolerance} of"
    return (
        ok,
        observed,
        f"{gate['path']}={observed!r} {relation} {expected!r}: "
        f"{'pass' if ok else 'FAIL'}",
    )


def _numeric(value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"gate needs a numeric value (got {value!r})"
        )
    return float(value)


def _evaluate_all_terminal(outputs):
    found, counts = resolve_path(outputs, "run_status_counts")
    if not found or not isinstance(counts, Mapping):
        return (
            False,
            None,
            "outputs have no 'run_status_counts' mapping "
            "(all_terminal gates a sweep stage)",
        )
    pending = {
        status: count
        for status, count in counts.items()
        if status in _NON_TERMINAL_STATUSES and count
    }
    if pending:
        return (
            False,
            dict(counts),
            f"runs still pending: {pending}",
        )
    return True, dict(counts), "every run reached a terminal status"


def _evaluate_callable(gate, outputs):
    target = str(gate["target"])
    module_name, _, attr = target.partition(":")
    predicate = getattr(importlib.import_module(module_name), attr)
    result = predicate(outputs)
    if isinstance(result, Mapping):
        return (
            bool(result.get("ok")),
            result.get("observed"),
            str(result.get("detail", target)),
        )
    return bool(result), None, f"{target} -> {bool(result)}"
