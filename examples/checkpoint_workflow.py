#!/usr/bin/env python3
"""The hack-back checkpoint workflow, plus batch scheduling and a
shareable report.

Demonstrates three of the framework's agility features together:

1. boot Ubuntu once under the fast kvm CPU and take a checkpoint (what
   the Table I ``hack-back`` resource exists for);
2. fan out detailed-CPU measurements that *restore* the checkpoint —
   skipping every boot — across a Condor-style machine pool;
3. render the experiment's reproducibility report and export the whole
   thing as a verified archive another researcher can import.

Run with:  python examples/checkpoint_workflow.py
"""

import tempfile

from repro.analysis import experiment_report
from repro.art import (
    ArtifactDB,
    Experiment,
    export_archive,
    register_disk_image,
    register_gem5_binary,
    register_kernel_binary,
    register_repo,
    verify_archive,
)
from repro.guest import get_distro
from repro.resources import build_resource
from repro.sim import Gem5Build, Gem5Simulator, SystemConfig


def main() -> None:
    distro = get_distro("20.04")
    image = build_resource("parsec", distro=distro.key).image

    # -- 1. boot once under kvm, checkpoint -------------------------------
    kvm = Gem5Simulator(Gem5Build(), SystemConfig(cpu_type="kvm"))
    checkpoint, boot_result = kvm.take_boot_checkpoint(
        distro.kernel_version, image
    )
    print(f"checkpoint {checkpoint.checkpoint_id[:12]} taken after "
          f"{boot_result.boot_seconds:.4f}s simulated boot (kvm)")

    # -- 2. restore under a detailed CPU, many times ----------------------
    timing = Gem5Simulator(Gem5Build(), SystemConfig(cpu_type="timing"))
    for app in ("blackscholes", "swaptions", "ferret"):
        cold = timing.run_fs(
            distro.kernel_version, image, benchmark=app
        )
        warm = timing.run_fs(
            distro.kernel_version, image, benchmark=app,
            restore_from=checkpoint,
        )
        saved = cold.boot_seconds - warm.boot_seconds
        print(f"  {app:<13} workload {warm.workload_seconds:.4f}s, "
              f"restored boot saved {saved:.4f}s of detailed simulation")

    # -- 3. the same study as a recorded experiment + archive -------------
    db = ArtifactDB()
    gem5_repo = register_repo(db, "gem5", version="v20.1.0.4")
    resources_repo = register_repo(db, "gem5-resources", version="r1")
    experiment = Experiment(db, "checkpointed-parsec")
    experiment.add_stack(
        distro.key,
        gem5=register_gem5_binary(db, Gem5Build(), inputs=[gem5_repo]),
        gem5_git=gem5_repo,
        run_script_git=resources_repo,
        linux_binary=register_kernel_binary(db, distro.kernel),
        disk_image=register_disk_image(db, image),
    )
    experiment.fix(cpu_type="timing", memory_system="MESI_Two_Level")
    experiment.sweep(
        benchmark=["blackscholes", "swaptions", "ferret"], num_cpus=[1, 8]
    )
    experiment.launch(backend="pool", workers=4)

    print("\n" + experiment_report(db))

    with tempfile.TemporaryDirectory() as tmp:
        counts = export_archive(db, tmp)
        verify_archive(tmp)
        print(f"archive exported and verified: {counts['artifacts']} "
              f"artifacts, {counts['runs']} runs, {counts['files']} files")


if __name__ == "__main__":
    main()
