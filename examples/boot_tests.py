#!/usr/bin/env python3
"""Use-case 2: the Linux boot-test cross product (regenerating Fig 8).

Sweeps 480 configurations — 2 boot types x 5 LTS kernels x 4 CPU models x
3 memory systems x 4 core counts — through gem5art with the Celery-style
scheduler, then renders the pass/fail grids and the failure taxonomy the
paper reports (kvm all-pass; Atomic unsupported on Ruby; Timing/O3 limited
to one core on classic; O3 panics/segfaults/deadlocks/timeouts).

Run with:  python examples/boot_tests.py
"""

import collections
import itertools

from repro.analysis import run_records, status_grid
from repro.art import (
    ArtifactDB,
    Gem5Run,
    register_disk_image,
    register_gem5_binary,
    register_kernel_binary,
    register_repo,
    run_jobs_scheduler,
)
from repro.guest import BOOT_TEST_KERNEL_VERSIONS, get_kernel
from repro.resources import build_resource
from repro.sim import Gem5Build

CPU_TYPES = ("kvm", "atomic", "timing", "o3")
MEMORY_SYSTEMS = ("classic", "MI_example", "MESI_Two_Level")
CORE_COUNTS = (1, 2, 4, 8)
BOOT_TYPES = ("init", "systemd")


def main() -> None:
    db = ArtifactDB()
    gem5_repo = register_repo(db, "gem5", version="v20.1.0.4")
    resources_repo = register_repo(
        db,
        "gem5-resources",
        url="https://gem5.googlesource.com/public/gem5-resources",
        version="c5f5c70",
    )
    gem5_binary = register_gem5_binary(
        db, Gem5Build(version="20.1.0.4"), inputs=[gem5_repo]
    )
    boot_image = build_resource("boot-exit").image
    disk = register_disk_image(db, boot_image, inputs=[resources_repo])
    kernels = {
        version: register_kernel_binary(db, get_kernel(version))
        for version in BOOT_TEST_KERNEL_VERSIONS
    }

    runs = []
    for boot, version, cpu, mem, cores in itertools.product(
        BOOT_TYPES, BOOT_TEST_KERNEL_VERSIONS, CPU_TYPES,
        MEMORY_SYSTEMS, CORE_COUNTS,
    ):
        runs.append(
            Gem5Run.create_fs_run(
                db,
                gem5_artifact=gem5_binary,
                gem5_git_artifact=gem5_repo,
                run_script_git_artifact=resources_repo,
                linux_binary_artifact=kernels[version],
                disk_image_artifact=disk,
                cpu_type=cpu,
                num_cpus=cores,
                memory_system=mem,
                boot_type=boot,
            )
        )
    print(f"launching {len(runs)} boot tests ...")
    run_jobs_scheduler(runs, worker_count=8)

    records = run_records(db)
    # One grid per (boot type, cpu model): rows = kernels, columns =
    # (memory system, cores) -- the layout of the paper's Fig 8 panels.
    columns = [
        f"{mem[:2]}{cores}"
        for mem in MEMORY_SYSTEMS
        for cores in CORE_COUNTS
    ]
    for boot in BOOT_TYPES:
        for cpu in CPU_TYPES:
            cells = {}
            for record in records:
                if record["boot_type"] != boot or record["cpu_type"] != cpu:
                    continue
                kernel = record["workload"].split("linux-")[1].split(".sys")[0]
                kernel = kernel.split(".init")[0].split(".partial")[0]
                column = (
                    f"{record['memory_system'][:2]}{record['num_cpus']}"
                )
                cells[(kernel, column)] = record["simulation_status"]
            print(
                "\n"
                + status_grid(
                    cells,
                    BOOT_TEST_KERNEL_VERSIONS,
                    columns,
                    title=f"boot={boot} cpu={cpu} "
                    "(cl=classic MI=MI_example ME=MESI_Two_Level)",
                )
            )

    # The paper's O3 failure taxonomy.
    o3 = [r for r in records if r["cpu_type"] == "o3"]
    counts = collections.Counter(r["simulation_status"] for r in o3)
    print("\nO3 outcome counts (paper: 27 panics, 11 segfaults, "
          "4 deadlocks, rest timeouts; ~40% success):")
    for status, count in sorted(counts.items()):
        print(f"  {status:<14} {count}")


if __name__ == "__main__":
    main()
