#!/usr/bin/env python3
"""Use-case 1: PARSEC across Ubuntu LTS releases (the paper's Fig 5
launch script, regenerating Figs 6 and 7).

Runs the full 60-point cross product — {Ubuntu 18.04, 20.04} x 10 working
PARSEC applications x {1, 2, 8} CPUs on a TimingSimpleCPU — through the
gem5art pipeline with the multiprocessing-style pool, then queries the
database and renders both figures as text charts.

Run with:  python examples/parsec_study.py
"""

from repro.analysis import (
    Series,
    bar_chart,
    difference_series,
    pivot,
    run_records,
    speedup_series,
)
from repro.art import (
    ArtifactDB,
    Gem5Run,
    register_disk_image,
    register_gem5_binary,
    register_kernel_binary,
    register_repo,
    run_jobs_pool,
)
from repro.guest import get_distro
from repro.resources import build_resource
from repro.sim import Gem5Build
from repro.sim.workload import PARSEC_WORKING_APPS

CPU_COUNTS = (1, 2, 8)


def register_os_stack(db, resources_repo, distro_key):
    """Register the kernel + disk image pair for one Ubuntu release."""
    distro = get_distro(distro_key)
    kernel = register_kernel_binary(db, distro.kernel)
    image = build_resource("parsec", distro=distro.key).image
    disk = register_disk_image(
        db,
        image,
        inputs=[resources_repo],
        documentation=f"PARSEC on {distro.describe()}",
    )
    return kernel, disk


def main() -> None:
    db = ArtifactDB()
    gem5_repo = register_repo(db, "gem5", version="v20.1.0.4")
    resources_repo = register_repo(
        db,
        "gem5-resources",
        url="https://gem5.googlesource.com/public/gem5-resources",
        version="31924b6",
    )
    gem5_binary = register_gem5_binary(
        db, Gem5Build(version="20.1.0.4"), inputs=[gem5_repo]
    )
    stacks = {
        key: register_os_stack(db, resources_repo, key)
        for key in ("ubuntu-18.04", "ubuntu-20.04")
    }

    # The cross product of the paper's Table II, as one launch script.
    runs = []
    for os_key, (kernel, disk) in stacks.items():
        for app in PARSEC_WORKING_APPS:
            for cpus in CPU_COUNTS:
                runs.append(
                    Gem5Run.create_fs_run(
                        db,
                        gem5_artifact=gem5_binary,
                        gem5_git_artifact=gem5_repo,
                        run_script_git_artifact=resources_repo,
                        linux_binary_artifact=kernel,
                        disk_image_artifact=disk,
                        cpu_type="timing",
                        num_cpus=cpus,
                        # multi-core timing runs need Ruby (the classic
                        # memory system rejects >1 timing requestor)
                        memory_system="MESI_Two_Level",
                        benchmark=app,
                        input_size="simmedium",
                    )
                )
    print(f"launching {len(runs)} gem5 runs ...")
    run_jobs_pool(runs, processes=8)

    records = run_records(db)
    # Attribute each run to its OS via the disk-image artifact it used.
    os_of_run = {}
    for run in runs:
        doc = db.get_run(run.run_id)
        disk_artifact = doc["artifacts"]["disk_image"]
        for os_key, (kernel, disk) in stacks.items():
            if disk_artifact == disk.id:
                os_of_run[run.run_id] = os_key
    for record in records:
        record["os"] = os_of_run[record["run_id"]]

    tables = {
        os_key: pivot(
            [r for r in records if r["os"] == os_key],
            "benchmark",
            "num_cpus",
            "workload_seconds",
        )
        for os_key in stacks
    }

    # ------------------------------------------------------------- Fig 6
    print("\nFig 6: execution-time difference, Ubuntu 18.04 - 20.04")
    for cpus in CPU_COUNTS:
        bionic = Series(
            "18.04", {a: tables["ubuntu-18.04"][a][cpus]
                      for a in sorted(tables["ubuntu-18.04"])}
        )
        focal = Series(
            "20.04", {a: tables["ubuntu-20.04"][a][cpus]
                      for a in sorted(tables["ubuntu-20.04"])}
        )
        diff = difference_series(f"{cpus} cores", bionic, focal)
        print(f"\n--- {cpus} core(s) ---")
        print(bar_chart([diff], unit="s"))

    # ------------------------------------------------------------- Fig 7
    print("\nFig 7: 1 -> 8 core speedup per OS")
    for os_key in stacks:
        one = Series("1", {a: tables[os_key][a][1]
                           for a in sorted(tables[os_key])})
        eight = Series("8", {a: tables[os_key][a][8]
                             for a in sorted(tables[os_key])})
        speedup = speedup_series(os_key, one, eight)
        print(f"\n--- {os_key} (mean speedup "
              f"{speedup.mean():.2f}x) ---")
        print(bar_chart([speedup], unit="x"))


if __name__ == "__main__":
    main()
