#!/usr/bin/env python3
"""Cross-version comparison study.

The paper's introduction motivates gem5art with the need to "compare how
new versions of these components impact performance".  This example runs
the same PARSEC points on gem5 v20.1.0.4 and v21.0, registers both
binaries as distinct artifacts (different source revisions → different
hashes), and uses the validation module to quantify and diagnose the
divergence.

Run with:  python examples/version_study.py
"""

from repro.analysis import compare_stats, diagnose_configs
from repro.resources import build_resource
from repro.sim import Gem5Build, Gem5Simulator, SystemConfig
from repro.art import ArtifactDB, register_gem5_binary, register_repo

VERSIONS = ("20.1.0.4", "21.0")


def main() -> None:
    db = ArtifactDB()
    image = build_resource("parsec", distro="ubuntu-18.04").image

    builds = {}
    for version in VERSIONS:
        repo = register_repo(db, f"gem5-v{version}", version=f"v{version}")
        build = Gem5Build(version=version)
        artifact = register_gem5_binary(
            db, build, name=f"gem5-{version}", inputs=[repo]
        )
        builds[version] = build
        print(f"registered gem5 {version}: hash {artifact.hash[:12]}")

    print()
    for app in ("swaptions", "streamcluster", "ferret"):
        results = {}
        for version, build in builds.items():
            simulator = Gem5Simulator(build, SystemConfig())
            results[version] = simulator.run_fs(
                "4.15.18", image, benchmark=app
            )
        old, new = results["20.1.0.4"], results["21.0"]
        comparison = compare_stats(old.stats, new.stats)
        delta = (new.sim_seconds / old.sim_seconds - 1) * 100
        print(f"{app:<14} v20.1 {old.sim_seconds:.4f}s -> "
              f"v21.0 {new.sim_seconds:.4f}s ({delta:+.1f}%), "
              f"MAPE {comparison['mape']:.4f}")

    # The diagnosis half: catch a configuration that silently drifted.
    print("\nconfiguration diagnosis (intentional drift):")
    reference = {"cpu_type": "timing", "num_cpus": 1, "l2": "1MB"}
    candidate = {"cpu_type": "timing", "num_cpus": 2}
    for finding in diagnose_configs(reference, candidate):
        print(f"  - {finding}")


if __name__ == "__main__":
    main()
