#!/usr/bin/env python3
"""Use-case 3: GPU register-allocator study (regenerating Fig 9).

Builds the GCN-docker environment from gem5-resources, registers a
GCN3_X86 gem5 build, runs every Table IV workload under both register
allocators through gem5art, and renders the normalized speedup chart.

Run with:  python examples/gpu_regalloc_study.py
"""

import collections

from repro.analysis import Series, bar_chart, normalize_to
from repro.art import (
    ArtifactDB,
    Gem5Run,
    register_gem5_binary,
    register_repo,
    run_jobs_pool,
)
from repro.gpu import GPU_WORKLOADS, GPUConfig
from repro.resources import build_resource
from repro.sim import Gem5Build


def main() -> None:
    # The environment resource pins the ROCm 1.6 stack the GCN3 model
    # needs and tells us which workloads it can build.
    environment = build_resource("GCN-docker")
    environment.validate_stack()
    workloads = environment.buildable_workloads()
    print(f"GCN docker environment ok; {len(workloads)} workloads "
          "buildable")

    db = ArtifactDB()
    gem5_repo = register_repo(db, "gem5", version="v21.0")
    gem5_binary = register_gem5_binary(
        db,
        Gem5Build(version="21.0", isa="GCN3_X86"),
        name="gem5-gcn3",
        inputs=[gem5_repo],
        documentation="gem5 21.0 with the GCN3_X86 static configuration",
    )

    config = GPUConfig()  # the paper's Table III
    print(f"GPU config: {config.describe()}\n")

    runs = []
    for name in workloads:
        for allocator in ("simple", "dynamic"):
            runs.append(
                Gem5Run.create_gpu_run(
                    db,
                    gem5_binary,
                    gem5_repo,
                    workload=name,
                    register_allocator=allocator,
                    gpu_config=config,
                )
            )
    print(f"launching {len(runs)} GPU runs ...")
    summaries = run_jobs_pool(runs, processes=8)

    ticks = collections.defaultdict(dict)
    for summary in summaries:
        ticks[summary["register_allocator"]][summary["workload"]] = (
            summary["shader_ticks"]
        )
    order = sorted(workloads, key=lambda n: GPU_WORKLOADS[n].suite)
    simple = Series("simple", {n: ticks["simple"][n] for n in order})
    dynamic = Series("dynamic", {n: ticks["dynamic"][n] for n in order})

    # Fig 9: speedup of each allocator normalized to simple.
    speedup = normalize_to(simple, dynamic)
    speedup.name = "dynamic-vs-simple"
    print(bar_chart(
        [speedup],
        title="Fig 9: dynamic allocator speedup (normalized to simple; "
        ">1 means dynamic wins)",
        unit="x",
    ))
    mean_relative_time = sum(
        dynamic[n] / simple[n] for n in order
    ) / len(order)
    print(f"\nmean relative execution time (dynamic/simple): "
          f"{mean_relative_time:.3f} "
          "(paper: simple better by ~8% on average)")
    worst = max(order, key=lambda n: dynamic[n] / simple[n])
    print(f"worst regression: {worst} "
          f"({dynamic[worst] / simple[worst]:.2f}x slower under dynamic; "
          "paper: FAMutex, 61% worse)")


if __name__ == "__main__":
    main()
